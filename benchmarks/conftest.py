"""Shared fixtures for the benchmark suite."""

import pytest

from repro.apps import build_server
from repro.bench.harness import redirector_chain_mcl
from repro.runtime.scheduler import InlineScheduler


@pytest.fixture
def chain10():
    """A deployed 10-redirector chain with an inline scheduler."""
    server = build_server()
    stream = server.deploy_script(redirector_chain_mcl(10))
    yield server, stream, InlineScheduler(stream)
    if not stream.ended:
        stream.end()
