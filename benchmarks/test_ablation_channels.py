"""Ablation — channel category semantics cost (thesis section 4.2.2).

The five categories differ only in disconnect behaviour, so their steady-
state transfer cost should be nearly identical — buffering (S vs BK)
changes admission, not per-message cost.
"""

import pytest

from repro.bench.ablations import run_channel_ablation
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.runtime.channel import Channel


def _channel(category):
    definition = ast.ChannelDef(
        name="bench",
        in_port=ast.PortDecl(ast.PortDirection.IN, "cin", ANY),
        out_port=ast.PortDecl(ast.PortDirection.OUT, "cout", ANY),
        category=ast.ChannelCategory(category),
        buffer_kb=100,
    )
    channel = Channel("bench", definition)
    channel.attach_source(ast.PortRef("a", "po"))
    channel.attach_sink(ast.PortRef("b", "pi"))
    return channel


@pytest.mark.parametrize("category", ["BB", "BK", "KB", "KK"])
def test_transfer_cost(benchmark, category):
    channel = _channel(category)

    def pump():
        for i in range(100):
            channel.post(f"m{i}", 10)
            channel.fetch()

    benchmark(pump)


def test_channel_series(benchmark):
    result = benchmark.pedantic(
        run_channel_ablation, kwargs={"pairs": 5000}, rounds=1, iterations=1
    )
    result.print()
    times = dict(result.rows)
    fastest, slowest = min(times.values()), max(times.values())
    # same order of magnitude across all five categories
    assert slowest < fastest * 3
