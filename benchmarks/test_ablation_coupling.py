"""Ablation — coordinated reconfiguration vs tightly-coupled restart.

Section 1.2.1's indictment of conventional proxies: "any replacement or
modification of a service entity requires updating not only the code for
the new service entity ... but also the code of those entities that have a
direct relation with the old one" — in deployment terms, adapting a
tightly-coupled pipeline means tearing it down and rebuilding it.

MobiGATE's claim is that separating coordination from computation makes
adaptation an in-place topology edit.  This ablation measures both ways
of reaching the same end state (a chain with k extra redirectors):

* **coordinated** — fire the LOW_BANDWIDTH handler on the live stream
  (the Figure 7-6 path);
* **restart baseline** — undeploy the stream and deploy a freshly
  compiled table with the extra streamlets already in place, as a
  tightly-coupled system must.
"""

import time

import pytest

from repro.apps import build_server
from repro.bench.fig7_6 import reconfig_exp_mcl
from repro.bench.harness import redirector_chain_mcl
from repro.bench.reporting import print_series


def coordinated(k: int) -> float:
    """Seconds to adapt via the event handler."""
    server = build_server()
    stream = server.deploy_script(reconfig_exp_mcl(k))
    start = time.perf_counter()
    server.events.raise_event("LOW_BANDWIDTH")
    elapsed = time.perf_counter() - start
    stream.end()
    return elapsed


def restart(k: int) -> float:
    """Seconds to adapt by full teardown + recompile + redeploy."""
    server = build_server()
    stream = server.deploy_script(redirector_chain_mcl(2, stream_name="base"))
    start = time.perf_counter()
    server.undeploy(stream.name)
    bigger = server.deploy_script(
        redirector_chain_mcl(2 + k, stream_name="bigger"), stream="bigger"
    )
    elapsed = time.perf_counter() - start
    bigger.end()
    return elapsed


def test_coordinated_insert_20(benchmark):
    benchmark.pedantic(coordinated, args=(20,), rounds=10)


def test_restart_baseline_20(benchmark):
    benchmark.pedantic(restart, args=(20,), rounds=10)


def test_coupling_series(benchmark):
    def sweep():
        rows = []
        for k in (5, 20, 50):
            coord = min(coordinated(k) for _ in range(3))
            full = min(restart(k) for _ in range(3))
            rows.append((k, coord, full))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Ablation: coordinated reconfiguration vs tightly-coupled restart",
        ["inserted", "coordinated (ms)", "restart (ms)", "restart/coord"],
        [(k, c * 1e3, f * 1e3, f / c) for k, c, f in rows],
    )
    for _k, coord, full in rows:
        # the separation-of-concerns payoff: in-place adaptation is
        # decisively cheaper than rebuilding the composition
        assert coord < full
