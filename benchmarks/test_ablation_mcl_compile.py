"""Ablation — MCL compilation and semantic-analysis cost (section 3.3.6).

Deployment-time costs must stay negligible next to reconfiguration (the
compiler runs once per deployment; Figure 7-6's reconfiguration runs per
event).  Benchmarks one compile of the web-acceleration script and the
scaling series over growing chains.
"""

import pytest

from repro.apps import WEB_ACCELERATION_MCL, build_server
from repro.bench.ablations import run_compile_ablation
from repro.semantics import analyze


def test_compile_web_acceleration(benchmark):
    server = build_server()
    compiled = benchmark(server.compile, WEB_ACCELERATION_MCL)
    assert compiled.main == "webAccel"


def test_analyze_web_acceleration(benchmark):
    server = build_server()
    table = server.compile(WEB_ACCELERATION_MCL).main_table()
    report = benchmark(analyze, table)
    assert report.consistent


def test_compile_series(benchmark):
    result = benchmark.pedantic(
        run_compile_ablation,
        kwargs={"chain_lengths": (5, 20, 50, 100), "repeats": 3},
        rounds=1,
        iterations=1,
    )
    result.print()
    compile_times = {n: c for n, c, _a in result.rows}
    # super-linear blowup would make large compositions undeployable
    assert compile_times[100] < compile_times[5] * 200
