"""Ablation — streamlet pooling (thesis section 3.3.4).

"It is also less expensive to reuse pooled streamlet instances than to
frequently create and destroy instances."  Benchmark targets: acquire/
release cycles through the Streamlet Manager with pooling on and off; the
series test verifies constructions collapse under pooling.
"""

import pytest

from repro.bench.ablations import run_pooling_ablation
from repro.runtime.directory import StreamletDirectory
from repro.runtime.streamlet_manager import StreamletManager
from repro.streamlets import register_builtin_streamlets


def _manager(pooling):
    directory = StreamletDirectory()
    register_builtin_streamlets(directory)
    return StreamletManager(directory, pooling=pooling)


def _cycle(manager, definition, n=50):
    for i in range(n):
        inst = manager.acquire(f"i{i}", definition)
        manager.release(inst)


def test_acquire_release_pooled(benchmark):
    manager = _manager(True)
    definition = manager.directory.definition("redirector")
    benchmark(_cycle, manager, definition)
    assert manager.created <= 2  # everything after the first is a pool hit


def test_acquire_release_unpooled(benchmark):
    manager = _manager(False)
    definition = manager.directory.definition("redirector")
    benchmark(_cycle, manager, definition)
    assert manager.created >= 50


def test_pooling_series(benchmark):
    result = benchmark.pedantic(
        run_pooling_ablation, kwargs={"populations": (5, 10, 20)},
        rounds=1, iterations=1,
    )
    result.print()
    for _n, _pooled_s, _unpooled_s, pooled_ctors, unpooled_ctors in result.rows:
        assert pooled_ctors < unpooled_ctors
