"""Ablation — the power-saving streamlet's energy effect (§4.3).

Same workload, two deployments: a plain pass-through stream vs one with
``powerSaving`` bundling messages into bursts of 6.  The client radio
energy model (wakeup + rx + linger) quantifies the saving the thesis's
LOW_ENERGY adaptation exists for.
"""

import pytest

from repro.apps import build_server
from repro.client.client import MobiGateClient
from repro.netsim.emulator import EndToEndEmulator
from repro.netsim.energy import RadioEnergyModel
from repro.netsim.link import WirelessLink
from repro.util.clock import VirtualClock
from repro.workloads.content import synthetic_text_message

PLAIN = """
main stream plain{
  streamlet r = new-streamlet (redirector);
  streamlet comm = new-streamlet (communicator);
  connect (r.po, comm.pi1);
}
"""

BUNDLED = """
main stream bundled{
  streamlet p = new-streamlet (powerSaving);
  streamlet comm = new-streamlet (communicator);
  connect (p.po, comm.pi1);
}
"""


def run_energy(source, *, bundle=None, n=24, seed=3):
    clock = VirtualClock()
    server = build_server(clock=clock)
    stream = server.deploy_script(source)
    if bundle is not None:
        instance = stream.instance_names()[0]
        stream.set_param(instance, "bundle", bundle)
    link = WirelessLink(200_000, clock=clock)
    client = MobiGateClient()
    emulator = EndToEndEmulator(stream, link, client)
    workload = [synthetic_text_message(2048, seed=seed * 100 + i) for i in range(n)]
    # user think time between messages: the gaps the radio could sleep in
    for message in workload:
        emulator.send(message)
        clock.advance(1.0)
    report = emulator.report
    # flush a trailing partial bundle so no message is stranded
    node = stream.node(stream.instance_names()[0])
    flush = getattr(node.streamlet, "flush", None)
    if flush:
        for port, message in flush():
            channel = node.outputs.get(port)
            if channel is not None:
                msg_id = stream.pool.admit(message)
                channel.post(msg_id, message.total_size())
        from repro.runtime.scheduler import InlineScheduler

        InlineScheduler(stream).pump()
        # the communicator's transport pushed into the emulator's outbox;
        # deliver what's left
        for processed in emulator._drain_outbox():
            emulator._transmit(processed)
    model = RadioEnergyModel()
    return report, model.consumed(report.arrivals), client


def test_power_saving_energy(benchmark):
    def run_pair():
        plain_report, plain_energy, _ = run_energy(PLAIN)
        bundled_report, bundled_energy, client = run_energy(BUNDLED, bundle=6)
        return plain_report, plain_energy, bundled_report, bundled_energy, client

    plain_report, plain_energy, bundled_report, bundled_energy, client = (
        benchmark.pedantic(run_pair, rounds=1, iterations=1)
    )
    print(
        f"\nplain:   {plain_energy.wakeups} wakeups, {plain_energy.joules:.3f} J, "
        f"{plain_report.messages_delivered} deliveries"
    )
    print(
        f"bundled: {bundled_energy.wakeups} wakeups, {bundled_energy.joules:.3f} J, "
        f"{bundled_report.messages_delivered} deliveries"
    )
    # the §4.3 claim, quantified: far fewer wakeups, lower energy
    assert bundled_energy.wakeups < plain_energy.wakeups / 2
    assert bundled_energy.joules < plain_energy.joules
    # and the client still received every message (unbundler peer)
    assert len(client.delivered) == 24
