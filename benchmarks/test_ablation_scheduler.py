"""Ablation — inline vs threaded execution engines.

The thesis credits "extensive use of multi-threading" for its numbers on
a JVM; under the GIL the deterministic inline pump is the faster engine
for CPU-bound streamlet work, which is why the experiments default to it.
This ablation records the gap honestly.
"""

import pytest

from repro.apps import build_server
from repro.bench.ablations import run_scheduler_ablation
from repro.bench.harness import redirector_chain_mcl
from repro.runtime.scheduler import InlineScheduler
from repro.workloads.content import synthetic_text_message


def test_inline_batch(benchmark):
    server = build_server()
    stream = server.deploy_script(redirector_chain_mcl(8))
    scheduler = InlineScheduler(stream)

    def batch():
        for i in range(20):
            stream.post(synthetic_text_message(1024, seed=i))
        scheduler.pump()
        stream.collect()

    benchmark(batch)


def test_scheduler_series(benchmark):
    result = benchmark.pedantic(
        run_scheduler_ablation, kwargs={"n_messages": 50}, rounds=1, iterations=1
    )
    result.print()
    times = dict(result.rows)
    assert times["inline"] > 0 and times["threaded"] > 0
