"""Adaptivity experiment — reconfiguration vs the best static policy.

The thesis's central premise, raced head-to-head: over a link that fades
from fast (20 Mb/s, where compression CPU outweighs its saving) to slow
(40 Kb/s, where compression is essential), the adaptive deployment must

1. clearly beat the static policy that is wrong for the fade
   (never-compress), and
2. match or beat the static policy that is wrong for the fast phase
   (always-compress),

because it *is* each policy in the phase where that policy is right.
"""

import pytest

from repro.bench.adaptivity import run_adaptivity


def test_adaptivity_race(benchmark):
    result = benchmark.pedantic(run_adaptivity, rounds=1, iterations=1)
    result.print()

    adaptive = result.goodput("adaptive")
    never = result.goodput("never-compress")
    always = result.goodput("always-compress")

    # the adaptive run really did reconfigure (insert + extract)
    assert result.events_handled == 2

    # (1) decisively better than the policy that ignores the fade
    assert adaptive > never * 1.05

    # (2) at worst within noise of the policy tuned for the fade,
    # despite also serving the fast phase without compression CPU
    assert adaptive > always * 0.93

    # the adaptive run moved fewer bytes than never-compress (it compressed
    # during the fade) but more than always-compress (it didn't when fast)
    bytes_on_link = {k: r.bytes_on_link for k, r in result.reports.items()}
    assert bytes_on_link["always-compress"] < bytes_on_link["adaptive"]
    assert bytes_on_link["adaptive"] < bytes_on_link["never-compress"]
