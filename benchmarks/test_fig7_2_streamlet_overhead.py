"""FIG7-2 — streamlet overhead (thesis section 7.2).

The pytest-benchmark target is the figure's unit operation: one message
through a redirector chain.  ``test_fig7_2_series`` regenerates the whole
figure and asserts its *shape* (linear growth), printing the series the
paper plots.
"""

import pytest

from repro.bench.fig7_2 import run_fig7_2
from repro.mime.message import MimeMessage
from repro.workloads.content import synthetic_text

PAYLOAD = synthetic_text(10 * 1024, seed=1)


def _one_pass(stream, scheduler):
    stream.post(MimeMessage("text/plain", PAYLOAD))
    scheduler.pump()
    stream.collect()


def test_message_through_chain10(benchmark, chain10):
    _server, stream, scheduler = chain10
    benchmark(_one_pass, stream, scheduler)


def test_fig7_2_series(benchmark):
    result = benchmark.pedantic(
        run_fig7_2,
        kwargs={"chain_lengths": (1, 5, 10, 15, 20, 25, 30), "repeats": 10},
        rounds=1,
        iterations=1,
    )
    result.print()
    # the paper's finding: overhead grows linearly with chain length
    assert result.r_squared > 0.9
    assert result.per_streamlet_seconds > 0
    latencies = [latency for _, latency in result.rows]
    assert latencies[-1] > latencies[0]
