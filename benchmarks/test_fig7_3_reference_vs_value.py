"""FIG7-3 — passing by reference vs passing by value (thesis section 7.3).

Benchmark targets: one 200 KB message through a 10-redirector chain under
each buffer-management mode.  The series test regenerates the figure and
asserts the paper's shape: the by-value penalty grows with message size.
"""

import pytest

from repro.apps import build_server
from repro.bench.fig7_3 import run_fig7_3
from repro.bench.harness import redirector_chain_mcl
from repro.mime.message import MimeMessage
from repro.runtime.message_pool import PassMode
from repro.runtime.scheduler import InlineScheduler
from repro.workloads.content import synthetic_text

PAYLOAD_200K = synthetic_text(200 * 1024, seed=3)


def _deploy(mode):
    server = build_server(pass_mode=mode)
    stream = server.deploy_script(redirector_chain_mcl(10))
    return stream, InlineScheduler(stream)


def _one_pass(stream, scheduler):
    stream.post(MimeMessage("text/plain", bytearray(PAYLOAD_200K)))
    scheduler.pump()
    stream.collect()


def test_by_reference_200kb(benchmark):
    stream, scheduler = _deploy(PassMode.REFERENCE)
    benchmark(_one_pass, stream, scheduler)
    assert stream.pool.copies == 0


def test_by_value_200kb(benchmark):
    stream, scheduler = _deploy(PassMode.VALUE)
    benchmark(_one_pass, stream, scheduler)
    assert stream.pool.copies > 0


def test_fig7_3_series(benchmark):
    result = benchmark.pedantic(
        run_fig7_3,
        kwargs={"sizes_kb": (10, 50, 100, 200, 400), "chain": 30, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    result.print()
    # by-value must cost more at large sizes, and the gap must widen
    assert result.speedup_at(400) > result.speedup_at(10)
    assert result.speedup_at(400) > 1.3
