"""FIG7-6 — reconfiguration time (thesis section 7.4).

Benchmark target: the LOW_BANDWIDTH handler of ``ReconfigExp`` inserting
10 redirectors (the thesis's "<20 ms at 10 insertions" point).  The series
test regenerates the sweep and asserts the paper's shape: roughly linear
growth, with 100 insertions still completing quickly.
"""

import pytest

from repro.apps import build_server
from repro.bench.fig7_6 import reconfig_exp_mcl, run_fig7_6


def test_insert_10_streamlets(benchmark):
    def setup():
        server = build_server()
        stream = server.deploy_script(reconfig_exp_mcl(10))
        return (server, stream), {}

    def reconfigure(server, stream):
        server.events.raise_event("LOW_BANDWIDTH")
        assert stream.last_reconfig is not None

    benchmark.pedantic(reconfigure, setup=setup, rounds=20)


def test_fig7_6_series(benchmark):
    result = benchmark.pedantic(
        run_fig7_6,
        kwargs={"insert_counts": (1, 5, 10, 20, 50, 100), "repeats": 3},
        rounds=1,
        iterations=1,
    )
    result.print()
    walls = {n: wall for n, wall, _eq, _t in result.rows}
    # monotone growth in the number of inserted streamlets
    assert walls[100] > walls[10] > 0
    # the thesis's headline: 10 insertions well under 20 ms, 100 under 100 ms
    # (2004 hardware); on modern hardware we hold the same bounds easily
    assert walls[10] < 0.020
    assert walls[100] < 0.100
    # roughly linear: 100 insertions cost far less than 100x one insertion's
    # fixed overhead would suggest, and scale within ~30x of the 10-point
    assert walls[100] < walls[10] * 30
