"""FIG7-7 — MobiGATE end-to-end performance (thesis section 7.5).

Benchmark target: one grid cell (200 Kb/s, 1 ms).  The series test sweeps
the thesis's bandwidth grid at one delay and asserts the figure's shape:

1. MobiGATE goodput >= direct transfer at low/mid bandwidths;
2. the advantage shrinks toward 2 Mb/s;
3. below 100 Kb/s the Text Compressor insertion lifts goodput sharply.
"""

import pytest

from repro.bench.fig7_7 import run_cell, run_fig7_7


def test_one_cell_200kbps(benchmark):
    cell = benchmark.pedantic(
        run_cell, args=(200_000.0, 0.001), kwargs={"n_messages": 6},
        rounds=3, iterations=1,
    )
    assert cell.mobigate.messages_delivered == cell.mobigate.messages_sent


def test_fig7_7_series(benchmark):
    bandwidths = tuple(k * 1000.0 for k in (20, 50, 100, 200, 500, 750, 1000, 2000))
    result = benchmark.pedantic(
        run_fig7_7,
        kwargs={"bandwidths_bps": bandwidths, "delays_s": (0.001,), "n_messages": 10},
        rounds=1,
        iterations=1,
    )
    result.print()

    # (1) MobiGATE wins clearly at low and mid bandwidths
    for kbps in (20, 50, 200, 500):
        assert result.at(kbps * 1000.0, 0.001).speedup > 1.0

    # (2) the advantage shrinks as bandwidth rises (overhead ~ saving)
    low = result.at(50_000.0, 0.001).speedup
    high = result.at(2_000_000.0, 0.001).speedup
    assert high < low
    assert high > 0.9  # near-parity, not a collapse

    # (3) the compressor was inserted exactly below the 100 Kb/s threshold
    assert result.at(20_000.0, 0.001).compressor_inserted
    assert result.at(50_000.0, 0.001).compressor_inserted
    assert not result.at(500_000.0, 0.001).compressor_inserted

    # (4) and it pays: >2x over direct transfer down there
    assert result.at(20_000.0, 0.001).speedup > 2.0
