"""Motivation benchmark — why proxies at the base station win (§2.1).

Regenerates the classic wireless-TCP comparison the thesis cites: plain
TCP vs the Snoop agent vs Indirect TCP across wireless loss rates.  Not a
thesis figure, but the measured form of its chapter-1/2 argument that
intelligence belongs at the wired/wireless boundary — where MobiGATE puts
its proxy.
"""

import pytest

from repro.bench.reporting import print_series
from repro.netsim.wtcp import run_wtcp

LOSS_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)


def test_one_snoop_transfer(benchmark):
    result = benchmark(run_wtcp, "snoop", wireless_loss=0.05, segments=100, seed=1)
    assert result.delivered_segments == 100


def test_wtcp_series(benchmark):
    def sweep():
        rows = []
        for loss in LOSS_RATES:
            goodputs = {
                scheme: run_wtcp(scheme, wireless_loss=loss, seed=3).goodput_bps
                for scheme in ("plain", "snoop", "split")
            }
            rows.append((loss, goodputs))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Motivation: wireless TCP goodput vs loss rate (Kb/s)",
        ["loss", "plain", "snoop", "split", "snoop/plain"],
        [
            (loss, g["plain"] / 1000, g["snoop"] / 1000, g["split"] / 1000,
             g["snoop"] / g["plain"] if g["plain"] else float("inf"))
            for loss, g in rows
        ],
    )
    by_loss = dict(rows)
    # lossless: all schemes healthy
    assert by_loss[0.0]["plain"] > 0
    # at 10% loss the base-station fixes dominate plain TCP
    assert by_loss[0.10]["snoop"] > by_loss[0.10]["plain"] * 3
    assert by_loss[0.10]["split"] > by_loss[0.10]["plain"] * 2
    # plain TCP's collapse is monotone in loss
    plains = [by_loss[loss]["plain"] for loss in LOSS_RATES]
    assert all(a >= b for a, b in zip(plains, plains[1:]))
