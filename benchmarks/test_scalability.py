"""Scalability — "with the increase in the number of running applications
and mobile clients, an acceptable performance should still be obtained"
(thesis section 3.1).

Deploy N copies of the web-acceleration composition on one server, feed
them round-robin, and compare per-message processing cost across
populations.  The claim holds if cost per message stays roughly flat —
pooling and table-driven routing must not degrade with population.
"""

import time

import pytest

from repro.apps import build_server
from repro.bench.reporting import print_series
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler
from repro.workloads.content import synthetic_text

SOURCE_TEMPLATE = """
main stream app{i}{{
  streamlet c = new-streamlet (text_compress);
  streamlet e = new-streamlet (encryptor);
  connect (c.po, e.pi);
}}
"""

PAYLOAD = synthetic_text(4096, seed=21)


def deploy_population(n):
    """One server hosting ``n`` independent stream applications."""
    server = build_server()
    streams = []
    for i in range(n):
        stream = server.deploy_script(SOURCE_TEMPLATE.format(i=i), stream=f"app{i}")
        streams.append((stream, InlineScheduler(stream)))
    return server, streams


def pump_round_robin(streams, messages_per_stream):
    """Feed every stream in turn; returns total wall seconds."""
    start = time.perf_counter()
    for _ in range(messages_per_stream):
        for stream, scheduler in streams:
            stream.post(MimeMessage("text/plain", PAYLOAD))
            scheduler.pump()
            stream.collect()
    return time.perf_counter() - start


def test_population_16(benchmark):
    _server, streams = deploy_population(16)

    def one_round():
        pump_round_robin(streams, 1)

    benchmark(one_round)


def test_scalability_series(benchmark):
    def sweep():
        rows = []
        for n in (1, 4, 16, 32):
            _server, streams = deploy_population(n)
            pump_round_robin(streams, 2)  # warm
            elapsed = pump_round_robin(streams, 5)
            per_message = elapsed / (n * 5)
            rows.append((n, elapsed, per_message))
            for stream, _ in streams:
                stream.end()
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Scalability: per-message cost vs stream population",
        ["streams", "batch (ms)", "per message (us)"],
        [(n, elapsed * 1e3, per * 1e6) for n, elapsed, per in rows],
    )
    per_costs = {n: per for n, _, per in rows}
    # per-message cost must not blow up with population (allow 3x headroom
    # for cache effects; the failure mode guarded against is linear growth)
    assert per_costs[32] < per_costs[1] * 3
