"""The section 4.3 datatype-specific distillation application (Figure 4-6).

A switch splits document pages into image and PostScript branches; images
are down-sampled, documents are stripped to rich text and compressed, and
a merge re-assembles each page.  Context events reconfigure the running
composition:

* LOW_GRAY   → map_to_16_grays spliced into the image branch;
* LOW_ENERGY → powerSaving bundles output pages into radio-friendly bursts.

Run:  python examples/distillation.py
"""

from repro.apps import DISTILLATION_MCL, build_server
from repro.runtime.scheduler import InlineScheduler
from repro.semantics import analyze
from repro.workloads.content import ps_page_message


def page_stats(message):
    kinds = [p.content_type.essence for p in message.parts]
    return f"{message.total_size()} bytes, parts: {', '.join(kinds)}"


def main() -> None:
    server = build_server()
    table = server.compile(DISTILLATION_MCL).main_table()
    print("semantic analysis:", analyze(table).summary())
    print("dormant (optional) entities:", sorted(table.dormant_instances()))

    stream = server.deploy_script(DISTILLATION_MCL)
    scheduler = InlineScheduler(stream)

    page = ps_page_message(n_images=2, paragraphs=6, seed=1)
    print(f"\noriginal page: {page_stats(page)}")
    [distilled] = scheduler.run_to_completion([page])
    print(f"distilled page: {page_stats(distilled)}")

    print("\n-- LOW_GRAY: client can only display 16 grays --")
    server.events.raise_event("LOW_GRAY")
    print(f"reconfiguration took {stream.last_reconfig.total * 1e3:.3f} ms "
          f"(eq. 7-1: suspend + channel ops + activate)")
    [gray_page] = scheduler.run_to_completion([ps_page_message(n_images=2, seed=2)])
    print(f"grayscale page: {page_stats(gray_page)}")

    print("\n-- LOW_ENERGY: bundle pages so the client radio can sleep --")
    server.events.raise_event("LOW_ENERGY")
    pages = [ps_page_message(n_images=1, paragraphs=2, seed=s) for s in range(4)]
    bursts = scheduler.run_to_completion(pages)
    print(f"{len(pages)} pages delivered as {len(bursts)} burst(s); "
          f"bundle header: {bursts[0].headers.get('X-MobiGATE-Bundle')}")


if __name__ == "__main__":
    main()
