"""The gateway over real sockets: deploy, stream, observe.

This example runs the full deployable shape of the proxy:
:class:`~repro.gateway.GatewayServer` binds an asyncio **data plane**
(where clients stream length-delimited MIME frames) and a loopback
**control plane** (line-delimited JSON management verbs).  Everything
below is done through those two sockets — nothing touches the runtime
objects directly:

1. deploy a redirector chain via the control API (the reply carries the
   ``Content-Session`` routing key);
2. drive a fleet of concurrent loopback clients, each closed-loop:
   serialize a frame, send it, wait for its echo;
3. trigger a scripted ``LOW_BANDWIDTH`` reconfiguration mid-run — the
   ``when`` handler commits an epoch that lengthens the chain while
   traffic continues to flow;
4. read back the session's conservation ledger (every admitted message
   is delivered, absorbed, dead-lettered, dropped, or resident — the
   §7.2 invariant) and a telemetry summary.

Run:  python examples/gateway_echo.py
"""

import socket
import threading

from repro.gateway import GatewayServer
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message

MCL = """main stream echo{
  streamlet a, b = new-streamlet (redirector);
  connect (a.po, b.pi);
  when (LOW_BANDWIDTH) {
    streamlet relay = new-streamlet (redirector);
    insert (a.po, b.pi, relay);
  }
}"""

N_CLIENTS = 20
MESSAGES_PER_CLIENT = 25


def run_client(index: int, address, session_key: str, failures: list) -> None:
    """One closed-loop client: send a frame, wait for its echo, repeat."""
    assembler = FrameAssembler()
    try:
        with socket.create_connection(address, timeout=30) as sock:
            for n in range(MESSAGES_PER_CLIENT):
                message = MimeMessage("text/plain", f"c{index}-m{n}".encode())
                message.headers.session = session_key
                sock.sendall(serialize_message(message))
                echoed = []
                while not echoed:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise ConnectionError("gateway closed the connection")
                    echoed = assembler.feed(chunk)
                if echoed[0].body != message.body:
                    raise AssertionError(f"echo mismatch for client {index}")
    except Exception as exc:  # collected, not raised: threads report back
        failures.append((index, exc))


def main() -> None:
    gateway = GatewayServer()
    with gateway.run_in_thread() as handle:
        print(f"data plane    : {handle.data_address}")
        print(f"control plane : {handle.control_address}")

        deployed = handle.control({"op": "deploy", "mcl": MCL})
        assert deployed["ok"], deployed
        key = deployed["session"]
        print(f"deployed      : session={key} stream={deployed['stream']} "
              f"epoch={deployed['epoch']}")

        failures: list = []
        threads = [
            threading.Thread(target=run_client, args=(i, handle.data_address, key, failures))
            for i in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()

        # reconfigure while the fleet is mid-flight: the when-handler
        # inserts a relay into the live chain as a transactional epoch
        adapted = handle.control(
            {"op": "reconfigure", "event": "LOW_BANDWIDTH", "session": key}
        )
        print(f"reconfigured  : event=LOW_BANDWIDTH epoch={adapted.get('epoch')}")

        for thread in threads:
            thread.join()
        if failures:
            raise SystemExit(f"client failures: {failures[:3]}")
        total = N_CLIENTS * MESSAGES_PER_CLIENT
        print(f"echoed        : {total} messages across {N_CLIENTS} connections")

        stats = handle.control({"op": "stats", "session": key})
        ledger = stats["conservation"]
        print("\n-- conservation --")
        print(ledger["ledger"])
        print(f"balanced      : {ledger['balanced']}")

        print("\n-- gateway counters --")
        for name in ("frames_in", "frames_out", "parked", "shed", "contended", "orphans"):
            print(f"{name:13} : {stats[name]}")

        scraped = handle.control({"op": "telemetry"})
        families = scraped["snapshot"].get("families", [])
        print("\n-- telemetry (gateway families) --")
        for family in families:
            if not family["name"].startswith("mobigate_gateway_"):
                continue
            for sample in family["samples"]:
                labels = ",".join(f"{k}={v}" for k, v in sample["labels"].items())
                value = sample.get("value", sample.get("count"))
                print(f"{family['name']}{{{labels}}} = {value}")

        health = handle.control({"op": "health"})
        print(f"\nhealth        : sessions={health['sessions']} "
              f"frame_errors={health['frame_errors']} "
              f"uptime={health['uptime_s']:.2f}s")
    print("done.")


if __name__ == "__main__":
    main()
