"""Watching the streamlet plane work: metrics, traces, exports.

Every :class:`~repro.runtime.server.MobiGateServer` carries a
:class:`~repro.telemetry.Telemetry` facade (default-on).  This example
deploys the section 7.5 web-acceleration stream, pushes a mixed workload
through it — triggering a LOW_BANDWIDTH reconfiguration half-way — and
then reads back what the instrumentation saw: per-streamlet hop-latency
histograms, the reconfiguration epoch, one complete message trace that
continues through the MobiGATE client's peer streamlets, and a
Prometheus-format export a real scrape pipeline could ingest.

Run:  python examples/observability.py
"""

from repro.apps import WEB_ACCELERATION_MCL, build_server
from repro.client.client import MobiGateClient
from repro.runtime.scheduler import InlineScheduler
from repro.telemetry import MetricsRegistry, Telemetry
from repro.workloads.generators import WebWorkload


def main() -> None:
    """Run the observed demo and print histograms, spans, and an export."""
    # an isolated registry so repeated runs (and the test harness) start
    # clean; trace_sample_interval=1 traces every message — fine for a
    # demo, costly under load (the default of 64 stays within ~8% overhead)
    telemetry = Telemetry(registry=MetricsRegistry(), trace_sample_interval=1)
    server = build_server(telemetry=telemetry)
    stream = server.deploy_script(WEB_ACCELERATION_MCL)
    scheduler = InlineScheduler(stream)

    # the communicator is a sink whose transport is "the wireless link";
    # here it is shorted straight to a client sharing the same telemetry,
    # so client-side peer spans join the server's traces
    client = MobiGateClient(telemetry=telemetry)
    stream.set_param("comm", "transport", client.receive)

    workload = list(WebWorkload(seed=11, image_fraction=0.35).messages(10))
    for message in workload[:5]:
        stream.post(message)
        scheduler.pump()
    server.events.raise_event("LOW_BANDWIDTH")  # splice in the compressor
    for message in workload[5:]:
        stream.post(message)
        scheduler.pump()
    stream.end()

    print("per-streamlet hop latency (always-on histograms):")
    for values, child in telemetry.registry.get("mobigate_hop_seconds").children():
        print(
            f"  {values[1]:<6s} count={child.count:<3d} "
            f"mean={child.stats.mean * 1e6:7.1f}us  max={child.stats.maximum * 1e6:7.1f}us"
        )

    print("\nreconfiguration epochs (Equation 7-1 terms as span attributes):")
    for span in telemetry.tracer.spans():
        if span.name == "reconfig":
            print(
                f"  event={span.attrs['event']}  total={span.duration * 1e6:.1f}us  "
                f"actions={span.attrs['actions']}"
            )

    # one complete trace: ingress → server hops → client peer reversal
    for trace_id in telemetry.tracer.trace_ids():
        names = [s.name for s in telemetry.tracer.trace(trace_id)]
        if any(n.startswith("peer:") for n in names):
            print("\none message, end to end (server hops, then client peers):")
            print(telemetry.tracer.format_trace(trace_id))
            break

    print("\nPrometheus export (first lines):")
    for line in telemetry.prometheus().splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
