"""Per-user customization (section 1.2.1's fourth service entity kind).

A TranSend-style preferences database drives per-message distillation: the
customizer annotates each message from its user's profile, and downstream
streamlets honour the annotations — the PDA user gets small, aggressively
compressed images; the laptop user gets high quality.

Run:  python examples/personalization.py
"""

from repro.apps import build_server
from repro.mcl import astnodes as ast
from repro.mime.mediatype import IMAGE
from repro.runtime.scheduler import InlineScheduler
from repro.streamlets.customize import (
    USER_HEADER,
    Customizer,
    PreferencesDB,
    UserPreferences,
)
from repro.workloads.content import synthetic_image_message

SOURCE = """
main stream personalised{
  streamlet cz = new-streamlet (img_customizer);
  streamlet g2j = new-streamlet (gif2jpeg);
  streamlet ds = new-streamlet (img_down_sample);
  connect (cz.po, g2j.pi);
  connect (g2j.po, ds.pi);
}
"""


def main() -> None:
    server = build_server()
    # a customizer variant typed for the image branch (the generic one is
    # */* -> */*, which MCL rightly refuses to feed a typed input)
    server.directory.advertise(
        ast.StreamletDef(
            name="img_customizer",
            ports=(
                ast.PortDecl(ast.PortDirection.IN, "pi", IMAGE),
                ast.PortDecl(ast.PortDirection.OUT, "po", IMAGE),
            ),
            kind=ast.StreamletKind.STATEFUL,
            description="customizer bound to the image branch",
        ),
        Customizer,
    )
    stream = server.deploy_script(SOURCE)

    prefs = PreferencesDB()
    prefs.put("pda-user", UserPreferences(quality=15, downsample_factor=4))
    prefs.put("laptop-user", UserPreferences(quality=85, downsample_factor=1))
    stream.set_param("cz", "prefs", prefs)

    scheduler = InlineScheduler(stream)
    for user in ("pda-user", "laptop-user", "anonymous"):
        message = synthetic_image_message(160, 120, seed=11)
        original = message.body_size()
        message.headers.set(USER_HEADER, user)
        stream.post(message)
        scheduler.pump()
        [out] = stream.collect()
        print(
            f"{user:12s}: {original:6d} -> {out.body_size():6d} bytes "
            f"({out.content_type})"
        )


if __name__ == "__main__":
    main()
