"""Quickstart: compose two streamlets in MCL, deploy, and push a message.

Run:  python examples/quickstart.py
"""

from repro.apps import build_server
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler

# An MCL script: a text compressor feeding an encryptor.  Definitions for
# the built-in services (text_compress, encryptor, ...) come from the
# server's Streamlet Directory; scripts may also define their own.
SOURCE = """
main stream secureText{
  streamlet comp = new-streamlet (text_compress);
  streamlet enc = new-streamlet (encryptor);
  connect (comp.po, enc.pi);
}
"""


def main() -> None:
    # 1. a server with the built-in streamlet library advertised
    server = build_server()

    # 2. compile + chapter-5 semantic verification + deployment in one call
    stream = server.deploy_script(SOURCE)
    scheduler = InlineScheduler(stream)

    # 3. push a message through the exposed input port
    message = MimeMessage("text/plain", b"hello, wireless world! " * 40)
    original = message.body
    print(f"in:  {len(original)} bytes of text/plain")

    stream.post(message)
    scheduler.pump()
    [wire] = stream.collect()
    print(
        f"out: {wire.body_size()} bytes, peer stack = {wire.headers.peer_stack()}"
    )

    # 4. the MobiGATE client reverses everything using the peer stack
    from repro.client.client import MobiGateClient

    client = MobiGateClient()
    [delivered] = client.receive(wire)
    assert delivered.body == original
    print(f"client recovered the original {len(delivered.body)} bytes — OK")


if __name__ == "__main__":
    main()
