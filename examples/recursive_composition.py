"""Recursive composition (section 4.4.2, Figure 4-9).

A stream can be reused as a streamlet in a higher-level stream: the MCL
compiler flattens the composite, prefixing inner instance names and
binding the declared interface ports to the child's unbound inner ports.

Run:  python examples/recursive_composition.py
"""

from repro.apps import build_server
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler

# The inner stream compresses then encrypts.  The 'streamlet secureText'
# definition is its declared interface (Figure 4-9's streamlet streamApp);
# 'main stream composite' reuses it like any other streamlet.
SOURCE = """
// a typed pass-through; script-local definitions without registered
// implementations run as plain forwarders
streamlet textTap{
  port{
    in pi : text/*;
    out po : text/plain;
  }
}

streamlet secureText{
  port{
    in pi : text/*;
    out po : */*;
  }
  attribute{
    type = STATEFUL;
    library = "mcl/secureText";
    description = "a composite: compress then encrypt";
  }
}

stream secureText{
  streamlet comp = new-streamlet (text_compress);
  streamlet enc = new-streamlet (encryptor);
  connect (comp.po, enc.pi);
}

main stream composite{
  streamlet pre = new-streamlet (textTap);
  streamlet sec = new-streamlet (secureText);
  streamlet post = new-streamlet (redirector);
  connect (pre.po, sec.pi);
  connect (sec.po, post.pi);
}
"""


def main() -> None:
    server = build_server()
    compiled = server.compile(SOURCE)
    table = compiled.main_table()

    print("instances after composite expansion:")
    for name in table.instances:
        print(f"  {name}  ({table.instances[name].name})")
    print("links:")
    for link in table.links:
        print(f"  {link}")

    stream = server.deploy_table(table)
    scheduler = InlineScheduler(stream)
    message = MimeMessage("text/plain", b"composite streamlets compose! " * 30)
    original = message.body
    stream.post(message)
    scheduler.pump()
    [wire] = stream.collect()
    print(f"\npeer stack on the wire: {wire.headers.peer_stack()}")

    from repro.client.client import MobiGateClient

    [delivered] = MobiGateClient().receive(wire)
    assert delivered.body == original
    print("client recovered the original payload through the composite — OK")


if __name__ == "__main__":
    main()
