"""Chapter 5 in action: analysing MCL compositions for consistency.

Reproduces the section 5.3 case (a feedback loop) and exercises all five
analyses — feedback loops, open circuits, mutual exclusion, dependency,
and preorder — on deliberately broken compositions.

Run:  python examples/semantic_analysis.py
"""

from repro.mcl.compiler import compile_script
from repro.semantics import analyze

DEFS = """
streamlet stage{
  port{ in pi : */*; out po : */*; }
}
streamlet sink{
  port{ in pi : */*; }
}
streamlet source{
  port{ out po : */*; }
}
streamlet encryptor{
  port{ in pi : */*; out po : */*; }
  attribute{ requires = "decryptor"; }
}
streamlet decryptor{
  port{ in pi : */*; out po : */*; }
}
streamlet compressor{
  port{ in pi : */*; out po : */*; }
  attribute{ after = "encryptor"; }
}
streamlet colorize{
  port{ in pi : */*; out po : */*; }
  attribute{ excludes = "grayscale"; }
}
streamlet grayscale{
  port{ in pi : */*; out po : */*; }
}
"""

CASES = {
    "section 5.3 feedback loop (s1 -> s2 -> s3 -> s1)": """
stream loop{
  streamlet s1, s2, s3 = new-streamlet (stage);
  connect (s1.po, s2.pi);
  connect (s2.po, s3.pi);
  connect (s3.po, s1.pi);
}
""",
    "open circuit (stage drops everything it produces)": """
stream open{
  streamlet src = new-streamlet (source);
  streamlet mid = new-streamlet (stage);
  connect (src.po, mid.pi);
}
""",
    "mutual exclusion (colorize and grayscale share a path)": """
stream exclusive{
  streamlet src = new-streamlet (source);
  streamlet c = new-streamlet (colorize);
  streamlet g = new-streamlet (grayscale);
  streamlet end = new-streamlet (sink);
  connect (src.po, c.pi);
  connect (c.po, g.pi);
  connect (g.po, end.pi);
}
""",
    "dependency (encryptor deployed without its decryptor)": """
stream lonely{
  streamlet src = new-streamlet (source);
  streamlet e = new-streamlet (encryptor);
  streamlet end = new-streamlet (sink);
  connect (src.po, e.pi);
  connect (e.po, end.pi);
}
""",
    "preorder (compression before encryption)": """
stream misordered{
  streamlet src = new-streamlet (source);
  streamlet comp = new-streamlet (compressor);
  streamlet e = new-streamlet (encryptor);
  streamlet d = new-streamlet (decryptor);
  streamlet end = new-streamlet (sink);
  connect (src.po, comp.pi);
  connect (comp.po, e.pi);
  connect (e.po, d.pi);
  connect (d.po, end.pi);
}
""",
    "a consistent composition": """
stream good{
  streamlet src = new-streamlet (source);
  streamlet e = new-streamlet (encryptor);
  streamlet d = new-streamlet (decryptor);
  streamlet comp = new-streamlet (compressor);
  streamlet end = new-streamlet (sink);
  connect (src.po, e.pi);
  connect (e.po, d.pi);
  connect (d.po, comp.pi);
  connect (comp.po, end.pi);
}
""",
}


def main() -> None:
    for title, body in CASES.items():
        compiled = compile_script(DEFS + body)
        [table] = compiled.tables.values()
        # thesis-style closed analysis: dangling outputs are real mistakes
        report = analyze(table, exposed_ports_bound=False,
                         terminal_definitions={"sink"})
        print(f"\n### {title}")
        print(report.summary())


if __name__ == "__main__":
    main()
