"""The section 7.5 application: speeding up web surfing over slow links.

Images are transcoded (GIF-like → JPEG-like) and down-sampled; when the
emulated wireless link fades below 100 Kb/s, the context monitor raises
LOW_BANDWIDTH and the Text Compressor is spliced into the text branch —
then extracted again when the link recovers.  The MobiGATE client undoes
the compression transparently via the peer-streamlet stack.

Run:  python examples/web_acceleration.py
"""

from repro.apps import WEB_ACCELERATION_MCL, build_server
from repro.client.client import MobiGateClient
from repro.netsim.emulator import DirectTransfer, EndToEndEmulator
from repro.netsim.link import WirelessLink
from repro.netsim.monitor import ContextMonitor
from repro.netsim.traces import BandwidthTrace
from repro.util.clock import VirtualClock
from repro.workloads.generators import WebWorkload


def main() -> None:
    # link: 1 Mb/s, fading to 50 Kb/s between t=2s and t=30s
    trace = BandwidthTrace.fade(1_000_000, 50_000, start=2.0, duration=28.0)

    clock = VirtualClock()
    server = build_server(clock=clock)
    stream = server.deploy_script(WEB_ACCELERATION_MCL)
    link = WirelessLink(1_000_000, propagation_delay=0.02, clock=clock)
    monitor = ContextMonitor(link, server.events, low_threshold_bps=100_000, trace=trace)
    client = MobiGateClient()
    emulator = EndToEndEmulator(stream, link, client, monitor=monitor)

    workload = list(WebWorkload(seed=42, image_fraction=0.4).messages(30))
    report = emulator.run(workload)

    print("adaptation timeline (virtual seconds):")
    for timestamp, event in monitor.raised:
        print(f"  t={timestamp:8.3f}s  {event}")
    print(f"\nmessages: {report.messages_sent} sent, "
          f"{report.messages_delivered} delivered, {report.losses} lost")
    print(f"offered app bytes: {report.bytes_offered_app}")
    print(f"bytes on the wireless link: {report.bytes_on_link} "
          f"(reduction ratio {report.reduction_ratio:.2f})")
    print(f"goodput with MobiGATE: {report.goodput_bps / 1000:.1f} Kb/s")

    # the no-proxy baseline over the same fading link
    base_link = WirelessLink(1_000_000, propagation_delay=0.02, clock=VirtualClock())
    base_monitor_trace = trace  # same conditions, applied manually

    class _TraceDriver:
        """Drive the baseline link from the same bandwidth trace."""

        def __init__(self, link, trace):
            self.link, self.trace = link, trace

        def run(self, messages):
            transfer = DirectTransfer(self.link)
            for message in messages:
                self.link.set_bandwidth(self.trace.value_at(self.link.clock.now()))
                transfer.run([message])
            transfer.report.elapsed = self.link.clock.now()
            return transfer.report

    baseline = _TraceDriver(base_link, base_monitor_trace).run(
        WebWorkload(seed=42, image_fraction=0.4).messages(30)
    )
    print(f"goodput direct transfer: {baseline.goodput_bps / 1000:.1f} Kb/s")
    speedup = report.goodput_bps / baseline.goodput_bps
    print(f"MobiGATE speedup on this fading link: {speedup:.2f}x")


if __name__ == "__main__":
    main()
