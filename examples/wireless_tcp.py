"""The motivation, measured: TCP over wireless links (thesis section 2.1).

Plain TCP misreads random wireless loss as congestion and collapses; the
Snoop agent and Indirect TCP both fix it by putting intelligence at the
wired/wireless boundary — exactly where MobiGATE puts its proxy.

Run:  python examples/wireless_tcp.py
"""

from repro.bench.reporting import print_series
from repro.netsim.wtcp import run_wtcp


def main() -> None:
    rows = []
    for loss in (0.0, 0.01, 0.02, 0.05, 0.10, 0.20):
        results = {
            scheme: run_wtcp(scheme, wireless_loss=loss, segments=300, seed=7)
            for scheme in ("plain", "snoop", "split")
        }
        rows.append((
            f"{loss:.0%}",
            results["plain"].goodput_bps / 1000,
            results["snoop"].goodput_bps / 1000,
            results["split"].goodput_bps / 1000,
            results["plain"].timeouts,
            results["snoop"].local_retransmissions,
        ))
    print_series(
        "TCP over a lossy wireless hop (300 segments)",
        ["loss", "plain (Kb/s)", "snoop (Kb/s)", "split (Kb/s)",
         "plain RTOs", "snoop local rexmits"],
        rows,
    )
    print(
        "\nThe snoop agent retransmits locally and suppresses duplicate ACKs,\n"
        "so the sender never sees the wireless loss — its window stays open.\n"
        "This is the argument for base-station proxies that MobiGATE builds on."
    )


if __name__ == "__main__":
    main()
