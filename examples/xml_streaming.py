"""XML streaming: progressive delivery of structured documents (§1.2.1).

A large catalog document would stall a slow link until its last byte; the
xml_streamer splits it at element boundaries so fragments flow as soon as
they are ready.  The client's reassembly peer rebuilds the document
transparently, and the fragment timeline shows the progressive-delivery
payoff: first fragment on the wire long before the last.

Run:  python examples/xml_streaming.py
"""

from repro.apps import build_server
from repro.client.client import MobiGateClient
from repro.codecs.sgml import Element, parse
from repro.mime.message import MimeMessage
from repro.netsim.link import WirelessLink
from repro.runtime.scheduler import InlineScheduler
from repro.util.clock import VirtualClock
from repro.workloads.content import synthetic_text

SOURCE = """
main stream progressive{
  streamlet xs = new-streamlet (xml_streamer);
}
"""


def build_catalog(n_items: int) -> Element:
    """A product catalog with chunky item descriptions."""
    catalog = Element("catalog", {"shop": "mobigate-demo", "currency": "credits"})
    for index in range(n_items):
        item = Element("item", {"id": str(index), "price": str(10 + index)})
        item.add(Element("name").add(f"Product {index}"))
        description = synthetic_text(1200, seed=index).decode("utf-8")
        item.add(Element("description").add(description))
        catalog.add(item)
    return catalog


def main() -> None:
    server = build_server()
    stream = server.deploy_script(SOURCE)
    scheduler = InlineScheduler(stream)
    client = MobiGateClient()
    link = WirelessLink(50_000, clock=VirtualClock())  # 50 Kb/s

    catalog = build_catalog(8)
    wire_form = catalog.serialize().encode("utf-8")
    print(f"document: {len(wire_form)} bytes, {len(catalog.elements())} items")

    stream.post(MimeMessage("application/xml", wire_form))
    scheduler.pump()
    fragments = stream.collect()
    print(f"streamed as {len(fragments)} fragments\n")

    print("fragment arrival timeline on a 50 Kb/s link:")
    delivered = []
    for index, fragment in enumerate(fragments):
        result = link.transmit(fragment.total_size())
        print(f"  fragment {index}: {fragment.total_size():5d} bytes, "
              f"arrives t={result.arrival:6.3f}s")
        delivered.extend(client.receive(fragment))

    whole_transfer = len(wire_form) * 8 / 50_000
    print(f"\nwhole-document transfer would deliver nothing before "
          f"t={whole_transfer:.3f}s;")
    print("streaming put the first item on screen at the first arrival above.")

    [document] = delivered
    rebuilt = parse(document.body.decode("utf-8"))
    assert rebuilt == catalog
    print("client reassembled the complete catalog — identical to the original.")


if __name__ == "__main__":
    main()
