"""MobiGATE reproduction — adaptive proxy middleware for wireless links.

A from-scratch Python implementation of the MobiGATE system (Zheng & Chan,
ICPP 2004 / HKPU MPhil thesis 2005): streamlet composition described in
the MCL coordination language, checked by the chapter-5 semantic analyses,
executed by a two-plane runtime, reversed by a thin client, and evaluated
over a virtual-time wireless emulation.

Quick start::

    from repro import build_server, InlineScheduler, MimeMessage

    server = build_server()
    stream = server.deploy_script(\"\"\"
    main stream s{
      streamlet c = new-streamlet (text_compress);
      streamlet e = new-streamlet (encryptor);
      connect (c.po, e.pi);
    }
    \"\"\")
    scheduler = InlineScheduler(stream)
    stream.post(MimeMessage("text/plain", b"hello " * 100))
    scheduler.pump()
    [wire] = stream.collect()

See README.md, DESIGN.md, and docs/ for the full tour.
"""

from repro.apps import (
    DISTILLATION_MCL,
    WEB_ACCELERATION_MCL,
    build_server,
)
from repro.client.client import MobiGateClient
from repro.errors import MobiGateError
from repro.events import ContextEvent, EventCatalog, EventCategory
from repro.mcl import compile_script, parse_script
from repro.mime import MediaType, MimeMessage, parse_message, serialize_message
from repro.runtime import (
    InlineScheduler,
    MobiGateServer,
    RuntimeStream,
    Streamlet,
    ThreadedScheduler,
)
from repro.semantics import analyze, verify

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "build_server",
    "DISTILLATION_MCL",
    "WEB_ACCELERATION_MCL",
    "MobiGateServer",
    "MobiGateClient",
    "RuntimeStream",
    "Streamlet",
    "InlineScheduler",
    "ThreadedScheduler",
    "MimeMessage",
    "MediaType",
    "serialize_message",
    "parse_message",
    "compile_script",
    "parse_script",
    "analyze",
    "verify",
    "ContextEvent",
    "EventCatalog",
    "EventCategory",
    "MobiGateError",
]
