"""The thesis's two canonical stream applications, as MCL source.

* :data:`DISTILLATION_MCL` — the section 4.3 datatype-specific distillation
  composition (Figure 4-6/4-8): switch → image/text/postscript branches →
  merge, with LOW_ENERGY and LOW_GRAY reconfiguration handlers.
* :data:`WEB_ACCELERATION_MCL` — the section 7.5 application: switch →
  (Gif2Jpeg → ImageDownSample) and text branches → communicator, with the
  Text Compressor spliced in below 100 Kb/s and extracted on recovery.

:func:`build_server` wires a :class:`MobiGateServer` with the built-in
streamlet directory so either script deploys directly.
"""

from __future__ import annotations

from repro.runtime.server import MobiGateServer
from repro.streamlets import register_builtin_streamlets

DISTILLATION_MCL = """
// Section 4.3: datatype-specific distillation (Figure 4-6)
main stream streamApp{
  streamlet s1 = new-streamlet (switch);
  streamlet s2 = new-streamlet (img_down_sample);
  streamlet s3 = new-streamlet (map_to_16_grays);
  streamlet s4 = new-streamlet (powerSaving);
  streamlet s5 = new-streamlet (postscript2text);
  streamlet s6 = new-streamlet (text_compress);
  streamlet s7 = new-streamlet (merge);
  streamlet out = new-streamlet (redirector);

  connect (s1.po_img, s2.pi);
  connect (s1.po_ps, s5.pi);
  connect (s2.po, s7.pi1);
  connect (s5.po, s6.pi);
  connect (s6.po, s7.pi2);
  connect (s7.po, out.pi);

  when (LOW_ENERGY){
    insert (s7.po, out.pi, s4);
  }
  when (LOW_GRAY){
    insert (s2.po, s7.pi1, s3);
  }
}
"""

WEB_ACCELERATION_MCL = """
// Section 7.5: speeding up web surfing over slow links
main stream webAccel{
  streamlet sw = new-streamlet (switch);
  streamlet g2j = new-streamlet (gif2jpeg);
  streamlet ds = new-streamlet (img_down_sample);
  streamlet tc = new-streamlet (text_compress);
  streamlet comm = new-streamlet (communicator);

  connect (sw.po_img, g2j.pi);
  connect (g2j.po, ds.pi);
  connect (ds.po, comm.pi1);
  connect (sw.po_txt, comm.pi2);

  when (LOW_BANDWIDTH){
    insert (sw.po_txt, comm.pi2, tc);
  }
  when (HIGH_BANDWIDTH){
    remove (tc);
  }
}
"""


def build_server(**kwargs) -> MobiGateServer:
    """A server with the full built-in streamlet library advertised."""
    server = MobiGateServer(**kwargs)
    register_builtin_streamlets(server.directory)
    return server
