"""Benchmark harness: regenerate every evaluation figure (chapter 7).

One module per paper artifact plus the ablations DESIGN.md calls out:

==================  =================================================
module              artifact
==================  =================================================
``fig7_2``          streamlet overhead vs chain length (Figure 7-2)
``fig7_3``          pass-by-reference vs pass-by-value (Figure 7-3)
``fig7_6``          reconfiguration time vs inserted streamlets (7-6)
``fig7_7``          end-to-end throughput vs bandwidth (Figure 7-7)
``ablations``       pooling, channel categories, schedulers, compile
==================  =================================================

Each experiment returns structured rows and can print the series the
paper plots.  ``python -m repro.bench`` runs everything;
``benchmarks/`` wraps the hot operations in pytest-benchmark.
"""

from repro.bench.fig7_2 import run_fig7_2
from repro.bench.fig7_3 import run_fig7_3
from repro.bench.fig7_6 import run_fig7_6
from repro.bench.fig7_7 import run_fig7_7
from repro.bench.reporting import format_table, print_series

__all__ = [
    "run_fig7_2",
    "run_fig7_3",
    "run_fig7_6",
    "run_fig7_7",
    "format_table",
    "print_series",
]
