"""Run every experiment and print the paper's series.

Usage::

    python -m repro.bench            # everything (a few minutes)
    python -m repro.bench fig7_2     # one artifact
    python -m repro.bench --quick    # reduced sweeps for smoke runs
"""

from __future__ import annotations

import sys

from repro.bench.ablations import (
    run_channel_ablation,
    run_compile_ablation,
    run_pooling_ablation,
    run_scheduler_ablation,
)
from repro.bench.fig7_2 import run_fig7_2
from repro.bench.fig7_3 import run_fig7_3
from repro.bench.fig7_6 import run_fig7_6
from repro.bench.fig7_7 import run_fig7_7


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    targets = [a for a in argv if not a.startswith("-")] or [
        "fig7_2", "fig7_3", "fig7_6", "fig7_7", "ablations", "wtcp", "adaptivity",
    ]
    if "fig7_2" in targets:
        result = run_fig7_2(repeats=5 if quick else 30)
        result.print()
    if "fig7_3" in targets:
        sizes = (10, 100, 400) if quick else (10, 50, 100, 200, 400, 800)
        run_fig7_3(sizes, repeats=2 if quick else 5).print()
    if "fig7_6" in targets:
        counts = (1, 10, 50) if quick else (1, 5, 10, 20, 50, 100)
        run_fig7_6(counts, repeats=2 if quick else 5).print()
    if "fig7_7" in targets:
        bandwidths = (
            tuple(k * 1000.0 for k in (20, 100, 500, 2000)) if quick else None
        )
        kwargs = {"n_messages": 6 if quick else 12}
        if bandwidths:
            result = run_fig7_7(bandwidths, (0.001, 0.05), **kwargs)
        else:
            result = run_fig7_7(**kwargs)
        result.print()
    if "ablations" in targets:
        run_pooling_ablation((5, 10) if quick else (5, 10, 20, 40)).print()
        run_channel_ablation(2000 if quick else 10_000).print()
        run_scheduler_ablation(n_messages=20 if quick else 100).print()
        run_compile_ablation((5, 20, 50) if quick else (5, 20, 50, 100, 200)).print()
    if "wtcp" in targets:
        from repro.bench.reporting import print_series
        from repro.netsim.wtcp import run_wtcp

        segments = 100 if quick else 300
        rows = []
        for loss in (0.0, 0.02, 0.05, 0.10, 0.20):
            goodputs = {
                scheme: run_wtcp(
                    scheme, wireless_loss=loss, segments=segments, seed=7
                ).goodput_bps / 1000
                for scheme in ("plain", "snoop", "split")
            }
            rows.append((loss, goodputs["plain"], goodputs["snoop"], goodputs["split"]))
        print_series(
            "Motivation (§2.1): wireless TCP goodput vs loss (Kb/s)",
            ["loss", "plain", "snoop", "split"],
            rows,
        )
    if "adaptivity" in targets:
        from repro.bench.adaptivity import run_adaptivity

        run_adaptivity(n_messages=20 if quick else 50).print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
