"""Run every experiment and print the paper's series.

Usage::

    python -m repro.bench             # everything (a few minutes)
    python -m repro.bench fig7_2      # one artifact
    python -m repro.bench telemetry   # observer overhead (enabled vs no-op)
    python -m repro.bench --quick     # reduced sweeps for smoke runs
    python -m repro.bench --no-json   # skip the BENCH_*.json artifacts

Besides the human-readable tables, each target writes a machine-readable
``BENCH_<target>.json`` (strict JSON, one file per target) into
``$REPRO_BENCH_DIR`` or the working directory — see
``repro.bench.reporting.write_bench_json``.
"""

from __future__ import annotations

import sys

from repro.bench.ablations import (
    run_channel_ablation,
    run_compile_ablation,
    run_pooling_ablation,
    run_scheduler_ablation,
)
from repro.bench.fig7_2 import run_fig7_2
from repro.bench.fig7_3 import run_fig7_3
from repro.bench.fig7_6 import run_fig7_6
from repro.bench.fig7_7 import run_fig7_7
from repro.bench.reporting import flag_regressions, write_bench_json
from repro.bench.telemetry_overhead import run_telemetry_overhead

ALL_TARGETS = (
    "fig7_2", "fig7_3", "fig7_6", "fig7_7", "ablations", "wtcp",
    "adaptivity", "telemetry", "faults", "reconfig", "scheduler_parallel",
    "scheduler_process", "gateway", "fusion", "durability",
)

#: every committed-baseline comparison CI runs, as (row key, metric,
#: direction) triples per target.  ``direction`` states which way is
#: *better* — "higher" for throughput-like metrics (a drop regresses),
#: "lower" for latency-like ones (a rise regresses) — so a p99 blow-up
#: can never slip through as an "improvement".  Advisory: hosts differ,
#: CI surfaces the warnings, a human judges them.
REGRESSION_CHECKS: dict[str, tuple[tuple[str, str, str], ...]] = {
    "telemetry": (("config", "pass_seconds", "lower"),),
    "scheduler_parallel": (("engine", "throughput_msgs_per_sec", "higher"),),
    "scheduler_process": (("engine", "throughput_msgs_per_sec", "higher"),),
    "gateway": (
        ("scenario", "throughput_msgs_per_sec", "higher"),
        ("scenario", "p99_ms", "lower"),
    ),
    "fusion": (("mode", "throughput_msgs_per_sec", "higher"),),
    "durability": (("mode", "throughput_msgs_per_sec", "higher"),),
}


def check_regressions(target: str, result: object) -> None:
    """Print every registered baseline warning for ``target`` to stderr."""
    for key, metric, direction in REGRESSION_CHECKS.get(target, ()):
        for warning in flag_regressions(
            target, result, key=key, metric=metric, direction=direction
        ):
            print(warning, file=sys.stderr)


def main(argv: list[str]) -> int:
    """Run the selected bench targets; print tables and write JSON."""
    quick = "--quick" in argv
    json_out = "--no-json" not in argv
    targets = [a for a in argv if not a.startswith("-")] or list(ALL_TARGETS)
    unknown = sorted(set(targets) - set(ALL_TARGETS))
    if unknown:
        print(
            f"unknown target(s): {', '.join(unknown)} "
            f"(choose from: {', '.join(ALL_TARGETS)})",
            file=sys.stderr,
        )
        return 2

    def emit(target: str, payload: object) -> None:
        if json_out:
            path = write_bench_json(target, payload)
            print(f"[bench] wrote {path}")

    if "fig7_2" in targets:
        result = run_fig7_2(repeats=5 if quick else 30)
        result.print()
        emit("fig7_2", result)
    if "fig7_3" in targets:
        sizes = (10, 100, 400) if quick else (10, 50, 100, 200, 400, 800)
        result = run_fig7_3(sizes, repeats=2 if quick else 5)
        result.print()
        emit("fig7_3", result)
    if "fig7_6" in targets:
        counts = (1, 10, 50) if quick else (1, 5, 10, 20, 50, 100)
        result = run_fig7_6(counts, repeats=2 if quick else 5)
        result.print()
        emit("fig7_6", result)
    if "fig7_7" in targets:
        bandwidths = (
            tuple(k * 1000.0 for k in (20, 100, 500, 2000)) if quick else None
        )
        kwargs = {"n_messages": 6 if quick else 12}
        if bandwidths:
            result = run_fig7_7(bandwidths, (0.001, 0.05), **kwargs)
        else:
            result = run_fig7_7(**kwargs)
        result.print()
        emit("fig7_7", result)
    if "ablations" in targets:
        ablations = {
            "pooling": run_pooling_ablation((5, 10) if quick else (5, 10, 20, 40)),
            "channel": run_channel_ablation(2000 if quick else 10_000),
            "scheduler": run_scheduler_ablation(n_messages=20 if quick else 100),
            "compile": run_compile_ablation((5, 20, 50) if quick else (5, 20, 50, 100, 200)),
        }
        for ablation in ablations.values():
            ablation.print()
        emit("ablations", ablations)
    if "wtcp" in targets:
        from repro.bench.reporting import print_series
        from repro.netsim.wtcp import run_wtcp

        segments = 100 if quick else 300
        rows = []
        for loss in (0.0, 0.02, 0.05, 0.10, 0.20):
            goodputs = {
                scheme: run_wtcp(
                    scheme, wireless_loss=loss, segments=segments, seed=7
                ).goodput_bps / 1000
                for scheme in ("plain", "snoop", "split")
            }
            rows.append((loss, goodputs["plain"], goodputs["snoop"], goodputs["split"]))
        print_series(
            "Motivation (§2.1): wireless TCP goodput vs loss (Kb/s)",
            ["loss", "plain", "snoop", "split"],
            rows,
        )
        emit("wtcp", {"headers": ["loss", "plain", "snoop", "split"], "rows": rows})
    if "adaptivity" in targets:
        from repro.bench.adaptivity import run_adaptivity

        result = run_adaptivity(n_messages=20 if quick else 50)
        result.print()
        emit("adaptivity", result)
    if "telemetry" in targets:
        result = run_telemetry_overhead(rounds=10 if quick else 40)
        result.print()
        # the subsystem's acceptance budget; advisory, like the baseline
        # comparisons below (hosts differ, CI surfaces it, a human judges)
        if result.overhead_fraction > 0.10:
            print(
                f"[bench] ADVISORY telemetry: observer overhead "
                f"{result.overhead_fraction * 100:.1f}% exceeds the 10% budget",
                file=sys.stderr,
            )
        check_regressions("telemetry", result)
        emit("telemetry", result)
    if "faults" in targets:
        from repro.bench.faults import run_faults

        result = run_faults(
            chain_length=5 if quick else 10,
            n_messages=30 if quick else 100,
            probabilities=(0.0, 0.1, 0.4) if quick else (0.0, 0.05, 0.1, 0.2, 0.4),
        )
        result.print()
        emit("faults", result)
    if "reconfig" in targets:
        from repro.bench.reconfig import run_reconfig

        result = run_reconfig(
            chain_lengths=(5, 10) if quick else (5, 10, 20, 40),
            n_messages=20 if quick else 50,
        )
        result.print()
        emit("reconfig", result)
    if "scheduler_parallel" in targets:
        from repro.bench.scheduler_parallel import run_scheduler_parallel

        result = run_scheduler_parallel(
            n_messages=120 if quick else 400,
            idle_window=0.2 if quick else 0.4,
        )
        result.print()
        # compare against the baseline committed in the working directory;
        # warnings are advisory (hosts differ), never a failed exit
        check_regressions("scheduler_parallel", result)
        emit("scheduler_parallel", result)
    if "scheduler_process" in targets:
        from repro.bench.scheduler_process import run_scheduler_process

        result = run_scheduler_process(n_messages=120 if quick else 400)
        result.print()
        # the >2x target is advisory on single-core hosts (the JSON
        # records cpu_count); conservation failures raise inside the run
        check_regressions("scheduler_process", result)
        emit("scheduler_process", result)
    if "gateway" in targets:
        from repro.bench.gateway import run_gateway

        result = run_gateway(quick=quick)
        result.print()
        # advisory, like scheduler_parallel: throughput must not drop and
        # round-trip p99 must not rise by more than the threshold
        check_regressions("gateway", result)
        emit("gateway", result)
    if "fusion" in targets:
        from repro.bench.fusion import run_fusion

        result = run_fusion(
            chains=(10, 30),
            n_messages=600 if quick else 3000,
        )
        result.print()
        check_regressions("fusion", result)
        emit("fusion", result)
    if "durability" in targets:
        from repro.bench.durability import run_durability

        result = run_durability(quick=quick)
        result.print()
        # ledger overhead is advisory; lost acked messages or an
        # unbalanced cross-crash fold raise inside run_durability
        check_regressions("durability", result)
        emit("durability", result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
