"""Ablation experiments for the design choices DESIGN.md calls out.

* **pooling** (§3.3.4) — instance-construction cost with and without the
  stateless streamlet pool under a rising stream population;
* **channel categories** (§4.2.2) — post/fetch cost per category;
* **schedulers** — deterministic inline pump vs thread-per-streamlet;
* **MCL compile** (§3.3.6) — compile + semantic-analysis cost vs
  composition size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.apps import build_server
from repro.bench.harness import redirector_chain_mcl, time_repeated
from repro.bench.reporting import print_series
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.mime.message import MimeMessage
from repro.runtime.channel import Channel
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.semantics import analyze
from repro.workloads.content import synthetic_text_message


# -- pooling ---------------------------------------------------------------------


@dataclass
class PoolingResult:
    rows: list[tuple[int, float, float, int, int]]
    # (streams deployed, pooled seconds, unpooled seconds,
    #  pooled constructions, unpooled constructions)

    def print(self) -> None:
        """Print the series this ablation produces."""
        print_series(
            "Ablation: streamlet pooling (deploy/teardown cycles)",
            ["streams", "pooled (ms)", "unpooled (ms)", "pooled ctors", "unpooled ctors"],
            [(n, p * 1e3, u * 1e3, pc, uc) for n, p, u, pc, uc in self.rows],
        )


def run_pooling_ablation(
    populations: tuple[int, ...] = (5, 10, 20, 40), *, chain: int = 6
) -> PoolingResult:
    """Deploy/teardown cycles with pooling on vs off; count constructions."""
    rows = []
    for n_streams in populations:
        timings = {}
        ctors = {}
        for pooling in (True, False):
            server = build_server(pooling=pooling)
            source = redirector_chain_mcl(chain)

            start = time.perf_counter()
            for index in range(n_streams):
                table = server.compile(source).main_table()
                table.stream_name = f"chain{index}"
                stream = server.deploy_table(table)
                stream.post(synthetic_text_message(1024, seed=index))
                InlineScheduler(stream).pump()
                stream.collect()
                server.undeploy(stream.name)
            timings[pooling] = time.perf_counter() - start
            ctors[pooling] = server.manager.created
        rows.append((n_streams, timings[True], timings[False], ctors[True], ctors[False]))
    return PoolingResult(rows=rows)


# -- channel categories ---------------------------------------------------------------


@dataclass
class ChannelResult:
    rows: list[tuple[str, float]]  # (category, seconds per 10k post/fetch pairs)

    def print(self) -> None:
        """Print the series this ablation produces."""
        print_series(
            "Ablation: channel category transfer cost (10k post/fetch pairs)",
            ["category", "time (ms)"],
            [(cat, sec * 1e3) for cat, sec in self.rows],
        )


def run_channel_ablation(pairs: int = 10_000) -> ChannelResult:
    """Measure steady-state post/fetch cost per channel category."""
    rows = []
    for category in ast.ChannelCategory:
        definition = ast.ChannelDef(
            name=f"c_{category.value}",
            in_port=ast.PortDecl(ast.PortDirection.IN, "cin", ANY),
            out_port=ast.PortDecl(ast.PortDirection.OUT, "cout", ANY),
            sync=ast.ChannelSync.ASYNC
            if category is not ast.ChannelCategory.S
            else ast.ChannelSync.SYNC,
            category=category,
            buffer_kb=0 if category is ast.ChannelCategory.S else 100,
        )
        channel = Channel("bench", definition)
        channel.attach_source(ast.PortRef("a", "po"))
        channel.attach_sink(ast.PortRef("b", "pi"))

        def pump():
            for i in range(pairs):
                channel.post(f"m{i}", 10)
                channel.fetch()

        stats = time_repeated(pump, repeats=3)
        rows.append((category.value, stats.minimum))
    return ChannelResult(rows=rows)


# -- schedulers ----------------------------------------------------------------------------


@dataclass
class SchedulerResult:
    rows: list[tuple[str, float]]  # (scheduler, seconds for the batch)

    def print(self) -> None:
        """Print the series this ablation produces."""
        print_series(
            "Ablation: inline vs threaded scheduler (100 msgs, 8 redirectors)",
            ["scheduler", "time (ms)"],
            [(name, sec * 1e3) for name, sec in self.rows],
        )


def run_scheduler_ablation(*, chain: int = 8, n_messages: int = 100) -> SchedulerResult:
    """Push one batch through the inline and threaded engines."""
    rows = []

    server = build_server()
    stream = server.deploy_script(redirector_chain_mcl(chain))
    scheduler = InlineScheduler(stream)
    start = time.perf_counter()
    for index in range(n_messages):
        stream.post(synthetic_text_message(1024, seed=index))
    scheduler.pump()
    stream.collect()
    rows.append(("inline", time.perf_counter() - start))
    stream.end()

    server = build_server()
    stream = server.deploy_script(redirector_chain_mcl(chain))
    threaded = ThreadedScheduler(stream, poll_interval=0.0002)
    threaded.start()
    start = time.perf_counter()
    for index in range(n_messages):
        stream.post(synthetic_text_message(1024, seed=index))
    threaded.drain(timeout=30)
    rows.append(("threaded", time.perf_counter() - start))
    threaded.stop()
    stream.collect()
    stream.end()
    return SchedulerResult(rows=rows)


# -- MCL compilation ---------------------------------------------------------------------------


@dataclass
class CompileResult:
    rows: list[tuple[int, float, float]]  # (chain length, compile s, analysis s)

    def print(self) -> None:
        """Print the series this ablation produces."""
        print_series(
            "Ablation: MCL compile + semantic analysis cost",
            ["streamlets", "compile (ms)", "analysis (ms)"],
            [(n, c * 1e3, a * 1e3) for n, c, a in self.rows],
        )


def run_compile_ablation(
    chain_lengths: tuple[int, ...] = (5, 20, 50, 100, 200), *, repeats: int = 5
) -> CompileResult:
    """Measure MCL compile and analysis cost over growing chains."""
    server = build_server()
    rows = []
    for n in chain_lengths:
        source = redirector_chain_mcl(n)
        compile_stats = time_repeated(
            lambda: server.compile(source), repeats=repeats
        )
        table = server.compile(source).main_table()
        analysis_stats = time_repeated(lambda: analyze(table), repeats=repeats)
        rows.append((n, compile_stats.minimum, analysis_stats.minimum))
    return CompileResult(rows=rows)
