"""The adaptivity experiment: is reconfiguration worth it?

The thesis's whole premise is that *adapting* the composition to changing
conditions beats any fixed configuration.  Chapter 7 shows the adaptive
system beating the no-proxy baseline; this experiment closes the remaining
gap by racing the adaptive deployment against both *static* policies over
a link whose bandwidth swings between fast and slow:

* **never-compress** — the fast-link configuration, deployed statically;
* **always-compress** — the slow-link configuration, deployed statically;
* **adaptive** — the section 7.5 application: the monitor inserts the
  Text Compressor below 100 Kb/s and extracts it on recovery.

On a fade trace the adaptive policy should track the better static policy
in each phase — compressing during the fade, not paying compression CPU
(and its latency) when the link is fast — and therefore win overall or
match the best static within noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import WEB_ACCELERATION_MCL, build_server
from repro.bench.reporting import print_series
from repro.client.client import MobiGateClient
from repro.netsim.emulator import EndToEndEmulator, TransferReport
from repro.netsim.link import WirelessLink
from repro.netsim.monitor import ContextMonitor
from repro.netsim.traces import BandwidthTrace
from repro.util.clock import VirtualClock
from repro.workloads.generators import WebWorkload

NEVER_COMPRESS_MCL = """
main stream staticFast{
  streamlet sw = new-streamlet (switch);
  streamlet g2j = new-streamlet (gif2jpeg);
  streamlet ds = new-streamlet (img_down_sample);
  streamlet comm = new-streamlet (communicator);
  connect (sw.po_img, g2j.pi);
  connect (g2j.po, ds.pi);
  connect (ds.po, comm.pi1);
  connect (sw.po_txt, comm.pi2);
}
"""

ALWAYS_COMPRESS_MCL = """
main stream staticSlow{
  streamlet sw = new-streamlet (switch);
  streamlet g2j = new-streamlet (gif2jpeg);
  streamlet ds = new-streamlet (img_down_sample);
  streamlet tc = new-streamlet (text_compress);
  streamlet comm = new-streamlet (communicator);
  connect (sw.po_img, g2j.pi);
  connect (g2j.po, ds.pi);
  connect (ds.po, comm.pi1);
  connect (sw.po_txt, tc.pi);
  connect (tc.po, comm.pi2);
}
"""


@dataclass
class AdaptivityResult:
    """Reports per policy plus the adaptive run's event count."""

    reports: dict[str, TransferReport]
    events_handled: int
    trace_description: str

    def print(self) -> None:
        """Print the policy comparison table."""
        print_series(
            f"Adaptivity: goodput per policy over {self.trace_description}",
            ["policy", "goodput (Kb/s)", "bytes on link", "elapsed (s)"],
            [
                (name, report.goodput_bps / 1000, report.bytes_on_link, report.elapsed)
                for name, report in self.reports.items()
            ],
        )
        print(f"adaptive reconfigurations handled: {self.events_handled}")

    def goodput(self, policy: str) -> float:
        """Goodput of one policy in bits/second."""
        return self.reports[policy].goodput_bps


def _run_policy(
    source: str, trace: BandwidthTrace, *, adaptive: bool, n_messages: int, seed: int,
    think_time: float,
) -> tuple[TransferReport, int]:
    clock = VirtualClock()
    server = build_server(clock=clock)
    stream = server.deploy_script(source)
    link = WirelessLink(trace.value_at(0), clock=clock)
    monitor = ContextMonitor(
        link, server.events, low_threshold_bps=100_000, trace=trace,
        fire_initial=adaptive,
    )
    if not adaptive:
        # static policies see the same link dynamics but never reconfigure:
        # the monitor still drives the trace, with events going nowhere
        # (their streams subscribe to nothing relevant)
        pass
    client = MobiGateClient()
    emulator = EndToEndEmulator(stream, link, client, monitor=monitor)
    workload = WebWorkload(seed=seed, image_fraction=0.3)
    start = clock.now()
    for message in workload.messages(n_messages):
        emulator.send(message)
        clock.advance(think_time)
    emulator.report.elapsed = clock.now() - start
    events = stream.stats.events_handled
    stream.end()
    return emulator.report, events


def run_adaptivity(
    *,
    n_messages: int = 50,
    seed: int = 13,
    think_time: float = 0.2,
    fast_bps: float = 20_000_000,
    slow_bps: float = 40_000,
    fade_start: float = 3.0,
    fade_duration: float = 3.0,
) -> AdaptivityResult:
    """Race the three policies over a fast link fading to a slow one.

    The fast phase must genuinely outrun the compressor's CPU (default
    20 Mb/s — our pure-Python LZSS moves a few MB/s) or compression is
    free and always-compress trivially dominates; the slow phase makes
    never-compress pay dearly.  Only an adaptive policy is right in both.
    """
    def trace() -> BandwidthTrace:
        return BandwidthTrace.fade(fast_bps, slow_bps, start=fade_start,
                                   duration=fade_duration)

    reports: dict[str, TransferReport] = {}
    reports["never-compress"], _ = _run_policy(
        NEVER_COMPRESS_MCL, trace(), adaptive=False,
        n_messages=n_messages, seed=seed, think_time=think_time,
    )
    reports["always-compress"], _ = _run_policy(
        ALWAYS_COMPRESS_MCL, trace(), adaptive=False,
        n_messages=n_messages, seed=seed, think_time=think_time,
    )
    reports["adaptive"], events = _run_policy(
        WEB_ACCELERATION_MCL, trace(), adaptive=True,
        n_messages=n_messages, seed=seed, think_time=think_time,
    )
    return AdaptivityResult(
        reports=reports,
        events_handled=events,
        trace_description=(
            f"a {fast_bps / 1e6:.0f} Mb/s link fading to "
            f"{slow_bps / 1e3:.0f} Kb/s for {fade_duration:.0f}s of a "
            f"{n_messages * think_time:.0f}s run"
        ),
    )
