"""Durability bench: what the write-ahead ledger costs, and what it saves.

Two halves, matching the acceptance criteria of the durable state plane:

* **overhead** — the gateway loopback workload (closed-loop TCP clients
  through a redirector chain, as in :mod:`repro.bench.gateway`) run with
  the ledger off, then over each store backend (memory / file / sqlite).
  Each durable row carries ``overhead_pct`` vs the in-memory backend;
  the budget is **< 10 %** for the WAL backends (advisory, like every
  baseline comparison — hosts differ, CI surfaces it, a human judges).
* **crash cycles** — the :class:`repro.store.crash.CrashHarness` drives
  seeded kill-9/restart cycles against a subprocess gateway.  These
  rows are *hard* assertions, not advisories: ``lost_acked`` must be 0
  (every acknowledged message survives in the folded ledger) and the
  cross-crash conservation equation must balance.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.gateway import _drive_clients, _ensure_fd_headroom, _FD_SLACK, _percentile
from repro.bench.harness import redirector_chain_mcl
from repro.bench.reporting import print_series
from repro.gateway import GatewayConfig, GatewayServer
from repro.store.crash import CrashHarness


@dataclass
class DurabilityBenchResult:
    """One mode (or crash scenario) per row; ``flag_regressions`` shape."""

    headers: list[str] = field(default_factory=lambda: [
        "mode", "clients", "messages", "throughput_msgs_per_sec",
        "p99_ms", "overhead_pct", "lost_acked", "balanced",
    ])
    rows: list[dict] = field(default_factory=list)

    def print(self) -> None:
        """Print the modes and crash scenarios as a fixed-width table."""
        print_series(
            "Durability: ledger overhead + kill-9 crash/restart cycles",
            self.headers,
            [[row.get(h) for h in self.headers] for row in self.rows],
        )


def _run_mode(
    mode: str,
    store_dir: Path,
    *,
    n_clients: int,
    messages_per_client: int,
    payload_bytes: int = 256,
    repeats: int = 1,
) -> dict:
    """Loopback throughput with the given ledger mode; best of ``repeats``."""
    available = _ensure_fd_headroom(2 * n_clients + _FD_SLACK)
    usable = max(1, (available - _FD_SLACK) // 2)
    n_clients = min(n_clients, usable)
    if mode == "none":
        backend, path = None, None
    elif mode == "memory":
        backend, path = "memory", None
    else:
        backend = mode
        path = str(store_dir / f"bench-{mode}.ledger")
    config = GatewayConfig(
        session_ingress_limit=max(2 * n_clients, 256),
        park_timeout=5.0,
        store_backend=backend,
        store_path=path,
    )
    gateway = GatewayServer(config=config)
    with gateway.run_in_thread() as handle:
        deployed = handle.control({
            "op": "deploy",
            "mcl": redirector_chain_mcl(2),
            "scheduler": "threaded",
        })
        if not deployed.get("ok"):
            raise RuntimeError(f"gateway deploy failed: {deployed}")
        key = deployed["session"]
        # best-of-N damps scheduler noise, which on loopback dwarfs the
        # ledger cost this bench is trying to isolate
        wall, latencies = None, None
        for _ in range(max(1, repeats)):
            run_wall, run_latencies = asyncio.run(
                _drive_clients(
                    handle.data_address,
                    key,
                    n_clients,
                    messages_per_client,
                    b"x" * payload_bytes,
                )
            )
            if wall is None or run_wall < wall:
                wall, latencies = run_wall, run_latencies
        if backend is not None:
            # the invariant must also balance with the mirror running
            reply = handle.control({"op": "recovery", "reconcile": True}, timeout=30.0)
            reconcile = reply.get("reconcile") or {}
            if not reconcile.get("balanced"):
                raise RuntimeError(f"ledger reconcile unbalanced in {mode}: {reply}")
    total = len(latencies)
    latencies.sort()
    return {
        "mode": mode,
        "clients": n_clients,
        "messages": total,
        "wall_s": wall,
        "throughput_msgs_per_sec": total / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
    }


def _run_crash(
    mode: str, store_dir: Path, *, cycles: int, burst: int, seed: int
) -> dict:
    """One seeded kill-9 scenario; hard-fails on any lost acked message."""
    harness = CrashHarness(
        store_dir / f"crash-{mode}",
        backend=mode,
        cycles=cycles,
        burst=burst,
        seed=seed,
    )
    report = harness.run()
    if report.lost_acked:
        raise RuntimeError(
            f"durability violated: {report.lost_acked} acked messages lost "
            f"across {cycles} {mode} crash cycles ({report.describe()})"
        )
    if not report.balanced:
        raise RuntimeError(
            f"cross-crash conservation unbalanced ({mode}): {report.describe()}"
        )
    return {
        "mode": f"crash_{mode}",
        "messages": report.sent_total,
        "acked": report.acked_total,
        "delivered_total": report.delivered_total,
        "lost_acked": report.lost_acked,
        "balanced": report.balanced,
        "missing": report.missing,
        "cycles": cycles,
        "seed": seed,
        "wall_s": report.wall_s,
    }


def run_durability(*, quick: bool = False) -> DurabilityBenchResult:
    """The bench entry point: overhead sweep + seeded crash cycles."""
    n_clients = 100
    messages = 5 if quick else 20
    cycles = 5 if quick else 20
    result = DurabilityBenchResult()
    with tempfile.TemporaryDirectory(prefix="repro-durability-") as tmp:
        store_dir = Path(tmp)
        rows = {
            mode: _run_mode(
                mode,
                store_dir,
                n_clients=n_clients,
                messages_per_client=messages,
                repeats=2 if quick else 3,
            )
            for mode in ("none", "memory", "file", "sqlite")
        }
        baseline = rows["memory"]["throughput_msgs_per_sec"]
        for mode, row in rows.items():
            if mode in ("file", "sqlite") and baseline > 0:
                row["overhead_pct"] = round(
                    (1.0 - row["throughput_msgs_per_sec"] / baseline) * 100.0, 2
                )
            result.rows.append(row)
        result.rows.append(
            _run_crash(
                "file", store_dir, cycles=cycles, burst=32, seed=1234
            )
        )
        if not quick:
            result.rows.append(
                _run_crash(
                    "sqlite", store_dir, cycles=cycles, burst=32, seed=1234
                )
            )
    import sys

    for row in result.rows:
        overhead = row.get("overhead_pct")
        if overhead is not None and overhead > 10.0:
            print(
                f"[bench] ADVISORY durability: {row['mode']} ledger overhead "
                f"{overhead:.1f}% exceeds the 10% budget",
                file=sys.stderr,
            )
    return result
