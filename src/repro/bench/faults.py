"""Recovery-cost bench: the fault plane under rising fault pressure.

Drives the §7.2 redirector chain in virtual time while the middle
streamlet fails with probability *p*, a :class:`~repro.faults.Supervisor`
retrying each failure with exponential backoff.  For each pressure point
the bench reports the outcome mix (delivered / dead-lettered), the retry
bill, the wall-clock cost per delivered message, and — the point of the
whole subsystem — whether the conservation invariant held.

Seeded and virtual-timed, so every run of the same configuration is
bit-identical; the wall column is the only nondeterministic figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.harness import deploy_chain
from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy, Supervisor
from repro.faults.invariant import check_conservation
from repro.mime.message import MimeMessage
from repro.telemetry import NULL_TELEMETRY
from repro.util.clock import VirtualClock


@dataclass
class FaultsRow:
    """One fault-pressure point."""

    probability: float
    delivered: int
    dead_letters: int
    retries: int
    failures: int
    wall_seconds: float
    conserved: bool
    zero_loss: bool


@dataclass
class FaultsBenchResult:
    """Recovery outcomes across fault probabilities."""

    chain_length: int
    n_messages: int
    max_retries: int
    rows: list[FaultsRow]

    def print(self) -> None:
        """Print the recovery table."""
        print("\n== Fault plane: recovery under rising fault pressure ==")
        print(
            f"chain={self.chain_length}, messages={self.n_messages}, "
            f"max_retries={self.max_retries} (virtual time, seeded)"
        )
        print(f"{'p':>5} {'deliv':>6} {'dead':>5} {'retries':>8} "
              f"{'failures':>9} {'ms/msg':>8} {'conserved':>10}")
        for row in self.rows:
            per_msg = row.wall_seconds / max(1, row.delivered) * 1000
            flag = "yes" if row.conserved else "NO"
            if row.zero_loss:
                flag += "+0loss"
            print(
                f"{row.probability:5.2f} {row.delivered:6d} {row.dead_letters:5d} "
                f"{row.retries:8d} {row.failures:9d} {per_msg:8.3f} {flag:>10}"
            )


def run_faults(
    chain_length: int = 10,
    *,
    n_messages: int = 100,
    probabilities: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4),
    max_retries: int = 3,
    seed: int = 7,
) -> FaultsBenchResult:
    """Measure recovery outcomes at each fault probability."""
    rows: list[FaultsRow] = []
    for p in probabilities:
        clock = VirtualClock()
        _server, stream, scheduler = deploy_chain(
            chain_length, clock=clock, telemetry=NULL_TELEMETRY
        )
        plan = FaultPlan(seed=seed)
        if p > 0:
            plan.fail_streamlet(
                f"r{chain_length // 2}", mode="probability", probability=p
            )
        injector = FaultInjector(plan, clock=clock)
        injector.arm(stream)
        supervisor = Supervisor(
            stream,
            RecoveryPolicy(
                max_retries=max_retries, backoff_base=0.001,
                backoff_factor=2.0, jitter=0.0005,
            ),
            seed=seed,
        )
        supervisor.attach()
        start = time.perf_counter()
        for i in range(n_messages):
            stream.post(MimeMessage("text/plain", f"m{i}".encode()))
        scheduler.pump()
        supervisor.settle(scheduler)
        delivered = len(stream.collect())
        wall = time.perf_counter() - start
        report = check_conservation(stream)
        rows.append(FaultsRow(
            probability=p,
            delivered=delivered,
            dead_letters=report.dead_letters,
            retries=stream.stats.retries,
            failures=stream.stats.processing_failures,
            wall_seconds=wall,
            conserved=report.balanced,
            zero_loss=report.lost == 0,
        ))
        injector.disarm()
        supervisor.detach()
        stream.end()
    return FaultsBenchResult(
        chain_length=chain_length,
        n_messages=n_messages,
        max_retries=max_retries,
        rows=rows,
    )
