"""Figure 7-2 — streamlet overhead analysis (section 7.2).

"Delay times can easily be captured by measuring the time needed for a
size-specific message to pass through a configured number of streamlet
redirectors."  The paper's finding: delay grows **linearly** with chain
length, ~12 ms/streamlet on 2004 hardware.  We report the measured
per-streamlet cost and check the linear shape (R² of a least-squares fit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.harness import deploy_chain, time_repeated
from repro.bench.reporting import print_series
from repro.workloads.content import synthetic_text_message


@dataclass
class Fig72Result:
    rows: list[tuple[int, float]]          # (chain length, mean latency seconds)
    per_streamlet_seconds: float           # fitted slope
    intercept_seconds: float
    r_squared: float

    def print(self) -> None:
        """Print the Figure 7-2 series and the fitted per-streamlet cost."""
        print_series(
            "Figure 7-2: streamlet overhead",
            ["streamlets", "latency (ms)"],
            [(n, latency * 1e3) for n, latency in self.rows],
        )
        print(
            f"slope: {self.per_streamlet_seconds * 1e6:.1f} us/streamlet, "
            f"R^2 = {self.r_squared:.4f}"
        )


def run_fig7_2(
    chain_lengths: tuple[int, ...] = (1, 5, 10, 15, 20, 25, 30),
    *,
    message_kb: int = 10,
    repeats: int = 30,
) -> Fig72Result:
    """Measure one-message latency across redirector chain lengths; fit the slope."""
    rows: list[tuple[int, float]] = []
    for n in chain_lengths:
        _server, stream, scheduler = deploy_chain(n)
        message_bytes = synthetic_text_message(message_kb * 1024, seed=1).body

        def one_pass():
            from repro.mime.message import MimeMessage

            stream.post(MimeMessage("text/plain", message_bytes))
            scheduler.pump()
            stream.collect()

        stats = time_repeated(one_pass, repeats=repeats, warmup=3)
        rows.append((n, stats.minimum))  # noise-robust fixed-work statistic
        stream.end()

    xs = np.array([n for n, _ in rows], dtype=float)
    ys = np.array([latency for _, latency in rows], dtype=float)
    slope, intercept = np.polyfit(xs, ys, 1)
    fitted = slope * xs + intercept
    ss_res = float(np.sum((ys - fitted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return Fig72Result(
        rows=rows,
        per_streamlet_seconds=float(slope),
        intercept_seconds=float(intercept),
        r_squared=r_squared,
    )
