"""Figure 7-3 — passing by reference versus passing by value (section 7.3).

"Several messages of different sizes were prepared and made to pass
through a number of streamlet redirectors (thirty in the experiment)
successively."  Paper shape: by-value latency grows much faster with
message size (knee past ~200 KB); by-reference stays nearly flat because
only identifiers cross channels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import build_server
from repro.bench.harness import redirector_chain_mcl
from repro.bench.reporting import print_series
from repro.mime.message import MimeMessage
from repro.runtime.message_pool import PassMode
from repro.runtime.scheduler import InlineScheduler
from repro.workloads.content import synthetic_text


@dataclass
class Fig73Result:
    # size_kb -> (reference seconds, value seconds)
    rows: list[tuple[int, float, float]]

    def print(self) -> None:
        """Print the Figure 7-3 series (reference vs value, per size)."""
        print_series(
            "Figure 7-3: passing by reference vs passing by value (30 redirectors)",
            ["size (KB)", "by reference (ms)", "by value (ms)", "value/ref"],
            [
                (kb, ref * 1e3, val * 1e3, val / ref if ref > 0 else float("inf"))
                for kb, ref, val in self.rows
            ],
        )

    def speedup_at(self, size_kb: int) -> float:
        """value/reference latency ratio at ``size_kb`` (KeyError if unswept)."""
        for kb, ref, val in self.rows:
            if kb == size_kb:
                return val / ref
        raise KeyError(size_kb)


def _prepare(mode: PassMode, size_kb: int, *, chain: int):
    server = build_server(pass_mode=mode)
    stream = server.deploy_script(redirector_chain_mcl(chain))
    scheduler = InlineScheduler(stream)
    payload = synthetic_text(size_kb * 1024, seed=size_kb)

    def one_pass():
        stream.post(MimeMessage("text/plain", bytearray(payload)))
        scheduler.pump()
        stream.collect()

    return stream, one_pass


def run_fig7_3(
    sizes_kb: tuple[int, ...] = (10, 50, 100, 200, 400, 800),
    *,
    chain: int = 30,
    repeats: int = 5,
) -> Fig73Result:
    """The two modes are measured *interleaved*, repetition by repetition,
    and the per-mode minimum taken — controlling for clock-speed drift so
    the ratio reflects the copy cost and nothing else."""
    import time as _time

    rows: list[tuple[int, float, float]] = []
    for size_kb in sizes_kb:
        ref_stream, ref_pass = _prepare(PassMode.REFERENCE, size_kb, chain=chain)
        val_stream, val_pass = _prepare(PassMode.VALUE, size_kb, chain=chain)
        ref_pass()  # warm-up both
        val_pass()
        best_ref = best_val = float("inf")
        for _ in range(repeats):
            start = _time.perf_counter()
            ref_pass()
            best_ref = min(best_ref, _time.perf_counter() - start)
            start = _time.perf_counter()
            val_pass()
            best_val = min(best_val, _time.perf_counter() - start)
        ref_stream.end()
        val_stream.end()
        rows.append((size_kb, best_ref, best_val))
    return Fig73Result(rows=rows)
