"""Figure 7-6 — reconfiguration overhead (section 7.4).

The thesis's ``ReconfigExp`` reacts to LOW_BANDWIDTH by inserting a
variable number of redirectors, timing ``Te - Ts`` around the handler.
Paper shape: reconfiguration time grows roughly linearly with the number
of inserted streamlets; <20 ms at 10 insertions, <100 ms at 100 (2004
hardware).  We report both the wall time around ``on_event`` and the
Equation 7-1 decomposition (suspend + channel ops + activate) that the
runtime itself accounts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.apps import build_server
from repro.bench.reporting import print_series
from repro.runtime.stream import ReconfigTiming


@dataclass
class Fig76Result:
    # (inserted count, wall seconds, eq 7-1 seconds, timing breakdown)
    rows: list[tuple[int, float, float, ReconfigTiming]]

    def print(self) -> None:
        """Print the Figure 7-6 series with the Eq. 7-1 breakdown."""
        print_series(
            "Figure 7-6: reconfiguration overhead",
            ["inserted", "wall (ms)", "eq7-1 (ms)", "suspend (ms)", "channel (ms)", "activate (ms)"],
            [
                (n, wall * 1e3, eq.total * 1e3, eq.suspend * 1e3,
                 eq.channel_ops * 1e3, eq.activate * 1e3)
                for n, wall, _total, eq in self.rows
            ],
        )


def reconfig_exp_mcl(insert_count: int, *, stream_name: str = "reconfigExp") -> str:
    """The ReconfigExp stream: LOW_BANDWIDTH inserts ``insert_count`` redirectors."""
    if insert_count < 1:
        raise ValueError(f"insert_count must be >= 1, got {insert_count}")
    lines = [
        f"main stream {stream_name}{{",
        "  streamlet head, tail = new-streamlet (redirector);",
        "  connect (head.po, tail.pi);",
        "  when (LOW_BANDWIDTH){",
        "    streamlet rr0 = new-streamlet (redirector);",
        "    insert (head.po, tail.pi, rr0);",
    ]
    for index in range(1, insert_count):
        lines.append(f"    streamlet rr{index} = new-streamlet (redirector);")
        lines.append(f"    insert (head.po, rr{index - 1}.pi, rr{index});")
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def run_fig7_6(
    insert_counts: tuple[int, ...] = (1, 5, 10, 20, 50, 100),
    *,
    repeats: int = 5,
) -> Fig76Result:
    """Time the ReconfigExp handler across insertion counts (best of ``repeats``)."""
    rows: list[tuple[int, float, float, ReconfigTiming]] = []
    for count in insert_counts:
        wall_best = float("inf")
        eq_best: ReconfigTiming | None = None
        for _ in range(repeats):
            server = build_server()
            stream = server.deploy_script(reconfig_exp_mcl(count))
            start = time.perf_counter()
            server.events.raise_event("LOW_BANDWIDTH")
            wall = time.perf_counter() - start
            timing = stream.last_reconfig
            assert timing is not None and timing.actions == 2 * count
            if wall < wall_best:
                wall_best = wall
                eq_best = timing
            stream.end()
        assert eq_best is not None
        rows.append((count, wall_best, eq_best.total, eq_best))
    return Fig76Result(rows=rows)
