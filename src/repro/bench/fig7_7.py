"""Figure 7-7 — MobiGATE end-to-end performance (section 7.5).

The web-acceleration application over the emulated wireless link, swept
over the thesis's bandwidth grid {20, 50, 100, 200, 500, 750, 1000, 2000}
Kb/s and transmission delays {~0, 50, 100} ms, against the direct-transfer
baseline.  The Text Compressor is spliced in when the monitor sees the
link below 100 Kb/s, exercising the reconfiguration machinery mid-run.

Paper shape to reproduce:

1. MobiGATE goodput ≥ direct transfer everywhere;
2. the gap shrinks as bandwidth approaches 2 Mb/s (overhead ≈ saving);
3. absolute goodput is poor for both at the lowest bandwidths, but
4. below 100 Kb/s the compressor insertion lifts MobiGATE further.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import WEB_ACCELERATION_MCL, build_server
from repro.bench.reporting import print_series
from repro.client.client import MobiGateClient
from repro.netsim.emulator import DirectTransfer, EndToEndEmulator, TransferReport
from repro.netsim.link import WirelessLink
from repro.netsim.monitor import ContextMonitor
from repro.util.clock import VirtualClock
from repro.workloads.generators import WebWorkload

#: the thesis's sweep, in bits/second
BANDWIDTHS_BPS: tuple[float, ...] = tuple(
    kbps * 1000.0 for kbps in (20, 50, 100, 200, 500, 750, 1000, 2000)
)
DELAYS_S: tuple[float, ...] = (0.001, 0.05, 0.1)
COMPRESSOR_THRESHOLD_BPS = 100_000.0


@dataclass
class Fig77Cell:
    bandwidth_bps: float
    delay_s: float
    mobigate: TransferReport
    direct: TransferReport
    compressor_inserted: bool

    @property
    def speedup(self) -> float:
        if self.direct.goodput_bps == 0:
            return float("inf")
        return self.mobigate.goodput_bps / self.direct.goodput_bps


@dataclass
class Fig77Result:
    cells: list[Fig77Cell]

    def print(self) -> None:
        """Print the Figure 7-7 goodput table."""
        print_series(
            "Figure 7-7: end-to-end goodput, MobiGATE vs direct transfer",
            ["bw (Kb/s)", "delay (ms)", "direct (Kb/s)", "MobiGATE (Kb/s)",
             "speedup", "compressor"],
            [
                (
                    cell.bandwidth_bps / 1000,
                    cell.delay_s * 1000,
                    cell.direct.goodput_bps / 1000,
                    cell.mobigate.goodput_bps / 1000,
                    cell.speedup,
                    "yes" if cell.compressor_inserted else "no",
                )
                for cell in self.cells
            ],
        )

    def at(self, bandwidth_bps: float, delay_s: float) -> Fig77Cell:
        """The cell for (bandwidth, delay); KeyError if outside the sweep."""
        for cell in self.cells:
            if cell.bandwidth_bps == bandwidth_bps and cell.delay_s == delay_s:
                return cell
        raise KeyError((bandwidth_bps, delay_s))


def run_cell(
    bandwidth_bps: float,
    delay_s: float,
    *,
    n_messages: int = 12,
    seed: int = 7,
    image_fraction: float = 0.4,
) -> Fig77Cell:
    """One grid point: MobiGATE run and direct-transfer run, same workload."""
    clock = VirtualClock()
    server = build_server(clock=clock)
    stream = server.deploy_script(WEB_ACCELERATION_MCL)
    link = WirelessLink(bandwidth_bps, propagation_delay=delay_s, clock=clock)
    monitor = ContextMonitor(
        link,
        server.events,
        low_threshold_bps=COMPRESSOR_THRESHOLD_BPS,
        fire_initial=True,  # a run that *starts* slow adapts immediately
        telemetry=server.telemetry,
    )
    client = MobiGateClient(telemetry=server.telemetry)
    emulator = EndToEndEmulator(stream, link, client, monitor=monitor)
    workload = list(WebWorkload(seed=seed, image_fraction=image_fraction).messages(n_messages))
    mobigate = emulator.run(workload)
    compressor_inserted = bool(stream.node("tc").inputs)
    stream.end()

    direct_link = WirelessLink(
        bandwidth_bps, propagation_delay=delay_s, clock=VirtualClock()
    )
    workload_again = list(
        WebWorkload(seed=seed, image_fraction=image_fraction).messages(n_messages)
    )
    direct = DirectTransfer(direct_link).run(workload_again)
    return Fig77Cell(
        bandwidth_bps=bandwidth_bps,
        delay_s=delay_s,
        mobigate=mobigate,
        direct=direct,
        compressor_inserted=compressor_inserted,
    )


def run_fig7_7(
    bandwidths_bps: tuple[float, ...] = BANDWIDTHS_BPS,
    delays_s: tuple[float, ...] = DELAYS_S,
    *,
    n_messages: int = 12,
    seed: int = 7,
) -> Fig77Result:
    """Sweep the bandwidth/delay grid; one MobiGATE + direct pair per cell."""
    cells = [
        run_cell(bandwidth, delay, n_messages=n_messages, seed=seed)
        for delay in delays_s
        for bandwidth in bandwidths_bps
    ]
    return Fig77Result(cells=cells)
