"""Fusion ablation: the same synchronous chain, fused vs unfused.

The post-compile optimizer (:mod:`repro.mcl.optimize` at the table
level, :meth:`RuntimeStream._fusion_chains` live) collapses a chain of
synchronously-coupled streamlets into one runtime node that steps the
whole chain per dispatch, eliding every interior rendezvous queue.  This
bench measures exactly that delta: an n-redirector chain wired through
explicit SYNC channels, driven closed-loop through the inline scheduler,
once with fusion enabled (the default) and once with ``fuse=False``.

Both runs must conserve every message; the fused run must additionally
report one fusion group spanning the whole chain.  The committed
``BENCH_fusion.json`` baseline is the acceptance artifact for the
"fused sync chain >= 2x unfused" gate and feeds the same advisory
``flag_regressions`` path as the other targets (rows keyed by ``mode``,
throughput higher-is-better).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.apps import build_server
from repro.bench.harness import redirector_chain_mcl
from repro.bench.reporting import format_table
from repro.faults.invariant import check_conservation
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler
from repro.telemetry import NULL_TELEMETRY


@dataclass
class FusionRow:
    """One (chain length, fuse on/off) measurement."""

    mode: str  # "fused-<n>" / "unfused-<n>" — the regression key
    chain: int
    fused: bool
    fusion_groups: int
    fused_span: int  # streamlets inside the largest group (0 unfused)
    throughput_msgs_per_sec: float
    elapsed_seconds: float
    delivered: int
    conserved: bool


@dataclass
class FusionResult:
    """Fused vs unfused on identical sync chains, plus the speedups."""

    n_messages: int
    burst: int
    rows: list[FusionRow]
    #: chain length -> fused/unfused throughput ratio
    speedups: dict[int, float]

    def print(self) -> None:
        """Print the ablation table and per-chain speedups."""
        print("\n== Fusion ablation: synchronous redirector chain, inline scheduler ==")
        print(f"   ({self.n_messages} messages, bursts of {self.burst})")
        print(format_table(
            ["mode", "chain", "groups", "span", "msgs/s", "delivered", "conserved"],
            [
                (
                    r.mode, r.chain, r.fusion_groups, r.fused_span,
                    r.throughput_msgs_per_sec, r.delivered, r.conserved,
                )
                for r in self.rows
            ],
        ))
        for chain, speedup in sorted(self.speedups.items()):
            print(f"   chain {chain}: fused is {speedup:.2f}x unfused")


def _run_mode(chain: int, *, fuse: bool, n_messages: int, burst: int) -> FusionRow:
    server = build_server(telemetry=NULL_TELEMETRY, fuse=fuse, drop_timeout=5.0)
    stream = server.deploy_script(redirector_chain_mcl(chain, sync=True))
    scheduler = InlineScheduler(stream)
    delivered = 0
    payload = b"x" * 64
    try:
        start = time.perf_counter()
        remaining = n_messages
        while remaining:
            # closed loop: a burst in, pump to completion, drain the egress
            for _ in range(min(burst, remaining)):
                stream.post(MimeMessage("text/plain", payload))
            remaining -= min(burst, remaining)
            scheduler.pump()
            delivered += len(stream.collect())
        elapsed = time.perf_counter() - start
        groups = stream.fusion_groups()
        report = check_conservation(stream)
    finally:
        stream.end()
    return FusionRow(
        mode=f"{'fused' if fuse else 'unfused'}-{chain}",
        chain=chain,
        fused=fuse,
        fusion_groups=len(groups),
        fused_span=max((len(g) for g in groups), default=0),
        throughput_msgs_per_sec=delivered / elapsed if elapsed > 0 else 0.0,
        elapsed_seconds=elapsed,
        delivered=delivered,
        conserved=report.balanced,
    )


def run_fusion(
    *,
    chains: tuple[int, ...] = (10, 30),
    n_messages: int = 3000,
    burst: int = 100,
) -> FusionResult:
    """Measure fused vs unfused throughput on each chain length."""
    rows: list[FusionRow] = []
    speedups: dict[int, float] = {}
    for chain in chains:
        # unfused first so the fused run never benefits from warm caches
        unfused = _run_mode(chain, fuse=False, n_messages=n_messages, burst=burst)
        fused = _run_mode(chain, fuse=True, n_messages=n_messages, burst=burst)
        rows.extend((unfused, fused))
        if unfused.throughput_msgs_per_sec > 0:
            speedups[chain] = (
                fused.throughput_msgs_per_sec / unfused.throughput_msgs_per_sec
            )
    return FusionResult(
        n_messages=n_messages, burst=burst, rows=rows, speedups=speedups
    )
