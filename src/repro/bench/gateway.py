"""Gateway bench: loopback clients against the real socket data plane.

This is the one bench that crosses a kernel boundary: N concurrent TCP
clients (each a coroutine on a client-side event loop) stream framed MIME
messages into a :class:`~repro.gateway.GatewayServer` running on its own
loop thread, through a redirector chain, and wait for the echo.  Each
client is closed-loop (window of one), so per-message wall time is a true
round-trip latency: serialize → socket → incremental parse → admission →
scheduler → egress pump → socket → parse.

The run is driven end-to-end through the public surfaces: the chain is
deployed via the **control API**, and the conservation ledger is scraped
from it afterwards — the bench fails loudly if the ledger does not
balance (admitted == delivered + absorbed + dead-lettered + dropped +
resident).

Scale note: the default scenario opens ~1000 sockets on each side plus
the listener; the soft ``RLIMIT_NOFILE`` is raised toward the hard limit
when needed, and the client count is clamped (with a printed notice) if
the hard limit cannot accommodate it.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.bench.harness import redirector_chain_mcl
from repro.bench.reporting import print_series
from repro.gateway import GatewayConfig, GatewayServer
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message
from repro.telemetry import MetricsRegistry, Telemetry

#: fds beyond the sockets themselves (listeners, pipes, stdio, slack)
_FD_SLACK = 64


def _ensure_fd_headroom(needed: int) -> int:
    """Raise the soft fd limit toward ``needed``; return what's available."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return needed
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= needed:
        return soft
    target = needed if hard == resource.RLIM_INFINITY else min(needed, hard)
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
    except (OSError, ValueError):  # pragma: no cover - hardened hosts
        return soft
    return target


@dataclass
class GatewayBenchResult:
    """One scenario per row; the shape ``flag_regressions`` expects."""

    headers: list[str] = field(default_factory=lambda: [
        "scenario", "clients", "messages", "throughput_msgs_per_sec",
        "p50_ms", "p99_ms", "parked", "shed", "balanced",
    ])
    rows: list[dict] = field(default_factory=list)

    def print(self) -> None:
        """Print the scenarios as a fixed-width table."""
        print_series(
            "Gateway (§3): loopback socket round-trips through a deployed chain",
            self.headers,
            [[row.get(h) for h in self.headers] for row in self.rows],
        )


async def _run_client(
    address: tuple[str, int],
    session_key: str,
    n_messages: int,
    payload: bytes,
    latencies: list[float],
    connect_gate: asyncio.Semaphore,
) -> None:
    """One closed-loop client: send a frame, await its echo, repeat."""
    async with connect_gate:
        reader, writer = await asyncio.open_connection(*address)
    assembler = FrameAssembler()
    try:
        for _ in range(n_messages):
            message = MimeMessage("application/octet-stream", payload)
            message.headers.session = session_key
            frame = serialize_message(message)
            begin = time.perf_counter()
            writer.write(frame)
            await writer.drain()
            echoed: list[MimeMessage] = []
            while not echoed:
                chunk = await reader.read(65536)
                if not chunk:
                    raise ConnectionError("gateway closed the connection mid-run")
                echoed = assembler.feed(chunk)
            latencies.append(time.perf_counter() - begin)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _drive_clients(
    address: tuple[str, int],
    session_key: str,
    n_clients: int,
    messages_per_client: int,
    payload: bytes,
    *,
    max_concurrent_connects: int = 128,
    timeout: float = 300.0,
) -> tuple[float, list[float]]:
    """Run the whole client fleet; returns (wall seconds, latencies)."""
    latencies: list[float] = []
    gate = asyncio.Semaphore(max_concurrent_connects)
    tasks = [
        _run_client(address, session_key, messages_per_client, payload, latencies, gate)
        for _ in range(n_clients)
    ]
    begin = time.perf_counter()
    await asyncio.wait_for(asyncio.gather(*tasks), timeout=timeout)
    return time.perf_counter() - begin, latencies


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_gateway_bench(
    *,
    n_clients: int = 1000,
    messages_per_client: int = 10,
    payload_bytes: int = 256,
    chain_length: int = 2,
    scheduler: str = "threaded",
    scenario: str | None = None,
    attribution: bool = False,
) -> GatewayBenchResult:
    """Throughput and round-trip latency for one loopback scenario."""
    # each client costs two fds in-process (client socket + accepted socket)
    available = _ensure_fd_headroom(2 * n_clients + _FD_SLACK)
    usable = max(1, (available - _FD_SLACK) // 2)
    if usable < n_clients:
        print(f"[bench] fd limit clamps gateway clients: {n_clients} -> {usable}")
        n_clients = usable

    # the fleet is closed-loop (one outstanding message per client), so an
    # ingress bound >= the client count keeps the steady state shed-free;
    # backpressure behaviour is covered by the gateway test suite instead
    config = GatewayConfig(
        session_ingress_limit=max(2 * n_clients, 256),
        park_timeout=5.0,
    )
    telemetry = (
        Telemetry(registry=MetricsRegistry()) if attribution else None
    )
    gateway = GatewayServer(config=config, telemetry=telemetry)
    result = GatewayBenchResult()
    with gateway.run_in_thread() as handle:
        deployed = handle.control({
            "op": "deploy",
            "mcl": redirector_chain_mcl(chain_length),
            "scheduler": scheduler,
        })
        if not deployed.get("ok"):
            raise RuntimeError(f"gateway deploy failed: {deployed}")
        key = deployed["session"]

        wall, latencies = asyncio.run(
            _drive_clients(
                handle.data_address,
                key,
                n_clients,
                messages_per_client,
                b"x" * payload_bytes,
            )
        )

        stats = handle.control({"op": "stats", "session": key}, timeout=30.0)
        if not stats.get("ok"):
            raise RuntimeError(f"gateway stats failed: {stats}")
        decomposition = None
        if attribution:
            attrib = handle.control(
                {"op": "attribution", "session": key}, timeout=30.0
            )
            if not attrib.get("ok"):
                raise RuntimeError(f"gateway attribution failed: {attrib}")
            decomposition = attrib["decomposition"]
    conservation = stats["conservation"]
    if not conservation["balanced"]:
        raise RuntimeError(f"conservation violated: {conservation['ledger']}")

    total = len(latencies)
    latencies.sort()
    result.rows.append({
        "scenario": scenario or f"loopback_{n_clients}x{messages_per_client}",
        "clients": n_clients,
        "messages": total,
        "wall_s": wall,
        "throughput_msgs_per_sec": total / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p95_ms": _percentile(latencies, 0.95) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "parked": stats["parked"],
        "shed": stats["shed"],
        "contended": stats["contended"],
        "balanced": conservation["balanced"],
        "ledger": conservation["ledger"],
        "chain_length": chain_length,
        "scheduler": scheduler,
        "payload_bytes": payload_bytes,
    })
    if decomposition is not None:
        result.rows[-1].update({
            "attribution": decomposition,
            "attribution_coverage": decomposition.get("coverage"),
        })
    return result


def run_gateway(*, quick: bool = False) -> GatewayBenchResult:
    """The bench entry point: 1000 loopback clients (100 under ``--quick``).

    A full run also measures the quick scenario, so the committed baseline
    carries a row CI's ``--quick`` smoke can meaningfully compare against
    (a 100-client run against a 1000-client baseline would be noise).
    """
    result = run_gateway_bench(
        n_clients=100, messages_per_client=5, scenario="loopback_quick"
    )
    # the attribution scenario keeps quick size: its point is the latency
    # decomposition (queue_wait + service + egress vs gateway e2e), not
    # peak throughput
    attrib = run_gateway_bench(
        n_clients=100,
        messages_per_client=5,
        scenario="loopback_attributed",
        attribution=True,
    )
    result.rows.extend(attrib.rows)
    if not quick:
        full = run_gateway_bench(
            n_clients=1000, messages_per_client=10, scenario="loopback_1000"
        )
        result.rows.extend(full.rows)
    return result
