"""Shared experiment plumbing."""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.apps import build_server
from repro.runtime.scheduler import InlineScheduler
from repro.runtime.server import MobiGateServer
from repro.runtime.stream import RuntimeStream
from repro.util.stats import RunningStats


#: explicit rendezvous channel for synchronously-coupled chains — the
#: shape the post-compile fusion optimizer targets
_SYNC_CHANNEL_DEF = """channel benchSyncChan{
  port{ in cin : */*; out cout : */*; }
  attribute{ type = SYNC; buffer = 0; }
}
"""


def redirector_chain_mcl(n: int, *, stream_name: str = "chain", sync: bool = False) -> str:
    """A stream of ``n`` redirectors in series (the §7.2/§7.4 fixture).

    ``sync=True`` couples every hop through an explicit SYNC channel
    (capacity-0 rendezvous) instead of the compiler's auto channels —
    the fusable shape used by the fusion bench and tests.
    """
    if n < 1:
        raise ValueError(f"chain needs at least one streamlet, got {n}")
    lines = [f"main stream {stream_name}{{"]
    names = [f"r{i}" for i in range(n)]
    lines.append(f"  streamlet {', '.join(names)} = new-streamlet (redirector);")
    if sync and n > 1:
        chans = [f"s{i}" for i in range(n - 1)]
        lines.append(f"  channel {', '.join(chans)} = new-channel (benchSyncChan);")
        for i, (a, b) in enumerate(zip(names, names[1:])):
            lines.append(f"  connect ({a}.po, {b}.pi, s{i});")
    else:
        for a, b in zip(names, names[1:]):
            lines.append(f"  connect ({a}.po, {b}.pi);")
    lines.append("}")
    body = "\n".join(lines)
    return _SYNC_CHANNEL_DEF + body if sync and n > 1 else body


def deploy_chain(
    n: int, *, sync: bool = False, **server_kwargs
) -> tuple[MobiGateServer, RuntimeStream, InlineScheduler]:
    """Deploy an n-redirector chain; returns (server, stream, scheduler)."""
    server = build_server(**server_kwargs)
    stream = server.deploy_script(redirector_chain_mcl(n, sync=sync))
    return server, stream, InlineScheduler(stream)


def time_repeated(fn: Callable[[], None], *, repeats: int, warmup: int = 1) -> RunningStats:
    """Wall-time ``fn`` ``repeats`` times after ``warmup`` unmeasured calls."""
    for _ in range(warmup):
        fn()
    stats = RunningStats()
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        stats.add(time.perf_counter() - start)
    return stats
