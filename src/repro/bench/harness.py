"""Shared experiment plumbing."""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.apps import build_server
from repro.runtime.scheduler import InlineScheduler
from repro.runtime.server import MobiGateServer
from repro.runtime.stream import RuntimeStream
from repro.util.stats import RunningStats


def redirector_chain_mcl(n: int, *, stream_name: str = "chain") -> str:
    """A stream of ``n`` redirectors in series (the §7.2/§7.4 fixture)."""
    if n < 1:
        raise ValueError(f"chain needs at least one streamlet, got {n}")
    lines = [f"main stream {stream_name}{{"]
    names = [f"r{i}" for i in range(n)]
    lines.append(f"  streamlet {', '.join(names)} = new-streamlet (redirector);")
    for a, b in zip(names, names[1:]):
        lines.append(f"  connect ({a}.po, {b}.pi);")
    lines.append("}")
    return "\n".join(lines)


def deploy_chain(n: int, **server_kwargs) -> tuple[MobiGateServer, RuntimeStream, InlineScheduler]:
    """Deploy an n-redirector chain; returns (server, stream, scheduler)."""
    server = build_server(**server_kwargs)
    stream = server.deploy_script(redirector_chain_mcl(n))
    return server, stream, InlineScheduler(stream)


def time_repeated(fn: Callable[[], None], *, repeats: int, warmup: int = 1) -> RunningStats:
    """Wall-time ``fn`` ``repeats`` times after ``warmup`` unmeasured calls."""
    for _ in range(warmup):
        fn()
    stats = RunningStats()
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        stats.add(time.perf_counter() - start)
    return stats
