"""Reconfiguration bench: transactional commit and rollback cost.

Drives the §7.2 redirector chain with messages parked mid-flight, then
measures the two paths of the transactional reconfiguration engine
(:mod:`repro.runtime.reconfig`):

* **commit** — validate + quiesce + splice an extra redirector into the
  middle link, bumping the stream epoch;
* **rollback** — a batch whose second action is structurally illegal
  (connecting into an occupied port), applied with validation off so the
  failure surfaces mid-apply and the undo log restores the exact prior
  topology.

After both, the stream is pumped dry and the §7.2 conservation invariant
is re-checked *across the epoch transition*: every message posted before
the swap must still be delivered exactly once after it.  Virtual-timed
and deterministic; the latency columns are the only wall-clock figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.harness import deploy_chain
from repro.errors import ReconfigAbortedError
from repro.faults.invariant import check_conservation
from repro.mcl import astnodes as ast
from repro.mime.message import MimeMessage
from repro.runtime.reconfig import ReconfigTransaction
from repro.telemetry import NULL_TELEMETRY
from repro.util.clock import VirtualClock


@dataclass
class ReconfigRow:
    """One chain-length point."""

    chain_length: int
    in_flight: int
    commit_ms: float
    rollback_ms: float
    delivered: int
    epoch: int
    conserved: bool
    topology_restored: bool


@dataclass
class ReconfigBenchResult:
    """Commit/rollback cost across chain lengths."""

    n_messages: int
    rows: list[ReconfigRow]

    def print(self) -> None:
        """Print the reconfiguration-cost table."""
        print("\n== Reconfiguration: transactional commit / rollback cost ==")
        print(f"messages in flight per swap: posted={self.n_messages} (virtual time)")
        print(f"{'chain':>6} {'inflight':>9} {'commit_ms':>10} {'rollback_ms':>12} "
              f"{'deliv':>6} {'epoch':>6} {'conserved':>10} {'restored':>9}")
        for row in self.rows:
            print(
                f"{row.chain_length:6d} {row.in_flight:9d} {row.commit_ms:10.3f} "
                f"{row.rollback_ms:12.3f} {row.delivered:6d} {row.epoch:6d} "
                f"{'yes' if row.conserved else 'NO':>10} "
                f"{'yes' if row.topology_restored else 'NO':>9}"
            )


def _fingerprint(table) -> tuple:
    """A comparable structural digest of a configuration table."""
    return (
        sorted((n, d.name) for n, d in table.instances.items()),
        sorted(table.channels),
        sorted(str(link) for link in table.links),
        tuple(str(r) for r in table.exposed_in),
        tuple(str(r) for r in table.exposed_out),
    )


def _in_flight(stream) -> int:
    seen: set[int] = set()
    total = 0
    for node in stream._nodes.values():
        for channel in list(node.inputs.values()) + list(node.outputs.values()):
            if id(channel) not in seen:
                seen.add(id(channel))
                total += channel.pending()
    return total


def run_reconfig(
    chain_lengths: tuple[int, ...] = (5, 10, 20),
    *,
    n_messages: int = 50,
) -> ReconfigBenchResult:
    """Measure commit and rollback latency with messages in flight."""
    rows: list[ReconfigRow] = []
    for n in chain_lengths:
        clock = VirtualClock()
        _server, stream, scheduler = deploy_chain(
            n, clock=clock, telemetry=NULL_TELEMETRY
        )
        for i in range(n_messages):
            stream.post(MimeMessage("text/plain", f"m{i}".encode()))
        in_flight = _in_flight(stream)
        mid = n // 2

        # the commit path: splice an extra redirector into the middle link
        commit_txn = ReconfigTransaction(stream, label="bench-commit")
        commit_txn.stage(
            ast.NewInstances("streamlet", ("bench_extra",), "redirector"),
            ast.Insert(
                ast.PortRef(f"r{mid - 1}" if mid > 0 else "r0", "po"),
                ast.PortRef(f"r{mid}" if mid > 0 else "r1", "pi"),
                "bench_extra",
            ),
        )
        t0 = time.perf_counter()
        commit_txn.execute()
        commit_ms = (time.perf_counter() - t0) * 1000

        # the rollback path: second action hits an occupied port mid-apply
        before = _fingerprint(stream.snapshot_table())
        rollback_txn = ReconfigTransaction(stream, label="bench-rollback")
        rollback_txn.stage(
            ast.NewInstances("streamlet", ("bench_bad",), "redirector"),
            ast.Connect(ast.PortRef("bench_bad", "po"), ast.PortRef("r1", "pi")),
        )
        t0 = time.perf_counter()
        try:
            rollback_txn.commit(validate=False)
            rollback_ms = float("nan")  # should be unreachable
        except ReconfigAbortedError:
            rollback_ms = (time.perf_counter() - t0) * 1000
        restored = _fingerprint(stream.snapshot_table()) == before

        scheduler.pump()
        delivered = len(stream.collect())
        report = check_conservation(stream)
        rows.append(ReconfigRow(
            chain_length=n,
            in_flight=in_flight,
            commit_ms=commit_ms,
            rollback_ms=rollback_ms,
            delivered=delivered,
            epoch=stream.epoch,
            conserved=report.balanced and report.lost == 0,
            topology_restored=restored,
        ))
        stream.end()
    return ReconfigBenchResult(n_messages=n_messages, rows=rows)
