"""Plain-text tables and series for experiment output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def print_series(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a titled fixed-width table."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
