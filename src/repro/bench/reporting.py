"""Experiment output: plain-text tables plus machine-readable JSON.

The tables are for eyeballs; :func:`write_bench_json` is for tooling — one
``BENCH_<name>.json`` per run, strict JSON (non-finite floats become
``null``), written to ``$REPRO_BENCH_DIR`` when set and the working
directory otherwise, so CI can diff runs without scraping stdout.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import platform as _platform
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.util.stats import RunningStats


def host_metadata() -> dict:
    """The machine fingerprint stamped into every ``BENCH_*.json``.

    Absolute numbers only mean something against the machine that
    produced them; :func:`flag_regressions` refuses to compare runs
    whose fingerprints differ instead of raising false alarms.
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": _platform.platform(),
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
    }


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def print_series(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a titled fixed-width table."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def jsonable(value: object) -> object:
    """Coerce an arbitrary result object into strict-JSON-safe types.

    Handles the shapes bench results are made of: dataclasses (including
    nested ones), tuples/lists/sets, dicts, :class:`RunningStats`, numpy
    scalars/arrays (anything with ``tolist``/``item``), and non-finite
    floats (→ ``null``, since strict JSON has no NaN/Infinity).  Unknown
    objects fall back to ``str()`` so a new result field can never make a
    bench run crash at the write-out step.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, RunningStats):
        return {
            "count": value.count,
            "mean": jsonable(value.mean),
            "stdev": jsonable(value.stdev),
            "min": jsonable(value.minimum),
            "max": jsonable(value.maximum),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays
        return jsonable(value.tolist())
    if hasattr(value, "item"):  # numpy scalars
        return jsonable(value.item())
    return str(value)


def bench_output_dir() -> Path:
    """Where bench JSON lands: ``$REPRO_BENCH_DIR`` or the working directory."""
    return Path(os.environ.get("REPRO_BENCH_DIR") or ".")


def load_baseline(name: str, directory: Path | str | None = None) -> dict | None:
    """The committed ``BENCH_<name>.json`` baseline, or None.

    Baselines are read from ``directory`` (default: the working directory
    — i.e. the repo checkout in CI, **not** ``$REPRO_BENCH_DIR``, which is
    where fresh results land) so a run never compares against itself.
    """
    path = Path(directory) if directory is not None else Path(".")
    path = path / f"BENCH_{name}.json"
    try:
        loaded = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return loaded if isinstance(loaded, dict) else None


def flag_regressions(
    name: str,
    payload: object,
    *,
    threshold: float = 0.10,
    metric: str = "throughput_msgs_per_sec",
    key: str = "engine",
    direction: str = "higher",
    directory: Path | str | None = None,
) -> list[str]:
    """Warnings for per-row ``metric`` drops beyond ``threshold`` vs baseline.

    Compares each ``rows[*]`` entry of ``payload`` (keyed by ``key``)
    against the committed baseline JSON.  Returns human-readable warning
    strings — deliberately non-fatal, since absolute throughput varies
    across hosts; CI surfaces them, a human judges them.  No baseline (or
    no comparable rows) means no warnings.

    ``direction`` states which way is better for ``metric``: ``"higher"``
    (throughput-like — a drop regresses) or ``"lower"`` (latency-like —
    a rise regresses).
    """
    if direction not in ("higher", "lower"):
        raise ValueError(f"direction must be 'higher' or 'lower', got {direction!r}")
    baseline = load_baseline(name, directory)
    if baseline is None:
        return []
    current = jsonable(payload)
    if not isinstance(current, dict):
        return []
    # different machine → numbers aren't comparable: refuse rather than
    # raise false alarms.  Baselines predating the fingerprint (no
    # "host" key) are compared as before.
    base_host = baseline.get("host")
    if isinstance(base_host, dict):
        here = host_metadata()
        mismatched = sorted(
            field
            for field in ("cpu_count", "platform", "python")
            if base_host.get(field) is not None and base_host[field] != here[field]
        )
        if mismatched:
            return [
                f"[bench] SKIP {name}: baseline recorded on a different host "
                f"({', '.join(f'{f}: {base_host[f]!r} != {here[f]!r}' for f in mismatched)})"
                " — re-baseline on this machine to compare"
            ]
    base_rows = {
        row.get(key): row
        for row in baseline.get("rows", ())
        if isinstance(row, dict) and row.get(key) is not None
    }
    warnings: list[str] = []
    for row in current.get("rows", ()):
        if not isinstance(row, dict):
            continue
        base = base_rows.get(row.get(key))
        if base is None:
            continue
        now, then = row.get(metric), base.get(metric)
        if not isinstance(now, (int, float)) or not isinstance(then, (int, float)):
            continue
        if then <= 0:
            continue
        # %.4g keeps sub-millisecond metrics (pass_seconds) readable
        if direction == "higher" and now < then * (1.0 - threshold):
            drop = (1.0 - now / then) * 100.0
            warnings.append(
                f"[bench] REGRESSION {name}/{row.get(key)}: {metric} "
                f"{now:.4g} is {drop:.1f}% below baseline {then:.4g} "
                f"(threshold {threshold * 100:.0f}%)"
            )
        elif direction == "lower" and now > then * (1.0 + threshold):
            rise = (now / then - 1.0) * 100.0
            warnings.append(
                f"[bench] REGRESSION {name}/{row.get(key)}: {metric} "
                f"{now:.4g} is {rise:.1f}% above baseline {then:.4g} "
                f"(threshold {threshold * 100:.0f}%)"
            )
    return warnings


def write_bench_json(name: str, payload: object, directory: Path | str | None = None) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` goes through :func:`jsonable` first, so result dataclasses
    can be passed as-is.  Dict-shaped payloads are stamped with the
    producing machine's :func:`host_metadata` under ``"host"`` so later
    runs can tell whether the baseline is comparable.
    """
    target = Path(directory) if directory is not None else bench_output_dir()
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"
    body = jsonable(payload)
    if isinstance(body, dict):
        body.setdefault("host", host_metadata())
    text = json.dumps(body, indent=2, sort_keys=True, allow_nan=False)
    path.write_text(text + "\n", encoding="utf-8")
    return path
