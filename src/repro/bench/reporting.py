"""Experiment output: plain-text tables plus machine-readable JSON.

The tables are for eyeballs; :func:`write_bench_json` is for tooling — one
``BENCH_<name>.json`` per run, strict JSON (non-finite floats become
``null``), written to ``$REPRO_BENCH_DIR`` when set and the working
directory otherwise, so CI can diff runs without scraping stdout.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from collections.abc import Sequence
from pathlib import Path

from repro.util.stats import RunningStats


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def print_series(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a titled fixed-width table."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def jsonable(value: object) -> object:
    """Coerce an arbitrary result object into strict-JSON-safe types.

    Handles the shapes bench results are made of: dataclasses (including
    nested ones), tuples/lists/sets, dicts, :class:`RunningStats`, numpy
    scalars/arrays (anything with ``tolist``/``item``), and non-finite
    floats (→ ``null``, since strict JSON has no NaN/Infinity).  Unknown
    objects fall back to ``str()`` so a new result field can never make a
    bench run crash at the write-out step.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, RunningStats):
        return {
            "count": value.count,
            "mean": jsonable(value.mean),
            "stdev": jsonable(value.stdev),
            "min": jsonable(value.minimum),
            "max": jsonable(value.maximum),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays
        return jsonable(value.tolist())
    if hasattr(value, "item"):  # numpy scalars
        return jsonable(value.item())
    return str(value)


def bench_output_dir() -> Path:
    """Where bench JSON lands: ``$REPRO_BENCH_DIR`` or the working directory."""
    return Path(os.environ.get("REPRO_BENCH_DIR") or ".")


def write_bench_json(name: str, payload: object, directory: Path | str | None = None) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` goes through :func:`jsonable` first, so result dataclasses
    can be passed as-is.
    """
    target = Path(directory) if directory is not None else bench_output_dir()
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"
    text = json.dumps(jsonable(payload), indent=2, sort_keys=True, allow_nan=False)
    path.write_text(text + "\n", encoding="utf-8")
    return path
