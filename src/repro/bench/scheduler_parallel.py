"""Scheduler-parallelism bench: is the threaded engine actually parallel?

Drives a 4-stage chain of CPU-bearing streamlets (SHA-256 over 64 KB
blocks — CPython releases the GIL for hashing, so stages overlap on
multi-core hosts) through three engines on the same host:

* ``inline`` — the deterministic single-threaded pump (the floor);
* ``threaded_legacy`` — a faithful replica of the pre-RCU worker loop
  (every step serialised behind the global topology lock, 1 ms sleep
  when idle), kept here so the *before* number is measured on the same
  commit, not asserted from memory;
* ``threaded`` — the current event-driven, snapshot-reading
  :class:`~repro.runtime.scheduler.ThreadedScheduler`.

The drive is **closed-loop**: a small window of messages is kept in
flight, each delivery immediately replaced — the traffic shape of an
interactive proxy session, and the one that exposes the legacy engine's
defining cost: a worker that polls at 1 ms leaves the CPU idle up to a
millisecond per hop while work is already queued, so a 4-stage message
pays up to 4 ms of pure wakeup latency.  The event-driven engine is
signalled by the post itself.  (On a multi-core host the GIL-releasing
hash work adds genuine stage overlap on top; the wakeup win needs no
cores at all.)

Besides throughput, each engine run is checked against the message-
conservation invariant (a racy scheduler loses or double-counts ids long
before it gets slow), and an idle window after the traffic measures
wakeups-per-second per worker — the event-driven engine's residual
heartbeat vs the legacy busy-poll.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

from repro.apps import build_server
from repro.faults.invariant import check_conservation
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import (
    InlineScheduler,
    ThreadedScheduler,
    _drop,
    _NodeView,
    _step_node,
)
from repro.runtime.stream import RuntimeStream
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext
from repro.telemetry import NULL_TELEMETRY

HASHER_DEF = ast.StreamletDef(
    name="bench_hasher",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", ANY),
        ast.PortDecl(ast.PortDirection.OUT, "po", ANY),
    ),
    kind=ast.StreamletKind.STATELESS,
    library="bench/hasher",
    description="SHA-256 grind per message; GIL-releasing CPU load",
)


class Hasher(Streamlet):
    """Hash a 64 KB expansion of the payload ``rounds`` times, forward it.

    ``hashlib`` drops the GIL for buffers larger than 2047 bytes, so a
    chain of these is the closest a pure-Python streamlet gets to real
    CPU-parallel work.
    """

    #: overridable via ctx.params["hash_rounds"] (the §8.2.1 control path)
    rounds = 3

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        block = message.body * 8  # ~64 KB of GIL-free work per round
        rounds = int(ctx.params.get("hash_rounds", self.rounds))
        digest = b""
        for _ in range(rounds):
            h = hashlib.sha256(block)
            h.update(digest)
            digest = h.digest()
        return [("po", message)]


def _chain_mcl(stages: int) -> str:
    names = [f"h{i}" for i in range(stages)]
    lines = ["main stream parbench{"]
    lines.append(f"  streamlet {', '.join(names)} = new-streamlet (bench_hasher);")
    for a, b in zip(names, names[1:]):
        lines.append(f"  connect ({a}.po, {b}.pi);")
    lines.append("}")
    return "\n".join(lines)


def _deploy(stages: int, hash_rounds: int) -> RuntimeStream:
    server = build_server(telemetry=NULL_TELEMETRY, drop_timeout=5.0)
    server.directory.advertise(HASHER_DEF, Hasher, replace=True)
    stream = server.deploy_script(_chain_mcl(stages))
    for i in range(stages):
        stream.set_param(f"h{i}", "hash_rounds", hash_rounds)
    return stream


class _LegacyThreadedScheduler:
    """The pre-RCU worker loop, preserved for the before/after comparison.

    One thread per instance, but every step runs with the global topology
    lock held (so steps serialise) and an idle worker sleeps a fixed 1 ms
    poll — exactly the engine this bench exists to retire.
    """

    def __init__(self, stream: RuntimeStream, *, poll_interval: float = 0.001):
        self._stream = stream
        self._poll = poll_interval
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self.idle_sleeps = 0
        self._counter_lock = threading.Lock()

    def start(self) -> None:
        with self._stream.topology_lock:
            names = self._stream.instance_names()
        for name in names:
            thread = threading.Thread(
                target=self._worker, args=(name,),
                name=f"legacy-{name}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _worker(self, name: str) -> None:
        stream = self._stream
        while not self._stop.is_set():
            stalled: list = []
            with stream.topology_lock:
                node = stream._nodes.get(name)
                if node is None:
                    return
                view = _NodeView(name, node, ())  # rebuilt per step, as before
                moved = _step_node(stream, name, view, stalled)
            for channel, msg_id, size in stalled:
                deadline = time.monotonic() + stream._drop_timeout
                posted = False
                while not self._stop.is_set():
                    try:
                        remaining = deadline - time.monotonic()
                        if channel.post(msg_id, size,
                                        timeout=max(0.0, min(0.05, remaining))):
                            posted = True
                            break
                    except Exception:
                        break
                    if time.monotonic() >= deadline:
                        break
                if not posted:
                    _drop(stream, msg_id)
            if moved == 0:
                with self._counter_lock:
                    self.idle_sleeps += 1
                time.sleep(self._poll)

    def stop(self, *, timeout: float = 2.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()


@dataclass
class EngineRow:
    """One engine's throughput + integrity figures."""

    engine: str
    wall_seconds: float
    throughput_msgs_per_sec: float
    delivered: int
    conserved: bool
    #: idle wakeups per worker per second, measured over a quiet window
    #: after the traffic (None for the inline engine, which has no workers)
    idle_wakeups_per_worker_per_sec: float | None


@dataclass
class SchedulerParallelResult:
    """Inline vs legacy-threaded vs event-driven threaded, same host."""

    stages: int
    n_messages: int
    payload_bytes: int
    hash_rounds: int
    window: int
    idle_window_seconds: float
    rows: list[EngineRow]
    #: event-driven ThreadedScheduler over the pre-change (legacy) one —
    #: the acceptance figure; and over the inline floor for context
    speedup_vs_legacy: float
    speedup_vs_inline: float

    def print(self) -> None:
        """Print the engine comparison table."""
        print("\n== Scheduler parallelism: 4-stage CPU chain, three engines ==")
        print(
            f"stages={self.stages}, messages={self.n_messages}, "
            f"payload={self.payload_bytes}B, hash_rounds={self.hash_rounds}, "
            f"window={self.window} (closed loop)"
        )
        print(f"{'engine':>16} {'wall_s':>8} {'msg/s':>9} {'deliv':>6} "
              f"{'conserved':>10} {'idle wk/s':>10}")
        for row in self.rows:
            idle = (
                f"{row.idle_wakeups_per_worker_per_sec:.1f}"
                if row.idle_wakeups_per_worker_per_sec is not None else "-"
            )
            print(
                f"{row.engine:>16} {row.wall_seconds:8.3f} "
                f"{row.throughput_msgs_per_sec:9.1f} {row.delivered:6d} "
                f"{'yes' if row.conserved else 'NO':>10} {idle:>10}"
            )
        print(
            f"threaded speedup: {self.speedup_vs_legacy:.2f}x vs legacy, "
            f"{self.speedup_vs_inline:.2f}x vs inline"
        )


def _closed_loop_inline(
    stream: RuntimeStream, scheduler: InlineScheduler,
    n_messages: int, payload: bytes, window: int,
) -> tuple[float, int]:
    posted = delivered = 0
    start = time.perf_counter()
    while posted < min(window, n_messages):
        stream.post(MimeMessage("application/octet-stream", payload))
        posted += 1
    while delivered < n_messages:
        scheduler.pump()
        got = stream.collect()
        if not got:
            break  # nothing moves and nothing arrived: bail out
        delivered += len(got)
        while posted < min(delivered + window, n_messages):
            stream.post(MimeMessage("application/octet-stream", payload))
            posted += 1
    return time.perf_counter() - start, delivered


def _closed_loop_threaded(
    stream: RuntimeStream, n_messages: int, payload: bytes, window: int,
) -> tuple[float, int]:
    # the collector blocks on the egress queue's waiter event — identical
    # (and cheap) for both threaded engines, so the measured difference is
    # the engines' own wakeup latency, not the harness's
    egress_queue = stream.egress[0][1].queue
    arrived = threading.Event()
    egress_queue.add_waiter(arrived)
    try:
        posted = delivered = 0
        start = time.perf_counter()
        deadline = start + 120.0
        while posted < min(window, n_messages):
            stream.post(MimeMessage("application/octet-stream", payload))
            posted += 1
        while delivered < n_messages and time.perf_counter() < deadline:
            arrived.wait(0.05)
            arrived.clear()
            got = stream.collect()
            delivered += len(got)
            while posted < min(delivered + window, n_messages):
                stream.post(MimeMessage("application/octet-stream", payload))
                posted += 1
        return time.perf_counter() - start, delivered
    finally:
        egress_queue.remove_waiter(arrived)


def _run_engine(
    engine: str, stages: int, n_messages: int, payload: bytes,
    hash_rounds: int, window: int, idle_window: float,
) -> EngineRow:
    stream = _deploy(stages, hash_rounds)
    idle_rate: float | None = None
    try:
        if engine == "inline":
            scheduler = InlineScheduler(stream)
            wall, delivered = _closed_loop_inline(
                stream, scheduler, n_messages, payload, window
            )
        else:
            if engine == "threaded":
                scheduler = ThreadedScheduler(stream)
            else:
                scheduler = _LegacyThreadedScheduler(stream)
            scheduler.start()
            wall, delivered = _closed_loop_threaded(
                stream, n_messages, payload, window
            )
            # idle window: workers should now be event-blocked, not polling
            if engine == "threaded":
                before = scheduler.idle_spins + scheduler.event_wakeups
                time.sleep(idle_window)
                wakeups = (scheduler.idle_spins + scheduler.event_wakeups) - before
            else:
                before = scheduler.idle_sleeps
                time.sleep(idle_window)
                wakeups = scheduler.idle_sleeps - before
            idle_rate = wakeups / stages / idle_window
            scheduler.stop()
        report = check_conservation(stream)
        return EngineRow(
            engine=engine,
            wall_seconds=wall,
            throughput_msgs_per_sec=n_messages / wall if wall > 0 else float("inf"),
            delivered=delivered,
            conserved=report.balanced and delivered == n_messages,
            idle_wakeups_per_worker_per_sec=idle_rate,
        )
    finally:
        stream.end()


def run_scheduler_parallel(
    *,
    stages: int = 4,
    n_messages: int = 400,
    payload_bytes: int = 8 * 1024,
    hash_rounds: int = 3,
    window: int = 1,
    idle_window: float = 0.4,
) -> SchedulerParallelResult:
    """Measure the three engines on an identical CPU-bearing chain."""
    payload = b"\xa5" * payload_bytes
    rows = [
        _run_engine(
            engine, stages, n_messages, payload, hash_rounds, window, idle_window
        )
        for engine in ("inline", "threaded_legacy", "threaded")
    ]
    by_name = {row.engine: row for row in rows}
    new = by_name["threaded"].throughput_msgs_per_sec
    return SchedulerParallelResult(
        stages=stages,
        n_messages=n_messages,
        payload_bytes=payload_bytes,
        hash_rounds=hash_rounds,
        window=window,
        idle_window_seconds=idle_window,
        rows=rows,
        speedup_vs_legacy=new / by_name["threaded_legacy"].throughput_msgs_per_sec,
        speedup_vs_inline=new / by_name["inline"].throughput_msgs_per_sec,
    )
