"""Process-plane bench: does sharding across processes escape the GIL?

Drives the same CPU-bearing hasher chain as
:mod:`repro.bench.scheduler_parallel` through three engines:

* ``inline`` — the deterministic single-threaded pump (the floor);
* ``threaded`` — the event-driven :class:`ThreadedScheduler`, whose
  parallelism is bounded by the GIL except where a streamlet releases it;
* ``process`` — the sharded :class:`ProcessScheduler`: the chain is cut
  at asynchronous channel boundaries into one worker *process* per
  shard, messages crossing shards through shared-memory rings.

The drive is closed-loop with a window wide enough (≥16) to keep every
shard busy at once — per-message latency includes a serialize/IPC hop,
so the process plane only wins when the pipeline actually overlaps.

On a single-core host the >2x acceptance figure is advisory (there is
nothing to overlap on; the bench records ``cpu_count`` so the committed
baseline says which case it measured), but conservation, delivery, and
per-shard accounting are asserted unconditionally — a scheduler that
loses messages is wrong on any core count.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.bench.scheduler_parallel import (
    _closed_loop_inline,
    _closed_loop_threaded,
    _deploy,
)
from repro.faults.invariant import check_conservation
from repro.runtime.process_scheduler import ProcessScheduler
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler


@dataclass
class ProcessEngineRow:
    """One engine's throughput + integrity figures."""

    engine: str
    wall_seconds: float
    throughput_msgs_per_sec: float
    delivered: int
    conserved: bool
    #: how the topology was partitioned (process engine only)
    shard_plan: list[list[str]] | None = None
    #: per-member execution accounting mirrored back from the workers
    #: (process engine only): alive/pid/shard/busy_seconds/steps/...
    workers: dict | None = None
    #: cross-boundary dispatches the parent issued (process engine only)
    dispatches: int | None = None


@dataclass
class SchedulerProcessResult:
    """Inline vs threaded vs sharded-process, same host, same chain."""

    stages: int
    n_messages: int
    payload_bytes: int
    hash_rounds: int
    window: int
    shards: int
    cpu_count: int
    rows: list[ProcessEngineRow] = field(default_factory=list)
    speedup_vs_inline: float = 0.0
    speedup_vs_threaded: float = 0.0

    def print(self) -> None:
        """Print the engine comparison table."""
        print("\n== Process plane: CPU chain sharded across worker processes ==")
        print(
            f"stages={self.stages}, messages={self.n_messages}, "
            f"payload={self.payload_bytes}B, hash_rounds={self.hash_rounds}, "
            f"window={self.window} (closed loop), shards={self.shards}, "
            f"cpu_count={self.cpu_count}"
        )
        print(f"{'engine':>10} {'wall_s':>8} {'msg/s':>9} {'deliv':>6} "
              f"{'conserved':>10} {'shards':>24}")
        for row in self.rows:
            plan = (
                " | ".join("+".join(s) for s in row.shard_plan)
                if row.shard_plan else "-"
            )
            print(
                f"{row.engine:>10} {row.wall_seconds:8.3f} "
                f"{row.throughput_msgs_per_sec:9.1f} {row.delivered:6d} "
                f"{'yes' if row.conserved else 'NO':>10} {plan:>24}"
            )
        advisory = " (advisory: single core)" if self.cpu_count < 2 else ""
        print(
            f"process speedup: {self.speedup_vs_inline:.2f}x vs inline, "
            f"{self.speedup_vs_threaded:.2f}x vs threaded{advisory}"
        )


def _run_engine(
    engine: str, stages: int, n_messages: int, payload: bytes,
    hash_rounds: int, window: int, shards: int,
) -> ProcessEngineRow:
    stream = _deploy(stages, hash_rounds)
    plan = workers = dispatches = None
    try:
        if engine == "inline":
            scheduler = InlineScheduler(stream)
            wall, delivered = _closed_loop_inline(
                stream, scheduler, n_messages, payload, window
            )
        elif engine == "threaded":
            scheduler = ThreadedScheduler(stream)
            scheduler.start()
            try:
                wall, delivered = _closed_loop_threaded(
                    stream, n_messages, payload, window
                )
            finally:
                scheduler.stop()
        else:
            scheduler = ProcessScheduler(stream, shards=shards, window=window)
            scheduler.start()
            try:
                wall, delivered = _closed_loop_threaded(
                    stream, n_messages, payload, window
                )
                scheduler.drain(timeout=10.0)
                plan = [list(members) for members in scheduler.shard_plan.shards]
                workers = scheduler.worker_states()
                dispatches = scheduler.dispatches
            finally:
                scheduler.stop()
        report = check_conservation(stream)
        return ProcessEngineRow(
            engine=engine,
            wall_seconds=wall,
            throughput_msgs_per_sec=n_messages / wall if wall > 0 else float("inf"),
            delivered=delivered,
            conserved=report.balanced and delivered == n_messages,
            shard_plan=plan,
            workers=workers,
            dispatches=dispatches,
        )
    finally:
        stream.end()


def run_scheduler_process(
    *,
    stages: int = 4,
    n_messages: int = 400,
    payload_bytes: int = 8 * 1024,
    hash_rounds: int = 3,
    window: int = 16,
    shards: int | None = None,
) -> SchedulerProcessResult:
    """Measure inline vs threaded vs sharded-process on an identical chain."""
    if window < 16:
        raise ValueError("closed-loop window must be >= 16 to overlap shards")
    cpu_count = os.cpu_count() or 1
    if shards is None:
        # one worker per core when the host has them; at least two so the
        # cross-process path (rings, custody, batching) is always exercised
        shards = min(stages, max(2, cpu_count))
    payload = b"\xa5" * payload_bytes
    rows = [
        _run_engine(
            engine, stages, n_messages, payload, hash_rounds, window, shards
        )
        for engine in ("inline", "threaded", "process")
    ]
    by_name = {row.engine: row for row in rows}
    bad = [row.engine for row in rows if not row.conserved]
    if bad:
        raise AssertionError(
            f"conservation violated or deliveries lost under: {', '.join(bad)}"
        )
    new = by_name["process"].throughput_msgs_per_sec
    return SchedulerProcessResult(
        stages=stages,
        n_messages=n_messages,
        payload_bytes=payload_bytes,
        hash_rounds=hash_rounds,
        window=window,
        shards=shards,
        cpu_count=cpu_count,
        rows=rows,
        speedup_vs_inline=new / by_name["inline"].throughput_msgs_per_sec,
        speedup_vs_threaded=new / by_name["threaded"].throughput_msgs_per_sec,
    )
