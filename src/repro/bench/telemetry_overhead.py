"""Observer overhead: enabled telemetry vs the no-op twin on Figure 7-2.

The telemetry subsystem instruments the hottest code in the repository
(the per-hop scheduler step), so its cost must be measured the same way
the thesis measures streamlet cost: a message passing down an
``n``-redirector chain.  Two identical chains are deployed — one bound to
a live :class:`~repro.telemetry.Telemetry`, one to
:data:`~repro.telemetry.NULL_TELEMETRY` — and timed **interleaved**, in
alternating order, taking the minimum over many rounds.  Interleaving
plus min-of-many cancels the two noise sources that wreck naive A/B
timing on a shared machine: slow drift (thermal, frequency scaling) hits
both configurations equally, and one-off spikes never survive the min.

The acceptance target for the subsystem is **under 10% overhead** with
the default sampling interval.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.harness import deploy_chain
from repro.mime.message import MimeMessage
from repro.telemetry import NULL_TELEMETRY, MetricsRegistry, Telemetry
from repro.telemetry.attribution import summarize
from repro.workloads.content import synthetic_text_message


@dataclass
class TelemetryOverheadResult:
    """Best-of interleaved pass times for the two telemetry configurations."""

    chain_length: int
    rounds: int
    passes_per_round: int
    noop_pass_seconds: float
    enabled_pass_seconds: float
    trace_sample_interval: int
    #: attribution observations folded while enabled (proof it was live)
    attribution_samples: int = 0
    #: flight-recorder events recorded while enabled
    recorder_events: int = 0
    #: per-config rows in the shape ``flag_regressions(key="config")`` expects
    rows: list[dict] = field(default_factory=list)

    @property
    def delta_per_hop_seconds(self) -> float:
        """Added observer cost per streamlet hop."""
        return (self.enabled_pass_seconds - self.noop_pass_seconds) / self.chain_length

    @property
    def overhead_fraction(self) -> float:
        """Relative slowdown of the enabled configuration (0.1 = 10%)."""
        if self.noop_pass_seconds == 0:
            return float("inf")
        return (self.enabled_pass_seconds - self.noop_pass_seconds) / self.noop_pass_seconds

    def print(self) -> None:
        """Print the overhead comparison."""
        print("\n== Telemetry observer overhead (enabled vs no-op, interleaved min) ==")
        print(
            f"chain={self.chain_length}, rounds={self.rounds}, "
            f"sample interval={self.trace_sample_interval}"
        )
        print(f"no-op   best pass: {self.noop_pass_seconds * 1e6:8.1f} us")
        print(f"enabled best pass: {self.enabled_pass_seconds * 1e6:8.1f} us")
        print(
            f"delta/hop: {self.delta_per_hop_seconds * 1e6:.2f} us, "
            f"overhead: {self.overhead_fraction * 100:.1f} % (budget: <10 %)"
        )
        print(
            f"attribution samples: {self.attribution_samples}, "
            f"recorder events: {self.recorder_events}"
        )


def run_telemetry_overhead(
    chain_length: int = 30,
    *,
    rounds: int = 40,
    passes_per_round: int = 10,
    message_kb: int = 10,
    warmup: int = 20,
    trace_sample_interval: int = 64,
) -> TelemetryOverheadResult:
    """Time the fig7-2 chain with telemetry enabled and disabled, interleaved."""
    body = synthetic_text_message(message_kb * 1024, seed=1).body
    telemetry = Telemetry(
        registry=MetricsRegistry(), trace_sample_interval=trace_sample_interval
    )
    _ns, noop_stream, noop_sched = deploy_chain(chain_length, telemetry=NULL_TELEMETRY)
    _es, enab_stream, enab_sched = deploy_chain(chain_length, telemetry=telemetry)
    pairs = {"noop": (noop_stream, noop_sched), "enabled": (enab_stream, enab_sched)}

    def one_pass(which: str) -> None:
        stream, scheduler = pairs[which]
        # one recorder event per pass so the enabled timing includes the
        # flight recorder's hot-path cost (the null twin no-ops this)
        stream.tm.recorder.record("bench_pass", stream=stream.name)
        stream.post(MimeMessage("text/plain", body))
        scheduler.pump()
        stream.collect()

    for _ in range(warmup):
        one_pass("noop")
        one_pass("enabled")

    best = {"noop": float("inf"), "enabled": float("inf")}
    for round_index in range(rounds):
        # alternate which configuration goes first so drift within a round
        # cannot systematically favour one side
        order = ("noop", "enabled") if round_index % 2 == 0 else ("enabled", "noop")
        for which in order:
            start = time.perf_counter()
            for _ in range(passes_per_round):
                one_pass(which)
            elapsed = (time.perf_counter() - start) / passes_per_round
            if elapsed < best[which]:
                best[which] = elapsed

    noop_stream.end()
    enab_stream.end()
    telemetry.flush()
    tables = summarize(telemetry.registry)
    attribution_samples = sum(
        row["count"]
        for component in ("queue_wait", "service", "egress")
        for row in tables[component]["rows"]
    )
    result = TelemetryOverheadResult(
        chain_length=chain_length,
        rounds=rounds,
        passes_per_round=passes_per_round,
        noop_pass_seconds=best["noop"],
        enabled_pass_seconds=best["enabled"],
        trace_sample_interval=trace_sample_interval,
        attribution_samples=attribution_samples,
        recorder_events=telemetry.recorder.recorded,
    )
    result.rows = [
        {
            "config": "noop",
            "pass_seconds": result.noop_pass_seconds,
            "per_hop_us": result.noop_pass_seconds / chain_length * 1e6,
        },
        {
            "config": "enabled",
            "pass_seconds": result.enabled_pass_seconds,
            "per_hop_us": result.enabled_pass_seconds / chain_length * 1e6,
            "overhead_fraction": result.overhead_fraction,
            "attribution_samples": attribution_samples,
            "recorder_events": result.recorder_events,
        },
    ]
    return result
