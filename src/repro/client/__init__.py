"""The MobiGATE client (section 3.4).

The client has no channels and no coordination: "all the composition
information is already recorded in the incoming message header."  The
:class:`MessageDistributor` reads each message's peer stack (section 6.5)
and runs the matching peer streamlets from the
:class:`ClientStreamletPool` in reverse (LIFO) order, undoing the
server-side transformations inside-out, then delivers to the application.

The thin-client economics show in the code size: reverse transformations
and a dictionary lookup, nothing else.
"""

from repro.client.peers import PeerStreamlet, PEER_FACTORIES
from repro.client.client_pool import ClientStreamletPool
from repro.client.distributor import MessageDistributor
from repro.client.client import ClientDeadLetter, MobiGateClient

__all__ = [
    "PeerStreamlet",
    "PEER_FACTORIES",
    "ClientStreamletPool",
    "MessageDistributor",
    "ClientDeadLetter",
    "MobiGateClient",
]
