"""The MobiGATE client facade (Figure 3-3).

Thin by design: a distributor over a peer pool, a delivered-message list,
and counters.  ``receive`` is what the network emulator calls when a
message finishes crossing the wireless link.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.client.client_pool import ClientStreamletPool
from repro.client.distributor import MessageDistributor
from repro.client.peers import PeerStreamlet
from repro.mime.message import MimeMessage


class MobiGateClient:
    """The mobile-host side: receive, reverse-process, deliver."""

    def __init__(
        self,
        *,
        pool: ClientStreamletPool | None = None,
        on_deliver: Callable[[MimeMessage], None] | None = None,
    ):
        self.pool = pool if pool is not None else ClientStreamletPool()
        self.distributor = MessageDistributor(self.pool)
        self._on_deliver = on_deliver
        self.delivered: list[MimeMessage] = []
        self.bytes_received = 0

    def register_peer(self, peer_id: str, factory: Callable[[], PeerStreamlet]) -> None:
        """Register/replace a peer streamlet factory on this client."""
        self.pool.register(peer_id, factory)

    def receive(self, message: MimeMessage) -> list[MimeMessage]:
        """Process one message off the link; returns app-level messages."""
        self.bytes_received += message.total_size()
        results = self.distributor.distribute(message)
        self.delivered.extend(results)
        if self._on_deliver is not None:
            for result in results:
                self._on_deliver(result)
        return results

    def take_delivered(self) -> list[MimeMessage]:
        """Drain and return everything delivered so far."""
        out = self.delivered
        self.delivered = []
        return out
