"""The MobiGATE client facade (Figure 3-3).

Thin by design: a distributor over a peer pool, a delivered-message list,
and counters.  ``receive`` is what the network emulator calls when a
message finishes crossing the wireless link.

The facade also tracks the server's **stream epoch** (the transactional
reconfiguration extension, ``Content-Session: sess-N;epoch=K``): peer
registrations staged with :meth:`stage_epoch` are applied at exactly the
message boundary where the new epoch first appears on the wire, so the
client's peer chain swaps in lock-step with the server's composition.
Messages naming a peer this client does not (or no longer) know are
parked as :class:`ClientDeadLetter` entries instead of unwinding the
caller.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.client.client_pool import ClientStreamletPool
from repro.client.distributor import MessageDistributor
from repro.client.peers import PeerStreamlet
from repro.errors import ClientError, HeaderError, PeerNotFoundError
from repro.mime.message import MimeMessage
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: a staged registration: factory to (re)register, or None to unregister
PeerRegistration = Callable[[], PeerStreamlet] | None


@dataclass
class ClientDeadLetter:
    """One received message the client parked instead of raising.

    ``reason`` is structured: ``unknown-peer`` (never registered),
    ``stale-peer`` (the message rode an epoch older than the client's —
    its peer chain has already been swapped out), or ``malformed-epoch``
    (unparseable ``Content-Session`` epoch parameter).
    """

    reason: str
    peer_id: str | None
    epoch: int | None
    message: MimeMessage
    error: Exception


class MobiGateClient:
    """The mobile-host side: receive, reverse-process, deliver.

    Pass the server's :class:`~repro.telemetry.Telemetry` facade to join
    client-side peer spans onto the traces the server started (the
    ``Content-Trace`` header survives the wire) and to count received
    messages/bytes in the same registry.
    """

    def __init__(
        self,
        *,
        pool: ClientStreamletPool | None = None,
        on_deliver: Callable[[MimeMessage], None] | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.pool = pool if pool is not None else ClientStreamletPool()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.distributor = MessageDistributor(self.pool, telemetry=self.telemetry)
        if self.telemetry.enabled:
            self._msg_counter, self._byte_counter = self.telemetry.client_counters()
        else:
            self._msg_counter = self._byte_counter = None
        self._on_deliver = on_deliver
        self.delivered: list[MimeMessage] = []
        self.bytes_received = 0
        #: highest stream epoch observed on the wire (0 = pre-epoch traffic)
        self.epoch = 0
        #: epoch -> peer registrations to apply when that epoch arrives
        self._staged: dict[int, dict[str, PeerRegistration]] = {}
        #: messages parked instead of raised, oldest first
        self.dead_letters: list[ClientDeadLetter] = []

    def register_peer(self, peer_id: str, factory: Callable[[], PeerStreamlet]) -> None:
        """Register/replace a peer streamlet factory on this client."""
        self.pool.register(peer_id, factory)

    # -- epoch protocol ---------------------------------------------------------------

    def stage_epoch(
        self, epoch: int, registrations: dict[str, PeerRegistration]
    ) -> None:
        """Stage peer changes to apply when ``epoch`` first hits the wire.

        ``registrations`` maps peer id to a factory (register/replace) or
        ``None`` (unregister).  The swap happens inside :meth:`receive`
        at the first message stamped with an epoch >= ``epoch`` — exactly
        the boundary where the server's committed composition starts
        producing, so no message is reverse-processed by the wrong chain.
        """
        if epoch <= self.epoch:
            raise ClientError(
                f"cannot stage epoch {epoch}: client already at epoch {self.epoch}"
            )
        staged = self._staged.setdefault(epoch, {})
        staged.update(registrations)

    def _advance_epoch(self, msg_epoch: int) -> None:
        """Apply every staged registration due at or before ``msg_epoch``."""
        if msg_epoch <= self.epoch:
            return
        for due in sorted(e for e in self._staged if e <= msg_epoch):
            for peer_id, factory in self._staged.pop(due).items():
                if factory is None:
                    self.pool.unregister(peer_id)
                else:
                    self.pool.register(peer_id, factory)
        self.epoch = msg_epoch

    # -- the receive path -------------------------------------------------------------

    def receive(self, message: MimeMessage) -> list[MimeMessage]:
        """Process one message off the link; returns app-level messages.

        Malformed epochs and unknown/stale peer ids park the message on
        :attr:`dead_letters` (returning ``[]``) rather than raising: a
        mid-swap straggler must not crash the delivery loop.
        """
        size = message.total_size()
        self.bytes_received += size
        if self._msg_counter is not None:
            self._msg_counter.inc()
            self._byte_counter.inc(size)
        try:
            msg_epoch = message.headers.epoch
        except HeaderError as exc:
            self._park("malformed-epoch", None, None, message, exc)
            return []
        if msg_epoch is not None:
            self._advance_epoch(msg_epoch)
        try:
            results = self.distributor.distribute(message)
        except PeerNotFoundError as exc:
            stale = msg_epoch is not None and msg_epoch < self.epoch
            self._park(
                "stale-peer" if stale else "unknown-peer",
                getattr(exc, "peer_id", None),
                msg_epoch,
                message,
                exc,
            )
            return []
        self.delivered.extend(results)
        if self._on_deliver is not None:
            for result in results:
                self._on_deliver(result)
        return results

    def _park(
        self,
        reason: str,
        peer_id: str | None,
        epoch: int | None,
        message: MimeMessage,
        error: Exception,
    ) -> None:
        self.dead_letters.append(
            ClientDeadLetter(
                reason=reason, peer_id=peer_id, epoch=epoch,
                message=message, error=error,
            )
        )
        if self.telemetry.enabled:
            counter = self.telemetry.client_dead_letter_counter(reason)
            if counter is not None:
                counter.inc()

    def take_delivered(self) -> list[MimeMessage]:
        """Drain and return everything delivered so far."""
        out = self.delivered
        self.delivered = []
        return out
