"""The MobiGATE client facade (Figure 3-3).

Thin by design: a distributor over a peer pool, a delivered-message list,
and counters.  ``receive`` is what the network emulator calls when a
message finishes crossing the wireless link.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.client.client_pool import ClientStreamletPool
from repro.client.distributor import MessageDistributor
from repro.client.peers import PeerStreamlet
from repro.mime.message import MimeMessage
from repro.telemetry import NULL_TELEMETRY, Telemetry


class MobiGateClient:
    """The mobile-host side: receive, reverse-process, deliver.

    Pass the server's :class:`~repro.telemetry.Telemetry` facade to join
    client-side peer spans onto the traces the server started (the
    ``Content-Trace`` header survives the wire) and to count received
    messages/bytes in the same registry.
    """

    def __init__(
        self,
        *,
        pool: ClientStreamletPool | None = None,
        on_deliver: Callable[[MimeMessage], None] | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.pool = pool if pool is not None else ClientStreamletPool()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.distributor = MessageDistributor(self.pool, telemetry=self.telemetry)
        if self.telemetry.enabled:
            self._msg_counter, self._byte_counter = self.telemetry.client_counters()
        else:
            self._msg_counter = self._byte_counter = None
        self._on_deliver = on_deliver
        self.delivered: list[MimeMessage] = []
        self.bytes_received = 0

    def register_peer(self, peer_id: str, factory: Callable[[], PeerStreamlet]) -> None:
        """Register/replace a peer streamlet factory on this client."""
        self.pool.register(peer_id, factory)

    def receive(self, message: MimeMessage) -> list[MimeMessage]:
        """Process one message off the link; returns app-level messages."""
        size = message.total_size()
        self.bytes_received += size
        if self._msg_counter is not None:
            self._msg_counter.inc()
            self._byte_counter.inc(size)
        results = self.distributor.distribute(message)
        self.delivered.extend(results)
        if self._on_deliver is not None:
            for result in results:
                self._on_deliver(result)
        return results

    def take_delivered(self) -> list[MimeMessage]:
        """Drain and return everything delivered so far."""
        out = self.delivered
        self.delivered = []
        return out
