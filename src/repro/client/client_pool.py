"""The Client Streamlet Pool (section 3.4.2).

Maintains peer streamlet instances — "the system maintains peer
streamlets, instead of original streamlets maintained at the server side"
— creating them lazily from registered factories and destroying them on
request.  One instance per peer id per client: peers may hold client-local
state (the client cache, for one).
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.errors import PeerNotFoundError
from repro.client.peers import PEER_FACTORIES, PeerStreamlet


class ClientStreamletPool:
    """Lazy per-peer-id instance pool."""

    def __init__(
        self,
        factories: dict[str, Callable[[], PeerStreamlet]] | None = None,
        *,
        include_builtin: bool = True,
    ):
        self._factories: dict[str, Callable[[], PeerStreamlet]] = (
            dict(PEER_FACTORIES) if include_builtin else {}
        )
        if factories:
            self._factories.update(factories)
        self._instances: dict[str, PeerStreamlet] = {}
        self._lock = threading.Lock()

    def register(self, peer_id: str, factory: Callable[[], PeerStreamlet]) -> None:
        """Register/replace a factory (drops any live instance)."""
        with self._lock:
            self._factories[peer_id] = factory
            self._instances.pop(peer_id, None)

    def unregister(self, peer_id: str) -> bool:
        """Remove a factory and its live instance; True if it existed.

        A stale server epoch may keep naming the peer on the wire; the
        client turns those into dead-letters rather than rebuilding it.
        """
        with self._lock:
            self._instances.pop(peer_id, None)
            return self._factories.pop(peer_id, None) is not None

    def acquire(self, peer_id: str) -> PeerStreamlet:
        """The (single) live instance for ``peer_id``, created on demand."""
        with self._lock:
            instance = self._instances.get(peer_id)
            if instance is None:
                factory = self._factories.get(peer_id)
                if factory is None:
                    exc = PeerNotFoundError(
                        f"no client streamlet registered for peer id {peer_id!r}"
                    )
                    exc.peer_id = peer_id
                    raise exc
                instance = factory()
                self._instances[peer_id] = instance
            return instance

    def destroy(self, peer_id: str) -> bool:
        """Drop the live instance (a fresh one is built on next acquire)."""
        with self._lock:
            return self._instances.pop(peer_id, None) is not None

    def known_peers(self) -> frozenset[str]:
        """Peer ids with registered factories."""
        with self._lock:
            return frozenset(self._factories)

    def live_count(self) -> int:
        """Peer instances currently constructed."""
        with self._lock:
            return len(self._instances)
