"""The Message Distributor (section 3.4.1).

Parses each incoming message's peer stack and dispatches it to the
matching client streamlets for reverse processing, inside-out (LIFO) —
the last server-side transformation is undone first.  A peer may split a
message (the unbundler), in which case each fragment continues with *its
own* remaining stack.

Like the servlet model the thesis cites, the distributor supports multiple
worker threads: :meth:`start` spawns workers that drain an inbound queue
and feed the delivery callback; :meth:`distribute` is the synchronous
single-message form used by the inline experiments.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable

from repro.client.client_pool import ClientStreamletPool
from repro.errors import DistributorError
from repro.mime.message import MimeMessage
from repro.telemetry import NULL_TELEMETRY, Telemetry

Delivery = Callable[[MimeMessage], None]


class MessageDistributor:
    """Reverse-process messages through their peer stacks."""

    def __init__(self, pool: ClientStreamletPool, *, telemetry: Telemetry | None = None):
        self._pool = pool
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._inbound: queue.Queue[MimeMessage | None] = queue.Queue()
        self._workers: list[threading.Thread] = []
        self._delivery: Delivery | None = None
        self.distributed = 0
        #: (peer_id, message, exception) for messages whose reverse
        #: processing raised — the client-side dead-letter list; routing
        #: errors (unknown peer, bad envelope) still propagate
        self.quarantined: list[tuple[str, MimeMessage, Exception]] = []
        self.peer_failures = 0

    # -- synchronous API -------------------------------------------------------------

    def distribute(self, message: MimeMessage) -> list[MimeMessage]:
        """Fully reverse-process one message; returns the app-level result."""
        if not isinstance(message, MimeMessage):
            raise DistributorError(
                f"distributor received {type(message).__name__}, not a MimeMessage"
            )
        out: list[MimeMessage] = []
        self._process(message, out)
        self.distributed += 1
        return out

    def _process(self, message: MimeMessage, out: list[MimeMessage]) -> None:
        tm = self._telemetry
        while True:
            peer_id = message.headers.pop_peer()
            if peer_id is None:
                out.append(message)
                return
            peer = self._pool.acquire(peer_id)
            try:
                if tm.enabled:
                    t0 = time.perf_counter()
                    results = peer.reverse(message)
                    tm.peer_hop(peer_id, message, results, time.perf_counter() - t0)
                else:
                    results = peer.reverse(message)
            except Exception as exc:  # one bad message must not kill a worker
                self.peer_failures += 1
                self.quarantined.append((peer_id, message, exc))
                return
            if len(results) == 1 and results[0] is message:
                continue  # transformed in place; keep unwinding its stack
            for result in results:
                self._process(result, out)
            return

    # -- threaded API (the servlet-style worker model) -----------------------------------

    def start(self, delivery: Delivery, *, workers: int = 2) -> None:
        """Spawn worker threads feeding ``delivery`` (the servlet model)."""
        if self._workers:
            raise DistributorError("distributor already started")
        if workers < 1:
            raise DistributorError(f"need at least one worker, got {workers}")
        self._delivery = delivery
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"distributor-{index}", daemon=True
            )
            self._workers.append(thread)
            thread.start()

    def submit(self, message: MimeMessage) -> None:
        """Queue a message for the worker threads."""
        if not self._workers:
            raise DistributorError("distributor not started; use distribute()")
        self._inbound.put(message)

    def _worker(self) -> None:
        while True:
            message = self._inbound.get()
            if message is None:
                return
            try:
                for result in self.distribute(message):
                    assert self._delivery is not None
                    self._delivery(result)
            finally:
                self._inbound.task_done()

    def stop(self) -> None:
        """Stop and join the worker threads."""
        for _ in self._workers:
            self._inbound.put(None)
        for thread in self._workers:
            thread.join(timeout=2)
        self._workers.clear()

    def drain(self) -> None:
        """Block until the inbound queue is fully processed."""
        self._inbound.join()
