"""Client-side peer streamlets (section 6.5).

"Given a streamlet that performs some processing on an outgoing message,
its peer streamlet performs the reverse processing on incoming messages."
A peer exposes one method, :meth:`PeerStreamlet.reverse`, which may return

* ``[message]`` — transformed in place (the common case),
* several messages — e.g. the unbundler splitting a power-saving burst,
* a different single message.

``PEER_FACTORIES`` maps the peer ids that server streamlets push onto the
message header to constructors; the pool instantiates them lazily, one per
client (peers may be stateful, like the client cache).
"""

from __future__ import annotations

from repro.mime.message import MimeMessage
from repro.streamlets.cache import PEER_CLIENT_CACHE, ClientCacheStore
from repro.streamlets.compress import PEER_TEXT_DECOMPRESS, decompress_message
from repro.streamlets.crypto import DEFAULT_KEY, PEER_DECRYPTOR, decrypt_message
from repro.streamlets.power import PEER_UNBUNDLER, unbundle_message
from repro.streamlets.xmlstream import PEER_XML_REASSEMBLE, XmlReassembly


class PeerStreamlet:
    """Base class: identity reverse processing."""

    def __init__(self, peer_id: str):
        self.peer_id = peer_id
        self.processed = 0

    def reverse(self, message: MimeMessage) -> list[MimeMessage]:
        """Reverse-process one message; may split, absorb, or transform it."""
        self.processed += 1
        return self._reverse(message)

    def _reverse(self, message: MimeMessage) -> list[MimeMessage]:
        return [message]


class TextDecompress(PeerStreamlet):
    """Undo the Text Compressor's MGTC container."""
    def __init__(self):
        super().__init__(PEER_TEXT_DECOMPRESS)

    def _reverse(self, message: MimeMessage) -> list[MimeMessage]:
        decompress_message(message)
        return [message]


class Decryptor(PeerStreamlet):
    """Undo the encryptor's stream cipher (pops a stacked nonce)."""
    def __init__(self, key: bytes = DEFAULT_KEY):
        super().__init__(PEER_DECRYPTOR)
        self._key = key

    def _reverse(self, message: MimeMessage) -> list[MimeMessage]:
        decrypt_message(message, self._key)
        return [message]


class ClientCache(PeerStreamlet):
    """Reconstitute cache-HIT notifications from the local store."""
    def __init__(self):
        super().__init__(PEER_CLIENT_CACHE)
        self._store = ClientCacheStore()

    def _reverse(self, message: MimeMessage) -> list[MimeMessage]:
        self._store.apply(message)
        return [message]


class Unbundler(PeerStreamlet):
    """Split a power-saving burst back into individual messages."""
    def __init__(self):
        super().__init__(PEER_UNBUNDLER)

    def _reverse(self, message: MimeMessage) -> list[MimeMessage]:
        return unbundle_message(message)


class XmlReassembler(PeerStreamlet):
    """Collects XML-stream fragments; emits the rebuilt document once whole."""

    def __init__(self):
        super().__init__(PEER_XML_REASSEMBLE)
        self._reassembly = XmlReassembly()

    def _reverse(self, message: MimeMessage) -> list[MimeMessage]:
        rebuilt = self._reassembly.add(message)
        return [rebuilt] if rebuilt is not None else []

    @property
    def pending_streams(self) -> int:
        return self._reassembly.pending_streams


#: peer id -> zero-argument constructor
PEER_FACTORIES: dict[str, type[PeerStreamlet]] = {
    PEER_TEXT_DECOMPRESS: TextDecompress,
    PEER_DECRYPTOR: Decryptor,
    PEER_CLIENT_CACHE: ClientCache,
    PEER_UNBUNDLER: Unbundler,
    PEER_XML_REASSEMBLE: XmlReassembler,
}
