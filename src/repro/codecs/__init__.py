"""Codec substrates (built from scratch, see DESIGN.md section 6).

The paper's streamlets rely on standard codecs (GIF/JPEG transcoding, text
compression, encryption, PostScript) that it treats as black boxes.  We
implement workalikes from first principles so every byte transformation in
the pipeline is exercised by our own code:

* :mod:`repro.codecs.rle` / :mod:`repro.codecs.huffman` /
  :mod:`repro.codecs.lz77` — building blocks,
* :mod:`repro.codecs.textcodec` — the Text Compressor's codec
  (LZSS + canonical Huffman with a raw-fallback container),
* :mod:`repro.codecs.cipher` — a keyed stream cipher (RC4-class) for the
  encryption streamlets,
* :mod:`repro.codecs.imagefmt` — synthetic "GIF-like" (palette) and
  "JPEG-like" (block-DCT) raster formats plus downsampling/grayscale ops,
* :mod:`repro.codecs.psdoc` — a PostScript-like structured document model
  for the postscript-to-text streamlet.
"""

from repro.codecs.rle import rle_encode, rle_decode
from repro.codecs.huffman import huffman_encode, huffman_decode
from repro.codecs.lz77 import lzss_compress, lzss_decompress
from repro.codecs.textcodec import TextCodec
from repro.codecs.cipher import StreamCipher
from repro.codecs.imagefmt import (
    ImageRaster,
    encode_gif,
    decode_gif,
    encode_jpeg,
    decode_jpeg,
    downsample,
    quantize_grays,
)
from repro.codecs.psdoc import PsDocument, PsOp

__all__ = [
    "rle_encode",
    "rle_decode",
    "huffman_encode",
    "huffman_decode",
    "lzss_compress",
    "lzss_decompress",
    "TextCodec",
    "StreamCipher",
    "ImageRaster",
    "encode_gif",
    "decode_gif",
    "encode_jpeg",
    "decode_jpeg",
    "downsample",
    "quantize_grays",
    "PsDocument",
    "PsOp",
]
