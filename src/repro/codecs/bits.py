"""Bit-level I/O used by the Huffman and LZSS coders.

Writers accumulate into a ``bytearray`` (amortised O(1) appends); readers
index into the source ``bytes`` without copying, per the HPC guidance to
avoid needless buffer copies.
"""

from __future__ import annotations

from repro.errors import CodecError


class BitWriter:
    """MSB-first bit accumulator."""

    __slots__ = ("_out", "_acc", "_nbits")

    def __init__(self):
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        """Append one bit."""
        self._acc = (self._acc << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._out.append(self._acc)
            self._acc = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        """Write ``width`` bits of ``value``, most significant first."""
        if width < 0 or (width and value >> width):
            raise CodecError(f"value {value} does not fit in {width} bits")
        acc, nbits = self._acc, self._nbits
        acc = (acc << width) | value
        nbits += width
        out = self._out
        while nbits >= 8:
            nbits -= 8
            out.append((acc >> nbits) & 0xFF)
        self._acc = acc & ((1 << nbits) - 1)
        self._nbits = nbits

    def getvalue(self) -> bytes:
        """Flush (zero-padding the final byte) and return the bitstream."""
        if self._nbits:
            return bytes(self._out) + bytes([(self._acc << (8 - self._nbits)) & 0xFF])
        return bytes(self._out)

    def bit_length(self) -> int:
        """Bits written so far (before padding)."""
        return len(self._out) * 8 + self._nbits


class BitReader:
    """MSB-first bit reader over a bytes-like object."""

    __slots__ = ("_data", "_pos", "_limit")

    def __init__(self, data: bytes, start_byte: int = 0):
        self._data = data
        self._pos = start_byte * 8
        self._limit = len(data) * 8

    def read_bit(self) -> int:
        """The next bit; raises CodecError past the end."""
        if self._pos >= self._limit:
            raise CodecError("bitstream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """The next ``width`` bits as an integer, MSB first."""
        if width < 0:
            raise CodecError("negative width")
        if self._pos + width > self._limit:
            raise CodecError("bitstream exhausted")
        value = 0
        pos = self._pos
        data = self._data
        for _ in range(width):
            byte = data[pos >> 3]
            value = (value << 1) | ((byte >> (7 - (pos & 7))) & 1)
            pos += 1
        self._pos = pos
        return value

    @property
    def bits_remaining(self) -> int:
        return self._limit - self._pos
