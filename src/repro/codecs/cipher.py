"""A keyed stream cipher for the encryption streamlets.

This is an RC4-class keystream generator (key-scheduled permutation +
output feedback) implemented from scratch.  It exists to give the
Encryptor/Decryptor streamlets a real, invertible byte transformation with
measurable cost — **it is not intended to provide modern cryptographic
security** and must not be used outside this simulation.

Encryption XORs the keystream; decryption is the same operation, so peer
streamlets share one primitive.  A ``nonce`` mixed into key scheduling
keeps distinct messages from reusing a keystream.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError


class StreamCipher:
    """XOR stream cipher with RC4-style key scheduling."""

    def __init__(self, key: bytes):
        if not key:
            raise CodecError("cipher key must be non-empty")
        if len(key) > 256:
            raise CodecError("cipher key longer than 256 bytes")
        self._key = bytes(key)

    def _schedule(self, nonce: bytes) -> np.ndarray:
        material = self._key + nonce
        state = np.arange(256, dtype=np.uint8)
        j = 0
        for i in range(256):
            j = (j + int(state[i]) + material[i % len(material)]) & 0xFF
            state[i], state[j] = state[j], state[i]
        return state

    def _keystream(self, nonce: bytes, length: int) -> np.ndarray:
        state = self._schedule(nonce)
        out = np.empty(length, dtype=np.uint8)
        i = j = 0
        # drop the first 256 bytes (RC4-drop) to decorrelate from the key
        for step in range(256 + length):
            i = (i + 1) & 0xFF
            j = (j + int(state[i])) & 0xFF
            state[i], state[j] = state[j], state[i]
            if step >= 256:
                out[step - 256] = state[(int(state[i]) + int(state[j])) & 0xFF]
        return out

    def encrypt(self, plaintext: bytes, nonce: bytes) -> bytes:
        """XOR ``plaintext`` with the keystream derived from key+nonce."""
        if not nonce:
            raise CodecError("nonce must be non-empty")
        data = np.frombuffer(plaintext, dtype=np.uint8)
        stream = self._keystream(bytes(nonce), len(data))
        return (data ^ stream).tobytes()

    def decrypt(self, ciphertext: bytes, nonce: bytes) -> bytes:
        """Inverse of :meth:`encrypt` (XOR is an involution)."""
        return self.encrypt(ciphertext, nonce)
