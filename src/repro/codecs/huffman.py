"""Canonical Huffman coding over bytes.

The container is self-describing::

    u32  original length (little endian)
    256  bytes of code lengths (0 = symbol absent, max 32)
    ...  bit-packed payload, MSB first

Canonical codes mean only the lengths need to be stored; both ends rebuild
identical codebooks by assigning codes in (length, symbol) order.  Decoding
uses a prefix lookup table for codes up to ``_TABLE_BITS`` long, with a
bit-by-bit fallback for the rare longer codes.
"""

from __future__ import annotations

import heapq
import struct
from collections import Counter

from repro.codecs.bits import BitWriter
from repro.errors import CodecError

_MAX_CODE_LEN = 32


def _code_lengths(freqs: Counter) -> dict[int, int]:
    """Huffman code length per symbol via the standard heap construction."""
    if not freqs:
        return {}
    if len(freqs) == 1:
        return {next(iter(freqs)): 1}
    # heap items: (weight, tiebreak, {symbol: depth})
    heap = [(weight, sym, {sym: 0}) for sym, weight in freqs.items()]
    heapq.heapify(heap)
    counter = 256  # tiebreak ids beyond symbol range
    while len(heap) > 1:
        w1, _, d1 = heapq.heappop(heap)
        w2, _, d2 = heapq.heappop(heap)
        merged = {sym: depth + 1 for sym, depth in d1.items()}
        merged.update({sym: depth + 1 for sym, depth in d2.items()})
        heapq.heappush(heap, (w1 + w2, counter, merged))
        counter += 1
    depths = heap[0][2]
    if max(depths.values()) > _MAX_CODE_LEN:
        raise CodecError("Huffman code length overflow")  # pragma: no cover
    return depths


def _canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """symbol -> (code, length) in canonical order."""
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for sym, length in sorted(lengths.items(), key=lambda kv: (kv[1], kv[0])):
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


def huffman_encode(data: bytes) -> bytes:
    """Entropy-code ``data``: length + code-length table + packed bits."""
    lengths = _code_lengths(Counter(data))
    header = struct.pack("<I", len(data)) + bytes(
        lengths.get(sym, 0) for sym in range(256)
    )
    if not data:
        return header
    codes = _canonical_codes(lengths)
    writer = BitWriter()
    write = writer.write_bits
    for byte in data:
        code, length = codes[byte]
        write(code, length)
    return header + writer.getvalue()


#: width of the fast decode table; codes this short resolve in one lookup
_TABLE_BITS = 12


def huffman_decode(data: bytes) -> bytes:
    """Inverse of :func:`huffman_encode`; raises CodecError on corruption.

    Decoding is table-driven: a ``2^W``-entry prefix table resolves every
    code of length ≤ W in one indexed lookup (profiling showed the
    original per-bit loop dominating image decoding); rarer longer codes
    fall back to a bit-by-bit walk.
    """
    if len(data) < 4 + 256:
        raise CodecError("truncated Huffman header")
    (original_len,) = struct.unpack_from("<I", data, 0)
    lengths = {sym: data[4 + sym] for sym in range(256) if data[4 + sym]}
    if original_len == 0:
        return b""
    if not lengths:
        raise CodecError("no codebook for non-empty payload")
    codes = _canonical_codes(lengths)
    max_len = max(lengths.values())
    width = min(_TABLE_BITS, max_len)
    table: list[tuple[int, int] | None] = [None] * (1 << width)
    long_codes: dict[tuple[int, int], int] = {}
    for sym, (code, length) in codes.items():
        if length <= width:
            base = code << (width - length)
            for k in range(1 << (width - length)):
                table[base + k] = (sym, length)
        else:
            long_codes[(length, code)] = sym

    out = bytearray()
    acc = 0
    nbits = 0
    pos = 4 + 256
    n = len(data)
    mask_width = (1 << width) - 1
    while len(out) < original_len:
        while nbits < width and pos < n:
            acc = (acc << 8) | data[pos]
            pos += 1
            nbits += 8
        if nbits >= width:
            index = (acc >> (nbits - width)) & mask_width
        else:
            index = (acc << (width - nbits)) & mask_width  # zero-padded tail
        entry = table[index]
        if entry is not None:
            sym, length = entry
            if length > nbits:
                raise CodecError("invalid Huffman bitstream")
            nbits -= length
            acc &= (1 << nbits) - 1
            out.append(sym)
            continue
        # slow path: the prefix belongs to a code longer than the table
        code = 0
        length = 0
        while True:
            if nbits == 0:
                if pos >= n:
                    raise CodecError("invalid Huffman bitstream")
                acc = data[pos]
                pos += 1
                nbits = 8
            nbits -= 1
            code = (code << 1) | ((acc >> nbits) & 1)
            acc &= (1 << nbits) - 1
            length += 1
            sym = long_codes.get((length, code))
            if sym is not None:
                out.append(sym)
                break
            if length > max_len:
                raise CodecError("invalid Huffman bitstream")
    return bytes(out)
