"""Synthetic raster image formats and pixel operations.

The thesis streamlets transcode GIF→JPEG, down-sample images, and map them
to 16 grays.  Real codecs are unavailable offline, so we implement two
formats with the *size characteristics* that matter to the experiments:

* **GIF-like** (``MGIF``): lossless palette format — 3-3-2 bit RGB indices,
  run-length coded.  Large for photographic content.
* **JPEG-like** (``MJPG``): lossy transform format — 8×8 block DCT per RGB
  channel, uniform quantisation controlled by ``quality``, zigzag ordering,
  RLE + Huffman entropy coding.  Much smaller at moderate quality, which is
  exactly the trade the Gif2Jpeg streamlet exploits.

All pixel math is vectorised numpy (see the HPC guides): block DCTs are a
pair of matrix multiplies over a ``(nblocks, 8, 8)`` view.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.huffman import huffman_decode, huffman_encode
from repro.codecs.rle import rle_decode, rle_encode
from repro.errors import CodecError

_GIF_MAGIC = b"MGIF"
_JPG_MAGIC = b"MJPG"
_BLOCK = 8


class ImageRaster:
    """An in-memory RGB image: ``(height, width, 3)`` uint8 pixels.

    Implements the message :class:`~repro.mime.message.Payload` protocol so
    decoded images can travel between streamlets without re-encoding.
    """

    __slots__ = ("pixels",)

    def __init__(self, pixels: np.ndarray):
        arr = np.asarray(pixels)
        if arr.ndim != 3 or arr.shape[2] != 3 or arr.dtype != np.uint8:
            raise CodecError(
                f"ImageRaster needs (H, W, 3) uint8 pixels, got {arr.shape} {arr.dtype}"
            )
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            raise CodecError("image must be non-empty")
        self.pixels = arr

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    def size_bytes(self) -> int:
        """Raw pixel bytes (the Payload protocol)."""
        return int(self.pixels.nbytes)

    def clone(self) -> "ImageRaster":
        """Deep copy (independent pixel buffer)."""
        return ImageRaster(self.pixels.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ImageRaster):
            return NotImplemented
        return self.pixels.shape == other.pixels.shape and bool(
            np.array_equal(self.pixels, other.pixels)
        )

    def __hash__(self) -> int:  # rasters are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ImageRaster({self.width}x{self.height})"

    @classmethod
    def synthetic(cls, width: int, height: int, seed: int = 0) -> "ImageRaster":
        """A photo-like test image: smooth gradients plus soft blobs.

        Smoothness matters — it makes the JPEG-like coder genuinely smaller
        than the GIF-like one, as with real photographs.
        """
        rng = np.random.default_rng(seed)
        y = np.linspace(0.0, 1.0, height)[:, None]
        x = np.linspace(0.0, 1.0, width)[None, :]
        channels = []
        for c in range(3):
            base = (
                0.5
                + 0.25 * np.sin(2 * np.pi * (x * rng.uniform(0.5, 2.0) + c / 3))
                + 0.25 * np.cos(2 * np.pi * (y * rng.uniform(0.5, 2.0)))
            )
            for _ in range(3):
                cx, cy = rng.uniform(0, 1, 2)
                radius = rng.uniform(0.1, 0.4)
                blob = np.exp(-(((x - cx) ** 2 + (y - cy) ** 2) / (radius**2)))
                base = base + rng.uniform(-0.3, 0.3) * blob
            channels.append(np.clip(base, 0.0, 1.0))
        pixels = np.stack(channels, axis=-1) * 255
        # photographic sensor noise: defeats palette run-length coding the
        # way real photos do, while block-DCT coding still compresses
        pixels = pixels + rng.normal(0.0, 5.0, pixels.shape)
        return cls(np.clip(pixels, 0, 255).astype(np.uint8))


# ---------------------------------------------------------------------------
# GIF-like: 3-3-2 palette + RLE
# ---------------------------------------------------------------------------


def encode_gif(image: ImageRaster) -> bytes:
    """Palette-quantise to 256 colours (3-3-2 RGB) and run-length code."""
    px = image.pixels
    indices = (px[:, :, 0] & 0xE0) | ((px[:, :, 1] & 0xE0) >> 3) | (px[:, :, 2] >> 6)
    body = rle_encode(indices.astype(np.uint8).tobytes())
    return _GIF_MAGIC + struct.pack("<HH", image.width, image.height) + body


def decode_gif(data: bytes) -> ImageRaster:
    """Inverse of :func:`encode_gif` (up to palette quantisation)."""
    if len(data) < 8 or data[:4] != _GIF_MAGIC:
        raise CodecError("not an MGIF image")
    width, height = struct.unpack_from("<HH", data, 4)
    raw = rle_decode(data[8:])
    if len(raw) != width * height:
        raise CodecError("MGIF pixel count mismatch")
    indices = np.frombuffer(raw, dtype=np.uint8).reshape(height, width)
    pixels = np.empty((height, width, 3), dtype=np.uint8)
    # expand 3-3-2 indices back to channel midpoints
    pixels[:, :, 0] = (indices & 0xE0) | 0x10
    pixels[:, :, 1] = ((indices & 0x1C) << 3) | 0x10
    pixels[:, :, 2] = ((indices & 0x03) << 6) | 0x20
    return ImageRaster(pixels)


# ---------------------------------------------------------------------------
# JPEG-like: block DCT + quantisation + zigzag + RLE + Huffman
# ---------------------------------------------------------------------------


def _dct_matrix() -> np.ndarray:
    """Orthonormal DCT-II basis for 8-point transforms."""
    k = np.arange(_BLOCK)[:, None]
    n = np.arange(_BLOCK)[None, :]
    mat = np.cos(np.pi * (2 * n + 1) * k / (2 * _BLOCK)) * np.sqrt(2 / _BLOCK)
    mat[0, :] = np.sqrt(1 / _BLOCK)
    return mat


_DCT = _dct_matrix()
_ZIGZAG = np.array(
    sorted(range(_BLOCK * _BLOCK), key=lambda i: (i // _BLOCK + i % _BLOCK, i // _BLOCK))
)
_UNZIGZAG = np.argsort(_ZIGZAG)

# JPEG-style frequency weighting: high-frequency coefficients (late in
# zigzag order) get coarser steps, so sensor noise quantises to zero while
# the low-frequency structure survives
_FREQ_WEIGHT = 1.0 + 0.6 * np.arange(_BLOCK * _BLOCK, dtype=np.float64)


def _quant_step(quality: int) -> float:
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in [1, 100], got {quality}")
    return 1.0 + (100 - quality) * 0.5


def _to_blocks(channel: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Pad to block multiples and reshape to (nblocks, 8, 8) float64."""
    h, w = channel.shape
    ph = (-h) % _BLOCK
    pw = (-w) % _BLOCK
    padded = np.pad(channel, ((0, ph), (0, pw)), mode="edge").astype(np.float64)
    bh, bw = padded.shape[0] // _BLOCK, padded.shape[1] // _BLOCK
    blocks = padded.reshape(bh, _BLOCK, bw, _BLOCK).transpose(0, 2, 1, 3)
    return blocks.reshape(-1, _BLOCK, _BLOCK), bh, bw


def _from_blocks(blocks: np.ndarray, bh: int, bw: int, h: int, w: int) -> np.ndarray:
    grid = blocks.reshape(bh, bw, _BLOCK, _BLOCK).transpose(0, 2, 1, 3)
    return grid.reshape(bh * _BLOCK, bw * _BLOCK)[:h, :w]


def encode_jpeg(image: ImageRaster, quality: int = 75) -> bytes:
    """Lossy transform coding of each RGB channel."""
    step = _quant_step(quality)
    header = struct.pack("<HHB", image.width, image.height, quality)
    payload = bytearray()
    for c in range(3):
        blocks, _bh, _bw = _to_blocks(image.pixels[:, :, c])
        coeffs = _DCT @ (blocks - 128.0) @ _DCT.T
        zig = coeffs.reshape(-1, _BLOCK * _BLOCK)[:, _ZIGZAG]
        quantised = np.round(zig / (step * _FREQ_WEIGHT)).astype(np.int16)
        packed = huffman_encode(rle_encode(quantised.astype("<i2").tobytes()))
        payload += struct.pack("<I", len(packed)) + packed
    return _JPG_MAGIC + header + bytes(payload)


def decode_jpeg(data: bytes) -> ImageRaster:
    """Inverse of :func:`encode_jpeg` (up to quantisation loss)."""
    if len(data) < 9 or data[:4] != _JPG_MAGIC:
        raise CodecError("not an MJPG image")
    width, height, quality = struct.unpack_from("<HHB", data, 4)
    step = _quant_step(quality)
    bh = (height + _BLOCK - 1) // _BLOCK
    bw = (width + _BLOCK - 1) // _BLOCK
    nblocks = bh * bw
    pos = 9
    channels = []
    for _ in range(3):
        if pos + 4 > len(data):
            raise CodecError("truncated MJPG channel")
        (clen,) = struct.unpack_from("<I", data, pos)
        pos += 4
        raw = rle_decode(huffman_decode(data[pos : pos + clen]))
        pos += clen
        zig = np.frombuffer(raw, dtype="<i2").reshape(nblocks, _BLOCK * _BLOCK)
        dequantised = zig.astype(np.float64) * (step * _FREQ_WEIGHT)
        blocks = dequantised[:, _UNZIGZAG].reshape(nblocks, _BLOCK, _BLOCK)
        blocks = _DCT.T @ blocks @ _DCT + 128.0
        channel = _from_blocks(blocks, bh, bw, height, width)
        channels.append(np.clip(np.round(channel), 0, 255).astype(np.uint8))
    return ImageRaster(np.stack(channels, axis=-1))


# ---------------------------------------------------------------------------
# Pixel operations used by distillation streamlets
# ---------------------------------------------------------------------------


def downsample(image: ImageRaster, factor: int) -> ImageRaster:
    """Average-pool by ``factor`` in both dimensions (lossy distillation)."""
    if factor < 1:
        raise CodecError(f"downsample factor must be >= 1, got {factor}")
    if factor == 1:
        return image.clone()
    px = image.pixels
    h = (px.shape[0] // factor) * factor
    w = (px.shape[1] // factor) * factor
    if h == 0 or w == 0:
        raise CodecError(f"image {px.shape[:2]} too small for factor {factor}")
    pooled = (
        px[:h, :w]
        .reshape(h // factor, factor, w // factor, factor, 3)
        .mean(axis=(1, 3))
    )
    return ImageRaster(np.round(pooled).astype(np.uint8))


def quantize_grays(image: ImageRaster, levels: int = 16) -> ImageRaster:
    """Convert to grayscale quantised to ``levels`` shades (Map-to-16-grays)."""
    if not 2 <= levels <= 256:
        raise CodecError(f"levels must be in [2, 256], got {levels}")
    px = image.pixels.astype(np.float64)
    luma = 0.299 * px[:, :, 0] + 0.587 * px[:, :, 1] + 0.114 * px[:, :, 2]
    bucket = np.minimum((luma / 256.0 * levels).astype(np.int64), levels - 1)
    shade = np.round((bucket + 0.5) * 255.0 / levels).astype(np.uint8)
    return ImageRaster(np.repeat(shade[:, :, None], 3, axis=2))
