"""LZSS (LZ77 with a literal/match flag) over a 32 KiB window.

Token stream, bit-packed MSB-first:

* flag ``0`` + 8 bits         — literal byte
* flag ``1`` + 15 bits + 8 bits — match: distance-1 (1..32768), length-3
  (3..258)

A 4-byte little-endian original-length prefix terminates decoding exactly.
Match search uses hash chains on 3-byte prefixes with a bounded chain walk
(``max_chain``), trading a little ratio for linear-time behaviour on
pathological inputs — the standard deflate-style compromise.
"""

from __future__ import annotations

import struct

from repro.codecs.bits import BitReader, BitWriter
from repro.errors import CodecError

WINDOW = 1 << 15          # 32 KiB
MIN_MATCH = 3
MAX_MATCH = MIN_MATCH + 255


def _hash3(data: bytes, i: int) -> int:
    return (data[i] << 16) | (data[i + 1] << 8) | data[i + 2]


def lzss_compress(data: bytes, *, max_chain: int = 32) -> bytes:
    """Compress ``data``; ``max_chain`` bounds match-search effort."""
    n = len(data)
    writer = BitWriter()
    chains: dict[int, list[int]] = {}
    i = 0
    while i < n:
        best_len = 0
        best_dist = 0
        if i + MIN_MATCH <= n:
            key = _hash3(data, i)
            candidates = chains.get(key)
            if candidates:
                window_start = i - WINDOW
                tried = 0
                # newest candidates first: nearer matches, shorter distances
                for j in reversed(candidates):
                    if j < window_start:
                        break
                    tried += 1
                    if tried > max_chain:
                        break
                    length = 0
                    max_here = min(MAX_MATCH, n - i)
                    while length < max_here and data[j + length] == data[i + length]:
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_dist = i - j
                        if length >= MAX_MATCH:
                            break
            candidates = chains.setdefault(key, [])
            candidates.append(i)
            if len(candidates) > 4 * max_chain:
                del candidates[: 2 * max_chain]
        if best_len >= MIN_MATCH:
            writer.write_bit(1)
            writer.write_bits(best_dist - 1, 15)
            writer.write_bits(best_len - MIN_MATCH, 8)
            # index the skipped positions so later matches can reach them
            end = min(i + best_len, n - MIN_MATCH + 1)
            for k in range(i + 1, end):
                chains.setdefault(_hash3(data, k), []).append(k)
            i += best_len
        else:
            writer.write_bit(0)
            writer.write_bits(data[i], 8)
            i += 1
    return struct.pack("<I", n) + writer.getvalue()


def lzss_decompress(data: bytes) -> bytes:
    """Inverse of :func:`lzss_compress`; raises CodecError on corruption."""
    if len(data) < 4:
        raise CodecError("truncated LZSS header")
    (original_len,) = struct.unpack_from("<I", data, 0)
    reader = BitReader(data, start_byte=4)
    out = bytearray()
    while len(out) < original_len:
        if reader.read_bit():
            dist = reader.read_bits(15) + 1
            length = reader.read_bits(8) + MIN_MATCH
            start = len(out) - dist
            if start < 0:
                raise CodecError("LZSS match reaches before stream start")
            for k in range(length):  # may self-overlap, byte-at-a-time copy
                out.append(out[start + k])
        else:
            out.append(reader.read_bits(8))
    if len(out) != original_len:
        raise CodecError("LZSS length mismatch")  # pragma: no cover
    return bytes(out)
