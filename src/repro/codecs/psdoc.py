"""A PostScript-like structured document model.

The PostScript-to-Text streamlet "discards some information on format and
converts documents to rich-text".  We model a document as a sequence of
operations — text runs plus formatting/graphics operators — with a textual
wire form, so the streamlet's job (keep the text, drop the rest) is a real
transformation with measurable size reduction.

Wire form, one op per line::

    font Helvetica 12
    moveto 72 720
    show Hello, world
    line 10 10 200 10
    page

``show`` arguments are the raw text run (may contain spaces; newlines are
escaped as ``\\n``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodecError

# operator -> number of numeric arguments (None = rest-of-line text)
_OPERATORS: dict[str, int | None] = {
    "font": None,       # name + size, kept as text args
    "moveto": 2,
    "lineto": 2,
    "line": 4,
    "rect": 4,
    "setgray": 1,
    "scale": 2,
    "rotate": 1,
    "show": None,
    "page": 0,
}

_TEXT_OPS = frozenset({"show"})


@dataclass(frozen=True)
class PsOp:
    """One document operation: operator name + argument string."""

    name: str
    args: str = ""

    def __post_init__(self):
        if self.name not in _OPERATORS:
            raise CodecError(f"unknown PostScript-like operator {self.name!r}")
        if "\n" in self.args or "\r" in self.args:
            raise CodecError("op arguments may not contain raw newlines")
        arity = _OPERATORS[self.name]
        if arity == 0 and self.args:
            raise CodecError(f"{self.name} takes no arguments")
        if isinstance(arity, int) and arity > 0:
            parts = self.args.split()
            if len(parts) != arity:
                raise CodecError(f"{self.name} needs {arity} numeric args, got {self.args!r}")
            for part in parts:
                try:
                    float(part)
                except ValueError:
                    raise CodecError(f"{self.name} arg {part!r} is not numeric") from None

    @property
    def is_text(self) -> bool:
        return self.name in _TEXT_OPS

    def format(self) -> str:
        """The operation's wire-form line."""
        return f"{self.name} {self.args}".rstrip()


class PsDocument:
    """An ordered collection of :class:`PsOp`.

    Implements the message ``Payload`` protocol (``size_bytes``/``clone``).
    """

    __slots__ = ("ops",)

    def __init__(self, ops: list[PsOp] | None = None):
        self.ops: list[PsOp] = list(ops or [])

    # -- construction -----------------------------------------------------------

    def add(self, name: str, args: str = "") -> "PsDocument":
        """Append an operation; returns self for chaining."""
        self.ops.append(PsOp(name, args))
        return self

    def show(self, text: str) -> "PsDocument":
        """Append a text run.

        Newlines are escaped on the wire; leading/trailing whitespace of the
        run is *not* preserved (the wire form is whitespace-delimited).
        """
        return self.add("show", text.replace("\n", "\\n").strip())

    # -- wire form ---------------------------------------------------------------

    def to_source(self) -> str:
        """Render the document, one operation per line."""
        return "\n".join(op.format() for op in self.ops)

    @classmethod
    def parse(cls, source: str) -> "PsDocument":
        doc = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            name, _, args = line.partition(" ")
            try:
                doc.ops.append(PsOp(name, args.strip()))
            except CodecError as exc:
                raise CodecError(f"line {lineno}: {exc}") from exc
        return doc

    # -- the streamlet's transformation --------------------------------------------

    def to_text(self) -> str:
        """Extract the text runs, unescaping newlines; one run per line."""
        runs = [op.args.replace("\\n", "\n") for op in self.ops if op.is_text]
        return "\n".join(runs)

    def text_fraction(self) -> float:
        """Fraction of the source bytes that are text runs (size-reduction hint)."""
        total = len(self.to_source().encode("utf-8"))
        if total == 0:
            return 0.0
        text = len(self.to_text().encode("utf-8"))
        return text / total

    # -- Payload protocol -------------------------------------------------------------

    def size_bytes(self) -> int:
        """UTF-8 size of the wire form (the Payload protocol)."""
        return len(self.to_source().encode("utf-8"))

    def clone(self) -> "PsDocument":
        """Copy sharing the frozen ops (list is fresh)."""
        return PsDocument(list(self.ops))  # ops are frozen dataclasses

    # -- dunder --------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PsDocument):
            return NotImplemented
        return self.ops == other.ops

    def __repr__(self) -> str:  # pragma: no cover
        return f"PsDocument({len(self.ops)} ops, {self.size_bytes()}B)"
