"""Byte-oriented run-length coding.

Format: a sequence of ``(control, ...)`` packets.

* ``control < 0x80``  — literal run: the next ``control + 1`` bytes are
  copied verbatim (1..128 literals).
* ``control >= 0x80`` — repeat run: the next byte repeats
  ``control - 0x80 + 2`` times (2..129 repeats).

Runs of length 2 are encoded as repeats only when already inside a repeat
decision; the encoder switches to repeat packets at runs of 3+, so
incompressible data expands by at most 1/128 + 1 byte.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

_MAX_LITERAL = 128
_MAX_RUN = 129


def rle_encode(data: bytes) -> bytes:
    """Run-length code ``data`` into literal/repeat packets.

    Run boundaries are found with vectorised numpy (profiling showed the
    original per-byte Python loop dominating JPEG-like encoding); the
    Python loop below iterates *runs*, not bytes.
    """
    n = len(data)
    if n == 0:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    boundaries = np.flatnonzero(np.diff(arr)) + 1
    starts = np.empty(len(boundaries) + 1, dtype=np.int64)
    starts[0] = 0
    starts[1:] = boundaries
    lengths = np.diff(np.append(starts, n))

    out = bytearray()
    literal_start = 0

    def flush_literals(end: int) -> None:
        start = literal_start
        while start < end:
            chunk = min(_MAX_LITERAL, end - start)
            out.append(chunk - 1)
            out.extend(data[start : start + chunk])
            start += chunk

    for start, length in zip(starts.tolist(), lengths.tolist()):
        if length < 3:
            continue  # short runs travel inside the literal region
        flush_literals(start)
        value = data[start]
        remaining = length
        pos = start
        while remaining >= 3:
            repeat = min(_MAX_RUN, remaining)
            out.append(0x80 + repeat - 2)
            out.append(value)
            pos += repeat
            remaining -= repeat
        literal_start = pos  # a 1-2 byte tail joins the next literal region
    flush_literals(n)
    return bytes(out)


def rle_decode(data: bytes) -> bytes:
    """Inverse of :func:`rle_encode`; raises CodecError on truncation."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        control = data[i]
        i += 1
        if control < 0x80:
            count = control + 1
            if i + count > n:
                raise CodecError("truncated RLE literal run")
            out.extend(data[i : i + count])
            i += count
        else:
            if i >= n:
                raise CodecError("truncated RLE repeat run")
            out.extend(bytes([data[i]]) * (control - 0x80 + 2))
            i += 1
    return bytes(out)
