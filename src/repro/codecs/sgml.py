"""A small XML-like markup substrate (for the XML-streaming service).

The thesis notes gateway-proxy experiments on "XML streaming" service
entities (section 1.2.1).  Streaming a document element-by-element needs a
parser that understands element boundaries, so this module implements a
deliberately small, well-specified markup dialect from scratch:

* elements: ``<name attr="value">children</name>`` and ``<name/>``;
* text content between elements;
* names: ``[A-Za-z_][A-Za-z0-9_.-]*``; attribute values are double-quoted
  and may contain anything but ``"`` and ``<``;
* the five XML character entities (``&amp; &lt; &gt; &quot; &apos;``) in
  text and attribute values;
* no processing instructions, comments, CDATA, or namespaces.

``parse`` enforces well-formedness (matching tags, single root);
``Element.serialize`` is its exact inverse for parsed input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import CodecError

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")
_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}
_REVERSE_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}


def escape_text(text: str) -> str:
    """Escape ``& < >`` for text content."""
    return "".join(_REVERSE_TEXT.get(ch, ch) for ch in text)


def escape_attr(value: str) -> str:
    """Escape text for use inside a double-quoted attribute value."""
    return escape_text(value).replace('"', "&quot;")


def _unescape(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end < 0:
            raise CodecError(f"unterminated entity at offset {i}")
        name = text[i + 1 : end]
        if name not in _ENTITIES:
            raise CodecError(f"unknown entity &{name};")
        out.append(_ENTITIES[name])
        i = end + 1
    return "".join(out)


@dataclass
class Element:
    """A markup element: name, attributes, ordered children (str | Element)."""

    name: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["Element | str"] = field(default_factory=list)

    def __post_init__(self):
        if not _NAME_RE.fullmatch(self.name):
            raise CodecError(f"illegal element name {self.name!r}")
        for attr in self.attrs:
            if not _NAME_RE.fullmatch(attr):
                raise CodecError(f"illegal attribute name {attr!r}")

    # -- construction helpers ------------------------------------------------------

    def add(self, child: "Element | str") -> "Element":
        """Append a child (element or text); returns self for chaining."""
        self.children.append(child)
        return self

    def elements(self) -> list["Element"]:
        """The element (non-text) children, in order."""
        return [c for c in self.children if isinstance(c, Element)]

    def text(self) -> str:
        """Concatenated text content, depth first."""
        parts: list[str] = []
        for child in self.children:
            parts.append(child if isinstance(child, str) else child.text())
        return "".join(parts)

    def find(self, name: str) -> "Element | None":
        """The first direct child element named ``name``, or None."""
        for child in self.elements():
            if child.name == name:
                return child
        return None

    # -- serialisation ----------------------------------------------------------------

    def serialize(self) -> str:
        """Render this subtree in the wire dialect."""
        attrs = "".join(f' {k}="{escape_attr(v)}"' for k, v in self.attrs.items())
        if not self.children:
            return f"<{self.name}{attrs}/>"
        inner = "".join(
            escape_text(c) if isinstance(c, str) else c.serialize()
            for c in self.children
        )
        return f"<{self.name}{attrs}>{inner}</{self.name}>"

    def size_bytes(self) -> int:
        """UTF-8 size of the serialised form (the Payload protocol)."""
        return len(self.serialize().encode("utf-8"))

    def clone(self) -> "Element":
        """Deep copy via serialise/parse."""
        return parse(self.serialize())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.name == other.name
            and self.attrs == other.attrs
            and self.children == other.children
        )


class _Parser:
    def __init__(self, source: str):
        self._source = source
        self._pos = 0

    def parse_document(self) -> Element:
        self._skip_whitespace()
        root = self._parse_element()
        self._skip_whitespace()
        if self._pos != len(self._source):
            raise CodecError(f"trailing content after the root element (offset {self._pos})")
        return root

    def _skip_whitespace(self) -> None:
        while self._pos < len(self._source) and self._source[self._pos].isspace():
            self._pos += 1

    def _fail(self, message: str) -> CodecError:
        return CodecError(f"{message} (offset {self._pos})")

    def _parse_element(self) -> Element:
        source = self._source
        if self._pos >= len(source) or source[self._pos] != "<":
            raise self._fail("expected '<'")
        self._pos += 1
        match = _NAME_RE.match(source, self._pos)
        if not match:
            raise self._fail("expected an element name")
        name = match.group()
        self._pos = match.end()
        attrs = self._parse_attrs()
        if source.startswith("/>", self._pos):
            self._pos += 2
            return Element(name, attrs)
        if self._pos >= len(source) or source[self._pos] != ">":
            raise self._fail("expected '>' or '/>'")
        self._pos += 1
        element = Element(name, attrs)
        while True:
            if self._pos >= len(source):
                raise self._fail(f"unclosed element <{name}>")
            if source.startswith("</", self._pos):
                self._pos += 2
                match = _NAME_RE.match(source, self._pos)
                if not match or match.group() != name:
                    raise self._fail(f"mismatched closing tag for <{name}>")
                self._pos = match.end()
                if self._pos >= len(source) or source[self._pos] != ">":
                    raise self._fail("expected '>' after closing tag name")
                self._pos += 1
                return element
            if source[self._pos] == "<":
                element.children.append(self._parse_element())
                continue
            end = source.find("<", self._pos)
            if end < 0:
                raise self._fail(f"unclosed element <{name}>")
            text = _unescape(source[self._pos : end])
            if text:
                element.children.append(text)
            self._pos = end

    def _parse_attrs(self) -> dict[str, str]:
        source = self._source
        attrs: dict[str, str] = {}
        while True:
            self._skip_whitespace()
            if self._pos >= len(source):
                raise self._fail("unexpected end of input inside a tag")
            if source[self._pos] in "/>":
                return attrs
            match = _NAME_RE.match(source, self._pos)
            if not match:
                raise self._fail("expected an attribute name")
            name = match.group()
            self._pos = match.end()
            if self._pos >= len(source) or source[self._pos] != "=":
                raise self._fail(f"attribute {name!r} lacks '='")
            self._pos += 1
            if self._pos >= len(source) or source[self._pos] != '"':
                raise self._fail(f"attribute {name!r} value must be double-quoted")
            self._pos += 1
            end = source.find('"', self._pos)
            if end < 0:
                raise self._fail(f"unterminated value for attribute {name!r}")
            raw = source[self._pos : end]
            if "<" in raw:
                raise self._fail(f"'<' in attribute {name!r} value")
            if name in attrs:
                raise self._fail(f"duplicate attribute {name!r}")
            attrs[name] = _unescape(raw)
            self._pos = end + 1


def parse(source: str) -> Element:
    """Parse a document; raises :class:`CodecError` on malformed input."""
    if not isinstance(source, str):
        raise CodecError(f"parse expects str, got {type(source).__name__}")
    return _Parser(source).parse_document()
