"""The Text Compressor's codec: LZSS + canonical Huffman in a container.

Container format::

    magic  b"MGTC"
    mode   1 byte: 0 = stored (raw), 1 = LZSS, 2 = LZSS + Huffman
    body

``compress`` tries the full pipeline and falls back to cheaper modes when a
stage expands the data, so the codec never loses more than the 5-byte
header — incompressible inputs stay (almost) intact, compressible English
text typically shrinks by the ~75 % the thesis attributes to its Text
Compressor streamlet.
"""

from __future__ import annotations

from repro.codecs.huffman import huffman_decode, huffman_encode
from repro.codecs.lz77 import lzss_compress, lzss_decompress
from repro.errors import CodecError

_MAGIC = b"MGTC"
_MODE_STORED = 0
_MODE_LZSS = 1
_MODE_LZSS_HUFF = 2


class TextCodec:
    """Stateless compressor/decompressor pair used by the text streamlets."""

    def __init__(self, *, max_chain: int = 32):
        if max_chain < 1:
            raise CodecError("max_chain must be >= 1")
        self._max_chain = max_chain

    def compress(self, data: bytes) -> bytes:
        """Pack ``data`` into the MGTC container, picking the smallest mode."""
        if not isinstance(data, bytes | bytearray):
            raise CodecError(f"TextCodec compresses bytes, got {type(data).__name__}")
        data = bytes(data)
        lz = lzss_compress(data, max_chain=self._max_chain)
        best_mode, best = (_MODE_LZSS, lz) if len(lz) < len(data) else (_MODE_STORED, data)
        packed = huffman_encode(lz)
        if len(packed) < len(best):
            best_mode, best = _MODE_LZSS_HUFF, packed
        return _MAGIC + bytes([best_mode]) + best

    def decompress(self, data: bytes) -> bytes:
        """Inverse of :meth:`compress`; raises CodecError on bad containers."""
        if len(data) < 5 or data[:4] != _MAGIC:
            raise CodecError("not a MobiGATE text-codec container")
        mode = data[4]
        body = data[5:]
        if mode == _MODE_STORED:
            return body
        if mode == _MODE_LZSS:
            return lzss_decompress(body)
        if mode == _MODE_LZSS_HUFF:
            return lzss_decompress(huffman_decode(body))
        raise CodecError(f"unknown text-codec mode {mode}")

    def ratio(self, data: bytes) -> float:
        """compressed size / original size (1.0+ means no gain)."""
        if not data:
            return 1.0
        return len(self.compress(data)) / len(data)
