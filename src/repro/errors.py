"""Exception hierarchy for the MobiGATE reproduction.

Every package raises subclasses of :class:`MobiGateError` so callers can
catch middleware failures without masking programming errors.  The hierarchy
mirrors the system inventory: MIME typing, MCL compilation, semantic
analysis, runtime coordination, and the client side each get a branch.
"""

from __future__ import annotations


class MobiGateError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# MIME type system
# ---------------------------------------------------------------------------


class MimeError(MobiGateError):
    """Base class for MIME type-system errors."""


class MediaTypeParseError(MimeError):
    """A media-type string could not be parsed (bad syntax)."""


class HeaderError(MimeError):
    """A MIME header field is malformed or violates RFC-style constraints."""


class UnknownMediaTypeError(MimeError):
    """A media type is not present in the type registry."""


class TypeHierarchyError(MimeError):
    """Registering a subtype relation would corrupt the hierarchy."""


# ---------------------------------------------------------------------------
# MCL — lexing / parsing / compilation
# ---------------------------------------------------------------------------


class MclError(MobiGateError):
    """Base class for MCL language errors."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}" + (f", col {column})" if column is not None else ")")
        super().__init__(message)


class MclLexError(MclError):
    """Unrecognised character or malformed token in MCL source."""


class MclParseError(MclError):
    """MCL source violates the grammar (Figs 4-2..4-5 of the thesis)."""


class MclTypeError(MclError):
    """A connection violates port-type compatibility (section 4.4.1)."""


class MclCompileError(MclError):
    """Semantic errors found while deriving a configuration table."""


class MclNameError(MclCompileError):
    """Reference to an undefined streamlet/channel/stream, or a redefinition."""


# ---------------------------------------------------------------------------
# Semantic model (chapter 5 analyses)
# ---------------------------------------------------------------------------


class SemanticError(MobiGateError):
    """Base class for architecture-consistency violations."""


class FeedbackLoopError(SemanticError):
    """The composition graph contains a cycle (section 5.2.1)."""


class OpenCircuitError(SemanticError):
    """An intermediate output port is left unconnected (section 5.2.2)."""


class MutualExclusionError(SemanticError):
    """Two mutually exclusive streamlets share a path (section 5.2.3)."""


class DependencyError(SemanticError):
    """A mutually dependent streamlet is missing (section 5.2.4)."""


class PreorderError(SemanticError):
    """Streamlets appear in the wrong deployment order (section 5.2.5)."""


# ---------------------------------------------------------------------------
# Runtime (chapters 3 and 6)
# ---------------------------------------------------------------------------


class RuntimeFault(MobiGateError):
    """Base class for server-side runtime errors."""


class MessagePoolError(RuntimeFault):
    """Unknown message identifier, or a double-release of a pooled message."""


class QueueClosedError(RuntimeFault):
    """Post/fetch attempted on a channel queue that has been closed."""


class ChannelError(RuntimeFault):
    """Illegal channel operation (category/connection violations)."""


class LifecycleError(RuntimeFault):
    """A streamlet lifecycle transition is illegal from its current state."""


class CompositionError(RuntimeFault):
    """A runtime composition primitive (connect/insert/remove) failed."""


class DirectoryError(RuntimeFault):
    """Lookup or registration failure in the streamlet directory."""


class ReconfigurationError(RuntimeFault):
    """A reconfiguration could not be carried out safely."""


class ReconfigValidationError(ReconfigurationError):
    """A staged action batch failed its dry-run against the shadow topology."""


class ReconfigAbortedError(ReconfigurationError):
    """A transaction failed mid-apply; the prior topology was restored.

    ``cause`` carries the exception that aborted the apply phase and
    ``failed_action`` the 0-based index of the action that raised.
    """

    def __init__(self, message: str, *, cause: Exception | None = None,
                 failed_action: int | None = None):
        super().__init__(message)
        self.cause = cause
        self.failed_action = failed_action


class EventError(RuntimeFault):
    """Bad event category or malformed context event."""


# ---------------------------------------------------------------------------
# Client side (section 3.4)
# ---------------------------------------------------------------------------


class ClientError(MobiGateError):
    """Base class for MobiGATE-client errors."""


class PeerNotFoundError(ClientError):
    """No client streamlet matches the peer id carried by a message."""


class DistributorError(ClientError):
    """The message distributor could not parse or route a message."""


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


class TelemetryError(MobiGateError):
    """Invalid metric registration or use of the telemetry subsystem."""


# ---------------------------------------------------------------------------
# Fault injection / recovery (repro.faults)
# ---------------------------------------------------------------------------


class FaultPlanError(MobiGateError):
    """A fault plan is malformed or names an unknown injection target."""


class ConservationError(MobiGateError):
    """The message-conservation invariant does not hold for a stream."""


# ---------------------------------------------------------------------------
# Codecs / network emulation
# ---------------------------------------------------------------------------


class CodecError(MobiGateError):
    """Encoding or decoding failed in one of the codec substrates."""


class NetSimError(MobiGateError):
    """Invalid configuration or use of the network emulator."""


class WorkloadError(MobiGateError):
    """Invalid workload specification."""


# ---------------------------------------------------------------------------
# Durable state plane (repro.store)
# ---------------------------------------------------------------------------


class StoreError(MobiGateError):
    """A durable state store refused an operation or is misconfigured."""
