"""The MobiGATE event taxonomy (Table 6-1) and the event catalog.

Client variations are classified into four categories, each with a fixed
set of predefined events.  MobiGATE events are deliberately *not*
parameterised — they carry no data and exist purely to trigger
reconfiguration (section 6.4).

The thesis lists its future work (§8.2.1) as "dynamic inclusion of new
event objects"; :class:`EventCatalog` implements that extension — stream
authors may register custom events into a category at runtime, and the MCL
compiler validates ``when`` clauses against the catalog.
"""

from __future__ import annotations

from enum import IntEnum

from repro.errors import EventError


class EventCategory(IntEnum):
    """The four axes along which clients vary (Table 6-1)."""

    SYSTEM_COMMAND = 0
    NETWORK_VARIATION = 1
    HARDWARE_VARIATION = 2
    SOFTWARE_VARIATION = 3


#: Table 6-1 — the predefined event list per category.
PREDEFINED_EVENTS: dict[str, EventCategory] = {
    # System Command
    "PAUSE": EventCategory.SYSTEM_COMMAND,
    "RESUME": EventCategory.SYSTEM_COMMAND,
    "END": EventCategory.SYSTEM_COMMAND,
    # Network Variation
    "LOW_BANDWIDTH": EventCategory.NETWORK_VARIATION,
    "HIGH_BANDWIDTH": EventCategory.NETWORK_VARIATION,
    "HIGH_LATENCY": EventCategory.NETWORK_VARIATION,
    "HIGH_LOSS": EventCategory.NETWORK_VARIATION,
    # Hardware Variation
    "LOW_ENERGY": EventCategory.HARDWARE_VARIATION,
    "LOW_GRAYS": EventCategory.HARDWARE_VARIATION,
    "SMALL_SCREEN": EventCategory.HARDWARE_VARIATION,
    "LOW_MEMORY": EventCategory.HARDWARE_VARIATION,
    # Software Variation
    "FORMAT_UNSUPPORTED": EventCategory.SOFTWARE_VARIATION,
    "CODEC_UNAVAILABLE": EventCategory.SOFTWARE_VARIATION,
    # "events may be caused ... by exceptions in streamlet executions" (§3.3.5)
    "STREAMLET_FAULT": EventCategory.SOFTWARE_VARIATION,
    # recovery-plane escalations (repro.faults): a message exhausted its
    # retry budget, or a repeatedly-failing optional streamlet was bypassed
    # — both scriptable via MCL ``when`` handlers
    "RETRY_EXHAUSTED": EventCategory.SOFTWARE_VARIATION,
    "STREAMLET_BYPASSED": EventCategory.SOFTWARE_VARIATION,
    # transactional-reconfiguration escalations (repro.runtime.reconfig):
    # a staged batch was rejected by validation, an apply failed and was
    # rolled back, or a freshly committed epoch flunked its probation
    # window and was reverted to the last known good composition
    "RECONFIG_COMMITTED": EventCategory.SOFTWARE_VARIATION,
    "RECONFIG_REJECTED": EventCategory.SOFTWARE_VARIATION,
    "RECONFIG_ROLLED_BACK": EventCategory.SOFTWARE_VARIATION,
}

#: The stream description of Figure 4-8 writes ``LOW_GRAY`` where Table 6-1
#: says ``LOW_GRAYS``; we accept the thesis's own alias.
EVENT_ALIASES: dict[str, str] = {"LOW_GRAY": "LOW_GRAYS"}


class ContextEvent:
    """An unparameterised event object (Figure 6-5).

    Attributes mirror the thesis: ``event_id`` (the name), ``category``,
    and ``source`` — which stream application the event is scoped to, or
    ``None`` for a broadcast.
    """

    __slots__ = ("event_id", "category", "source")

    def __init__(self, event_id: str, category: EventCategory, source: str | None = None):
        self.event_id = event_id
        self.category = EventCategory(category)
        self.source = source

    def __repr__(self) -> str:
        scope = f", source={self.source}" if self.source else ""
        return f"ContextEvent({self.event_id}, {self.category.name}{scope})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContextEvent):
            return NotImplemented
        return (
            self.event_id == other.event_id
            and self.category == other.category
            and self.source == other.source
        )

    def __hash__(self) -> int:
        return hash((self.event_id, self.category, self.source))


class EventCatalog:
    """The known event vocabulary, extensible at runtime (§8.2.1)."""

    def __init__(self, *, include_predefined: bool = True):
        self._events: dict[str, EventCategory] = (
            dict(PREDEFINED_EVENTS) if include_predefined else {}
        )

    def register(self, name: str, category: EventCategory) -> None:
        """Add a custom event; re-registration must not move categories."""
        name = self.canonical(name)
        if not name or not name.replace("_", "").isalnum():
            raise EventError(f"illegal event name {name!r}")
        existing = self._events.get(name)
        if existing is not None and existing != category:
            raise EventError(
                f"event {name} already registered in category {existing.name}"
            )
        self._events[name] = EventCategory(category)

    @staticmethod
    def canonical(name: str) -> str:
        name = name.strip().upper()
        return EVENT_ALIASES.get(name, name)

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) in self._events

    def category_of(self, name: str) -> EventCategory:
        """The category of a (canonicalised) event name; EventError if unknown."""
        canonical = self.canonical(name)
        try:
            return self._events[canonical]
        except KeyError:
            raise EventError(f"unknown event {name!r}") from None

    def make(self, name: str, source: str | None = None) -> ContextEvent:
        """Build a ContextEvent from the catalog (canonical name + category)."""
        canonical = self.canonical(name)
        return ContextEvent(canonical, self.category_of(canonical), source)

    def names(self) -> frozenset[str]:
        """Every registered canonical event name."""
        return frozenset(self._events)


#: Process-wide default catalog (predefined events only unless extended).
DEFAULT_CATALOG = EventCatalog()
