"""repro.faults — fault injection and recovery for the streamlet plane.

Three cooperating pieces:

* :mod:`repro.faults.plan` — seeded, replayable descriptions of what
  should break (:class:`FaultPlan`);
* :mod:`repro.faults.inject` — lands a plan on a live stream without
  touching streamlet code (:class:`FaultInjector`);
* :mod:`repro.faults.supervisor` — declarative recovery: bounded retry
  with backoff, dead-letter pool, bypass of failing optional streamlets
  (:class:`Supervisor`, :class:`RecoveryPolicy`);
* :mod:`repro.faults.invariant` — the message-conservation check that
  makes "no message was lost" a provable statement instead of a hope.

See ``docs/fault-tolerance.md`` for the end-to-end story.
"""

from repro.faults.inject import FaultInjector
from repro.faults.invariant import (
    ConservationReport,
    assert_conservation,
    check_conservation,
)
from repro.faults.plan import (
    ChannelFault,
    FaultPlan,
    HandoffStorm,
    InjectedFault,
    LinkFault,
    StreamletFault,
    WorkerKill,
)
from repro.faults.supervisor import (
    DeadLetter,
    DeadLetterPool,
    RecoveryPolicy,
    Supervisor,
)

__all__ = [
    "ChannelFault",
    "ConservationReport",
    "DeadLetter",
    "DeadLetterPool",
    "FaultInjector",
    "FaultPlan",
    "HandoffStorm",
    "InjectedFault",
    "LinkFault",
    "RecoveryPolicy",
    "StreamletFault",
    "Supervisor",
    "WorkerKill",
    "assert_conservation",
    "check_conservation",
]
