"""The injection plane: land a :class:`~repro.faults.plan.FaultPlan` on a
live system without touching streamlet code.

Streamlet faults wrap the instance's bound ``process`` at the ``_Node``
boundary (an instance attribute shadowing the method, removed again by
:meth:`FaultInjector.disarm`); channel faults shadow ``Channel.fetch`` or
close the queue; link, handoff, and worker faults drive the public hooks
the netsim and scheduler layers expose (``begin_outage``, ``storm``,
``kill_worker``).  Scripted faults are virtual-time aware: call
:meth:`FaultInjector.tick` as the clock advances and each fault fires
exactly once when its ``at`` passes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import CompositionError, FaultPlanError
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.handoff import HandoffManager
    from repro.netsim.link import WirelessLink
    from repro.runtime.scheduler import ThreadedScheduler
    from repro.runtime.stream import RuntimeStream
    from repro.util.clock import Clock


class FaultInjector:
    """Arms a fault plan against a stream (and optional netsim/scheduler).

    Typical use::

        injector = FaultInjector(plan, link=link, scheduler=scheduler)
        injector.arm(stream)
        ...  # drive traffic; call injector.tick() as time advances
        injector.disarm()
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        clock: "Clock | None" = None,
        scheduler: "ThreadedScheduler | None" = None,
        link: "WirelessLink | None" = None,
        handoff: "HandoffManager | None" = None,
    ):
        self.plan = plan
        self._clock = clock
        self._scheduler = scheduler
        self._link = link
        self._handoff = handoff
        self._stream: "RuntimeStream | None" = None
        #: streamlets whose ``process`` is currently shadowed
        self._wrapped: list[object] = []
        #: channels whose ``fetch`` is currently shadowed (stalls)
        self._stalled: dict[str, object] = {}
        #: (release_at, channel) for stalls with a duration
        self._stall_heals: list[tuple[float, object]] = []
        #: (restore_at, link, saved_bandwidth) for bandwidth collapses
        self._collapse_heals: list[tuple[float, "WirelessLink", float]] = []
        self.applied = 0

    def _record(self, category: str, **detail) -> None:
        """Note a scripted action in the armed stream's flight recorder."""
        stream = self._stream
        if stream is not None and stream.tm.enabled:
            stream.tm.recorder.record(category, stream=stream.name, **detail)

    # -- arming ------------------------------------------------------------------------

    def arm(self, stream: "RuntimeStream") -> None:
        """Wrap the plan's streamlet faults into the stream's nodes."""
        if self._stream is not None:
            raise FaultPlanError("injector already armed; disarm first")
        self._stream = stream
        if self._clock is None:
            self._clock = stream._clock
        by_instance: dict[str, list] = {}
        for fault in self.plan.streamlet_faults:
            by_instance.setdefault(fault.instance, []).append(fault)
        for instance, faults in by_instance.items():
            try:
                node = stream.node(instance)
            except CompositionError as exc:
                raise FaultPlanError(
                    f"fault plan targets unknown instance {instance!r}"
                ) from exc
            self._wrap_process(node.streamlet, faults)
        self.tick()  # apply anything already due at arm time

    def _wrap_process(self, streamlet, faults) -> None:
        original = streamlet.process
        rng = self.plan.rng
        # capture at wrap time: the wrapper may outlive disarm's _stream reset
        tm = self._stream.tm
        stream_name = self._stream.name
        recorder = tm.recorder if tm.enabled else None

        def faulting_process(port, message, ctx):
            for fault in faults:
                if fault.should_fire(rng):
                    if recorder is not None:
                        recorder.record(
                            "fault_injected", stream=stream_name,
                            instance=fault.instance, mode=fault.mode,
                        )
                    raise fault.make_exception()
            return original(port, message, ctx)

        streamlet.process = faulting_process
        self._wrapped.append(streamlet)

    def disarm(self) -> None:
        """Remove process wrappers and release surviving stalls.

        Closed queues, expired outages, and killed workers are *damage*,
        not instrumentation — they stay.
        """
        for streamlet in self._wrapped:
            streamlet.__dict__.pop("process", None)
        self._wrapped.clear()
        for channel in self._stalled.values():
            channel.__dict__.pop("fetch", None)
        self._stalled.clear()
        self._stall_heals.clear()
        self._stream = None

    # -- scripted faults -----------------------------------------------------------------

    def tick(self, now: float | None = None) -> int:
        """Apply every scripted fault whose ``at`` has passed; heal expiries.

        Returns the number of actions taken.  Idempotent per fault: each
        applies exactly once no matter how often ``tick`` runs.
        """
        if now is None:
            now = self._clock.now() if self._clock is not None else 0.0
        actions = 0
        actions += self._tick_channels(now)
        actions += self._tick_links(now)
        actions += self._tick_handoffs(now)
        actions += self._tick_workers(now)
        self.applied += actions
        return actions

    def _tick_channels(self, now: float) -> int:
        actions = 0
        stream = self._stream
        for fault in self.plan.channel_faults:
            if fault.applied or now < fault.at:
                continue
            if stream is None:
                raise FaultPlanError("channel faults need an armed stream")
            try:
                channel = stream.channel(fault.channel)
            except CompositionError as exc:
                raise FaultPlanError(
                    f"fault plan targets unknown channel {fault.channel!r}"
                ) from exc
            if fault.action == "close":
                channel.queue.close()
            else:
                self._stall(channel, now, fault.duration)
            self._record(
                "fault_injected", kind="channel",
                channel=fault.channel, action=fault.action,
            )
            fault.applied = True
            actions += 1
        # stalls past their duration heal themselves
        for release_at, channel in list(self._stall_heals):
            if now >= release_at:
                channel.__dict__.pop("fetch", None)
                self._stalled.pop(channel.name, None)
                self._stall_heals.remove((release_at, channel))
                actions += 1
        return actions

    def _stall(self, channel, now: float, duration: float | None) -> None:
        if channel.name in self._stalled:
            return
        channel.fetch = lambda timeout=0.0: None  # messages park in the queue
        self._stalled[channel.name] = channel
        if duration is not None:
            self._stall_heals.append((now + duration, channel))

    def release_stall(self, channel_name: str) -> bool:
        """Manually heal one stalled channel; False if it was not stalled."""
        channel = self._stalled.pop(channel_name, None)
        if channel is None:
            return False
        channel.__dict__.pop("fetch", None)
        self._stall_heals = [(t, c) for t, c in self._stall_heals if c is not channel]
        return True

    def _tick_links(self, now: float) -> int:
        actions = 0
        link = self._link
        for fault in self.plan.link_faults:
            if not fault.applied and now >= fault.at:
                if link is None:
                    raise FaultPlanError("link faults need a link= at construction")
                if fault.kind == "outage":
                    # begin_outage anchors at clock.now(); in virtual time
                    # the caller advances the clock, so now == clock time
                    link.begin_outage(fault.duration)
                else:
                    self._collapse_heals.append(
                        (fault.at + fault.duration, link, link.bandwidth_bps)
                    )
                    link.set_bandwidth(fault.bandwidth_bps)
                self._record(
                    "fault_injected", kind=f"link_{fault.kind}",
                    duration_seconds=fault.duration,
                )
                fault.applied = True
                actions += 1
        for restore_at, c_link, saved in list(self._collapse_heals):
            if now >= restore_at:
                c_link.set_bandwidth(saved)
                self._collapse_heals.remove((restore_at, c_link, saved))
                actions += 1
        return actions

    def _tick_handoffs(self, now: float) -> int:
        actions = 0
        for storm in self.plan.handoff_storms:
            if storm.applied or now < storm.at:
                continue
            if self._handoff is None:
                raise FaultPlanError("handoff storms need a handoff= at construction")
            self._handoff.storm(storm.interfaces, rounds=storm.rounds)
            self._record(
                "fault_injected", kind="handoff_storm",
                interfaces=list(storm.interfaces), rounds=storm.rounds,
            )
            storm.applied = True
            actions += 1
        return actions

    def _tick_workers(self, now: float) -> int:
        actions = 0
        scheduler = self._scheduler
        for kill in self.plan.worker_kills:
            if not kill.applied and now >= kill.at:
                if scheduler is None:
                    raise FaultPlanError("worker kills need a scheduler= at construction")
                scheduler.kill_worker(kill.instance)
                kill.applied = True
                actions += 1
            if (
                kill.applied
                and not kill.respawned
                and kill.respawn_after is not None
                and now >= kill.at + kill.respawn_after
            ):
                scheduler.ensure_workers()
                kill.respawned = True
                actions += 1
        return actions

    # -- queries ----------------------------------------------------------------------

    def next_due(self) -> float | None:
        """The earliest pending scripted timestamp, or None when drained.

        Lets virtual-time drivers advance the clock straight to the next
        fault instead of polling.
        """
        pending: list[float] = []
        for fault in self.plan.channel_faults:
            if not fault.applied:
                pending.append(fault.at)
        pending.extend(t for t, _ in self._stall_heals)
        for fault in self.plan.link_faults:
            if not fault.applied:
                pending.append(fault.at)
        pending.extend(t for t, _, _ in self._collapse_heals)
        for storm in self.plan.handoff_storms:
            if not storm.applied:
                pending.append(storm.at)
        for kill in self.plan.worker_kills:
            if not kill.applied:
                pending.append(kill.at)
            elif kill.respawn_after is not None and not kill.respawned:
                pending.append(kill.at + kill.respawn_after)
        return min(pending) if pending else None
