"""The message-conservation invariant.

After any schedule — including one with injected faults — every id the
pool ever admitted must be *exactly one* of:

* delivered out of an egress port (``stats.messages_out``),
* absorbed by a streamlet that emitted nothing (``stats.absorbed``),
* parked in a dead-letter pool (``stats.dead_letters``),
* counted in one drop statistic (``queue_drops``,
  ``open_circuit_drops``, ``failure_drops``, ``end_drops``), or
* still resident in the pool (in a channel, mid-process, or awaiting a
  supervisor retry) — the residual term.

Retries are deliberately *not* a terminal category: a retried message is
still in flight and will eventually land in one of the buckets above.
The runtime keeps the buckets disjoint (each release site increments
exactly one statistic), so the identity is a strict equality — any
imbalance is a leak (an id released without being counted, or counted
without being released) and :func:`assert_conservation` turns it into a
:class:`~repro.errors.ConservationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConservationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.stream import RuntimeStream


@dataclass(frozen=True)
class ConservationReport:
    """One snapshot of the lifecycle ledger for a stream."""

    stream: str
    admitted: int
    delivered: int
    absorbed: int
    dead_letters: int
    queue_drops: int
    open_circuit_drops: int
    failure_drops: int
    end_drops: int
    residual: int

    @property
    def accounted(self) -> int:
        """Sum of every terminal bucket plus the pool residual."""
        return (
            self.delivered
            + self.absorbed
            + self.dead_letters
            + self.queue_drops
            + self.open_circuit_drops
            + self.failure_drops
            + self.end_drops
            + self.residual
        )

    @property
    def missing(self) -> int:
        """Positive = leaked ids; negative = double-counted ids."""
        return self.admitted - self.accounted

    @property
    def balanced(self) -> bool:
        return self.missing == 0

    @property
    def lost(self) -> int:
        """Messages that vanished without delivery (the zero-loss check).

        Dead letters do *not* count as lost — they are retained, inspectable,
        and re-injectable; drops are gone.
        """
        return (
            self.queue_drops
            + self.open_circuit_drops
            + self.failure_drops
            + self.end_drops
        )

    def describe(self) -> str:
        """The full ledger as one human-readable line."""
        return (
            f"stream {self.stream}: admitted={self.admitted} = "
            f"delivered={self.delivered} + absorbed={self.absorbed} + "
            f"dead_letters={self.dead_letters} + queue_drops={self.queue_drops} + "
            f"open_circuit_drops={self.open_circuit_drops} + "
            f"failure_drops={self.failure_drops} + end_drops={self.end_drops} + "
            f"residual={self.residual} (missing={self.missing})"
        )


def check_conservation(stream: "RuntimeStream") -> ConservationReport:
    """Snapshot the lifecycle ledger for one stream."""
    stats = stream.stats
    return ConservationReport(
        stream=stream.name,
        admitted=stream.pool.admitted,
        delivered=stats.messages_out,
        absorbed=stats.absorbed,
        dead_letters=stats.dead_letters,
        queue_drops=stats.queue_drops,
        open_circuit_drops=stats.open_circuit_drops,
        failure_drops=stats.failure_drops,
        end_drops=stats.end_drops,
        residual=len(stream.pool),
    )


def _dump_flight(stream: "RuntimeStream", reason: str) -> str:
    """Auto-dump the flight recorder on an invariant failure; '' if disabled.

    The dump turns a red conservation check into a self-explaining trace:
    the artifact holds every recent drop/retry/fault/reconfig event in
    sequence order, so the postmortem starts from *what happened*, not
    from a bare imbalance number.
    """
    recorder = stream.tm.recorder
    if not recorder.enabled:
        return ""
    recorder.record("conservation_violation", stream=stream.name, reason=reason)
    return recorder.dump(stream.name, reason=reason)


def assert_conservation(stream: "RuntimeStream", *, zero_loss: bool = False) -> ConservationReport:
    """Raise :class:`ConservationError` unless the ledger balances.

    With ``zero_loss`` the check also demands that no message fell into a
    drop bucket — the guarantee BK-category chains make when a recovery
    supervisor is attached.  On failure the stream's flight recorder (when
    enabled) is dumped to ``FLIGHT_<stream>.json`` and the artifact path
    rides in the error message.
    """
    report = check_conservation(stream)
    if not report.balanced:
        detail = f"conservation violated: {report.describe()}"
        path = _dump_flight(stream, detail)
        if path:
            detail += f" [flight recorder: {path}]"
        raise ConservationError(detail)
    if zero_loss and report.lost:
        detail = f"zero-loss violated ({report.lost} dropped): {report.describe()}"
        path = _dump_flight(stream, detail)
        if path:
            detail += f" [flight recorder: {path}]"
        raise ConservationError(detail)
    return report
