"""Fault plans: deterministic, seedable descriptions of what should break.

A :class:`FaultPlan` is pure data plus one seeded RNG — it decides *what*
goes wrong and *when*, while :mod:`repro.faults.inject` decides *how* the
decision lands on a live stream.  Keeping the two apart gives the property
the acceptance tests rely on: for a fixed seed and a virtual clock, two
runs of the same plan make bit-identical decisions.

Faults come in two flavours:

* **inline** — :class:`StreamletFault` fires inside ``process()`` (once,
  always, or with probability *p* drawn from the plan's RNG);
* **scripted** — channel stalls/closes, link outages and bandwidth
  collapses, handoff storms, and worker kills carry an ``at`` timestamp
  and are applied by :meth:`~repro.faults.inject.FaultInjector.tick` when
  the (virtual or wall) clock passes it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import FaultPlanError

#: sentinel exception type raised by injected streamlet faults, so tests
#: and supervisors can tell an injected fault from an organic bug
class InjectedFault(RuntimeError):
    """Raised by a streamlet whose process() was made to fail."""


_MODES = ("once", "always", "probability")


@dataclass
class StreamletFault:
    """Make a named instance's ``process()`` raise.

    ``mode``:

    * ``"once"`` — the next ``times`` calls raise, then the instance heals
      (the transient fault a supervisor should retry through);
    * ``"always"`` — every call raises (the hard fault that should end in
      dead-letters or a bypass);
    * ``"probability"`` — each call raises with probability *p*, drawn
      from the plan's seeded RNG.
    """

    instance: str
    mode: str = "once"
    probability: float = 0.0
    times: int = 1
    message: str = ""
    fired: int = 0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise FaultPlanError(f"unknown streamlet-fault mode {self.mode!r}")
        if self.mode == "probability" and not 0.0 < self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.mode == "once" and self.times < 1:
            raise FaultPlanError(f"times must be >= 1, got {self.times}")

    def should_fire(self, rng: random.Random) -> bool:
        """Decide (consuming RNG only in probability mode) and record."""
        if self.mode == "once":
            fire = self.fired < self.times
        elif self.mode == "always":
            fire = True
        else:
            fire = rng.random() < self.probability
        if fire:
            self.fired += 1
        return fire

    def make_exception(self) -> InjectedFault:
        """The exception the wrapped ``process()`` will raise."""
        detail = self.message or f"injected fault in {self.instance}"
        return InjectedFault(detail)


@dataclass
class ChannelFault:
    """Stall (messages stop moving) or close a named channel at ``at``."""

    channel: str
    action: str = "stall"
    at: float = 0.0
    #: stalls only: automatically release after this many seconds (None =
    #: until the injector is told to heal)
    duration: float | None = None
    applied: bool = False

    def __post_init__(self) -> None:
        if self.action not in ("stall", "close"):
            raise FaultPlanError(f"unknown channel-fault action {self.action!r}")
        if self.duration is not None and self.duration <= 0:
            raise FaultPlanError(f"duration must be positive, got {self.duration}")


@dataclass
class LinkFault:
    """Outage or bandwidth collapse on a wireless link at ``at``."""

    kind: str = "outage"
    at: float = 0.0
    duration: float = 1.0
    #: collapse only: the floor the bandwidth drops to
    bandwidth_bps: float = 1_000.0
    applied: bool = False
    healed: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("outage", "collapse"):
            raise FaultPlanError(f"unknown link-fault kind {self.kind!r}")
        if self.duration <= 0:
            raise FaultPlanError(f"duration must be positive, got {self.duration}")
        if self.bandwidth_bps <= 0:
            raise FaultPlanError(f"bandwidth must be positive, got {self.bandwidth_bps}")


@dataclass
class HandoffStorm:
    """Rapid interface alternation through a HandoffManager at ``at``."""

    interfaces: tuple[str, ...] = ()
    at: float = 0.0
    rounds: int = 1
    applied: bool = False

    def __post_init__(self) -> None:
        if len(self.interfaces) < 2:
            raise FaultPlanError("a handoff storm needs at least two interfaces")
        if self.rounds < 1:
            raise FaultPlanError(f"rounds must be >= 1, got {self.rounds}")


@dataclass
class WorkerKill:
    """Kill a ThreadedScheduler worker at ``at``; optionally respawn later."""

    instance: str
    at: float = 0.0
    #: respawn via ensure_workers() this many seconds after the kill
    respawn_after: float | None = None
    applied: bool = False
    respawned: bool = False

    def __post_init__(self) -> None:
        if self.respawn_after is not None and self.respawn_after < 0:
            raise FaultPlanError(
                f"respawn_after must be >= 0, got {self.respawn_after}"
            )


@dataclass
class FaultPlan:
    """A seeded, replayable schedule of faults.

    Build one with the fluent helpers (each returns the spec it added)::

        plan = FaultPlan(seed=7)
        plan.fail_streamlet("tc", mode="once")
        plan.stall_channel("c1", at=0.5, duration=1.0)
        plan.link_outage(at=1.0, duration=0.5)
        plan.handoff_storm(("wavelan", "gsm"), at=2.0, rounds=3)
        plan.kill_worker("g2j", at=0.1, respawn_after=0.2)
    """

    seed: int = 0
    streamlet_faults: list[StreamletFault] = field(default_factory=list)
    channel_faults: list[ChannelFault] = field(default_factory=list)
    link_faults: list[LinkFault] = field(default_factory=list)
    handoff_storms: list[HandoffStorm] = field(default_factory=list)
    worker_kills: list[WorkerKill] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    # -- fluent builders -----------------------------------------------------------

    def fail_streamlet(self, instance: str, **kwargs) -> StreamletFault:
        """Script a ``process()`` fault for one instance."""
        fault = StreamletFault(instance, **kwargs)
        self.streamlet_faults.append(fault)
        return fault

    def stall_channel(self, channel: str, **kwargs) -> ChannelFault:
        """Script a channel stall (messages stop being fetched)."""
        fault = ChannelFault(channel, action="stall", **kwargs)
        self.channel_faults.append(fault)
        return fault

    def close_channel(self, channel: str, *, at: float = 0.0) -> ChannelFault:
        """Script a hard channel close (posts start raising)."""
        fault = ChannelFault(channel, action="close", at=at)
        self.channel_faults.append(fault)
        return fault

    def link_outage(self, *, at: float = 0.0, duration: float = 1.0) -> LinkFault:
        """Script a full link outage window."""
        fault = LinkFault(kind="outage", at=at, duration=duration)
        self.link_faults.append(fault)
        return fault

    def link_collapse(
        self, *, at: float = 0.0, duration: float = 1.0, bandwidth_bps: float = 1_000.0
    ) -> LinkFault:
        """Script a bandwidth collapse (restored after ``duration``)."""
        fault = LinkFault(
            kind="collapse", at=at, duration=duration, bandwidth_bps=bandwidth_bps
        )
        self.link_faults.append(fault)
        return fault

    def handoff_storm(
        self, interfaces: tuple[str, ...], *, at: float = 0.0, rounds: int = 1
    ) -> HandoffStorm:
        """Script a rapid alternation across wireless interfaces."""
        storm = HandoffStorm(tuple(interfaces), at=at, rounds=rounds)
        self.handoff_storms.append(storm)
        return storm

    def kill_worker(
        self, instance: str, *, at: float = 0.0, respawn_after: float | None = None
    ) -> WorkerKill:
        """Script a scheduler-worker kill (and optional respawn)."""
        kill = WorkerKill(instance, at=at, respawn_after=respawn_after)
        self.worker_kills.append(kill)
        return kill

    # -- queries --------------------------------------------------------------------

    def faults_for(self, instance: str) -> list[StreamletFault]:
        """The inline faults targeting one streamlet instance."""
        return [f for f in self.streamlet_faults if f.instance == instance]

    def reset(self) -> None:
        """Rewind the plan (and its RNG) so the same schedule replays."""
        self.rng = random.Random(self.seed)
        for fault in self.streamlet_faults:
            fault.fired = 0
        for fault in self.channel_faults:
            fault.applied = False
        for fault in self.link_faults:
            fault.applied = False
            fault.healed = False
        for storm in self.handoff_storms:
            storm.applied = False
        for kill in self.worker_kills:
            kill.applied = False
            kill.respawned = False
