"""The recovery plane: declarative policies over the stream's fault hooks.

A :class:`Supervisor` consumes the two signals the runtime exposes —
``RuntimeStream.fault_handler`` (a streamlet's ``process()`` raised) and
``RuntimeStream.drop_hook`` (a message left the pool as a drop) — and
applies a :class:`RecoveryPolicy`:

* **bounded retry** with exponential backoff + jitter: the failed message
  keeps its pool id (the handler returns True, so the scheduler never
  releases it) and is re-posted to the instance's input channel when its
  backoff expires;
* **dead-letter pool** for messages that exhaust their retries — released
  from the message pool into an inspectable :class:`DeadLetterPool`,
  counted in ``stats.dead_letters``, escalated as a ``RETRY_EXHAUSTED``
  context event so scripted ``when`` handlers can react;
* **bypass** of repeatedly-failing *optional* streamlets: the Figure 6-4
  ``extract`` primitive heals the chain around the failing instance and a
  ``STREAMLET_BYPASSED`` event tells the coordination layer.

All timing runs through the stream's clock, so a virtual-time run with a
fixed policy seed replays bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    CompositionError,
    FaultPlanError,
    QueueClosedError,
    ReconfigurationError,
)
from repro.mime.message import MimeMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.events import EventManager
    from repro.runtime.stream import RuntimeStream
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class RecoveryPolicy:
    """What a supervisor does with a failing message / instance."""

    #: re-post a failed message at most this many times before dead-lettering
    max_retries: int = 3
    #: first backoff delay, seconds
    backoff_base: float = 0.05
    #: multiplier per further attempt (attempt n waits base * factor**n)
    backoff_factor: float = 2.0
    #: uniform extra delay in [0, jitter) drawn from the policy RNG
    jitter: float = 0.01
    #: consecutive failures after which an *optional* instance is bypassed
    #: (None disables bypassing entirely)
    bypass_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultPlanError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise FaultPlanError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise FaultPlanError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise FaultPlanError(f"jitter must be >= 0, got {self.jitter}")
        if self.bypass_threshold is not None and self.bypass_threshold < 1:
            raise FaultPlanError(
                f"bypass_threshold must be >= 1, got {self.bypass_threshold}"
            )

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        delay = self.backoff_base * (self.backoff_factor ** attempt)
        if self.jitter > 0:
            delay += rng.uniform(0.0, self.jitter)
        return delay


@dataclass
class DeadLetter:
    """One message parked after recovery gave up on it."""

    msg_id: str
    message: MimeMessage | None
    instance: str
    port: str
    attempts: int
    reason: str


class DeadLetterPool:
    """Ordered, inspectable store of messages recovery gave up on.

    The pool is **bounded**: when ``capacity`` entries are parked, adding
    another evicts the oldest (insertion order) so a sustained fault
    storm cannot grow the gateway's memory without limit.  Evictions are
    counted and reported through ``on_evict`` so the supervisor can keep
    the ledger and the ``mobigate_dead_letters_evicted_total`` counter
    honest.  ``capacity=None`` leaves the pool unbounded (the historical
    behaviour, still right for short deterministic tests).
    """

    def __init__(self, capacity: int | None = None, *, on_evict=None) -> None:
        if capacity is not None and capacity < 1:
            raise FaultPlanError(f"dead-letter capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.on_evict = on_evict
        #: entries displaced by the capacity bound since construction
        self.evicted = 0
        self._entries: dict[str, DeadLetter] = {}

    def add(self, entry: DeadLetter) -> None:
        """Park one entry (keyed by its pool id), evicting the oldest at capacity."""
        self._entries[entry.msg_id] = entry
        while self.capacity is not None and len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            victim = self._entries.pop(oldest)
            self.evicted += 1
            if self.on_evict is not None:
                self.on_evict(victim)

    def take(self, msg_id: str) -> DeadLetter:
        """Remove and return one entry (for manual re-injection)."""
        try:
            return self._entries.pop(msg_id)
        except KeyError:
            raise FaultPlanError(f"no dead letter with id {msg_id!r}") from None

    def ids(self) -> list[str]:
        """The parked pool ids, oldest first."""
        return list(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, msg_id: str) -> bool:
        return msg_id in self._entries


#: a scheduled retry: (due, sequence, msg_id, instance, port)
_Retry = tuple[float, int, str, str, str]


class Supervisor:
    """Applies a :class:`RecoveryPolicy` to one stream's fault signals."""

    def __init__(
        self,
        stream: "RuntimeStream",
        policy: RecoveryPolicy | None = None,
        *,
        events: "EventManager | None" = None,
        optional: tuple[str, ...] = (),
        telemetry: "Telemetry | None" = None,
        seed: int = 0,
        ledger=None,
        scope: str | None = None,
        dead_letter_capacity: int | None = None,
    ):
        from repro.store.ledger import NULL_LEDGER

        self._stream = stream
        self.policy = policy if policy is not None else RecoveryPolicy()
        self._clock = stream._clock
        self._events = events
        #: instances the stream can survive without — only these may be
        #: bypassed (a BK-category transcoder is load-bearing; a cache or
        #: compressor is not)
        self._optional = frozenset(optional)
        self.rng = random.Random(seed)
        #: where durable ledger records land; the scope names this
        #: supervisor's session/stream in them (gateway sessions pass
        #: their routing key, standalone supervisors get the stream name)
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.scope = scope if scope is not None else stream.name
        self.dead_letters = DeadLetterPool(
            dead_letter_capacity, on_evict=self._on_evict
        )
        self._pending: list[_Retry] = []
        self._seq = 0          # tie-breaker keeping equal-due retries FIFO
        self._attempts: dict[str, int] = {}
        self._instance_failures: dict[str, int] = {}
        self.bypassed: list[str] = []
        #: ids observed through the drop signal (queue/ingress drops)
        self.drops_seen: list[str] = []
        self._attached = False
        self._prev_drop_hook = None
        #: a ProbationMonitor watching freshly committed epochs; when set,
        #: every fault this supervisor handles is also counted against the
        #: composition on probation (repro.runtime.reconfig)
        self.probation = None
        if telemetry is not None and telemetry.enabled:
            self._gauge = telemetry.dead_letter_gauge(stream.name)
            self._outcome = lambda o: telemetry.fault_counter(stream.name, o).inc()
            self._evictions = telemetry.dead_letters_evicted_counter(stream.name)
        else:
            self._gauge = None
            self._outcome = None
            self._evictions = None

    # -- wiring -------------------------------------------------------------------

    def attach(self) -> None:
        """Claim the stream's fault/drop hooks (FaultPlanError if taken)."""
        if self._attached:
            raise FaultPlanError("supervisor already attached")
        if self._stream.fault_handler is not None:
            raise FaultPlanError(
                f"stream {self._stream.name} already has a fault handler"
            )
        self._stream.fault_handler = self._on_fault
        self._prev_drop_hook = self._stream.drop_hook
        self._stream.drop_hook = self._on_drop
        self._attached = True

    def detach(self) -> None:
        """Release the hooks; pending retries stay scheduled but unpumped."""
        if not self._attached:
            return
        self._stream.fault_handler = None
        self._stream.drop_hook = self._prev_drop_hook
        self._prev_drop_hook = None
        self._attached = False

    # -- the fault signal ------------------------------------------------------------

    def _on_fault(self, instance: str, port: str, msg_id: str, exc: Exception) -> bool:
        """RuntimeStream.fault_handler: decide the failed id's fate.

        Always returns True — from here on the supervisor owns the pool
        id, whether it ends up retried or dead-lettered.
        """
        failures = self._instance_failures.get(instance, 0) + 1
        self._instance_failures[instance] = failures
        threshold = self.policy.bypass_threshold
        if (
            threshold is not None
            and instance in self._optional
            and failures >= threshold
            and instance not in self.bypassed
        ):
            self._bypass(instance)
            self._dead_letter(
                msg_id, instance, port,
                reason=f"instance bypassed after {failures} failures",
            )
            self._notify_probation(instance)
            return True
        attempt = self._attempts.get(msg_id, 0)
        if attempt < self.policy.max_retries:
            self._attempts[msg_id] = attempt + 1
            due = self._clock.now() + self.policy.delay_for(attempt, self.rng)
            self._pending.append((due, self._seq, msg_id, instance, port))
            self._seq += 1
            if self.ledger.enabled:
                self.ledger.retry_scheduled(
                    self.scope, msg_id, instance=instance, port=port,
                    attempt=attempt + 1, frame=self._frame_of(msg_id),
                )
            tm = self._stream.tm
            if tm.enabled:
                tm.recorder.record(
                    "retry_scheduled", stream=self._stream.name,
                    msg_id=msg_id, instance=instance, attempt=attempt + 1,
                )
            self._notify_probation(instance)
            return True
        self._dead_letter(msg_id, instance, port, reason=f"retries exhausted: {exc}")
        self._notify_probation(instance)
        return True

    def _notify_probation(self, instance: str) -> None:
        """Count the fault against a composition on probation, if any.

        Runs *after* the message's fate is settled (retry scheduled or
        dead-lettered) so a probation rollback never strands the id.
        """
        if self.probation is not None:
            self.probation.note_fault(instance)

    def _on_drop(self, msg_id: str, message: MimeMessage) -> None:
        """RuntimeStream.drop_hook: make drops inspectable."""
        self.drops_seen.append(msg_id)
        self._attempts.pop(msg_id, None)  # a dropped id will never retry
        if self._prev_drop_hook is not None:
            self._prev_drop_hook(msg_id, message)

    # -- dispositions ----------------------------------------------------------------

    def _frame_of(self, msg_id: str) -> bytes | None:
        """Serialise a pooled message for the ledger (None when impossible)."""
        from repro.mime.wire import serialize_message

        try:
            return serialize_message(self._stream.pool.peek(msg_id))
        except Exception:
            return None  # released under us, or an unserialisable body

    def _on_evict(self, victim: DeadLetter) -> None:
        """Account a capacity eviction (ledger, counter, flight recorder)."""
        if self.ledger.enabled:
            self.ledger.dead_letter_evicted(self.scope, victim.msg_id)
        if self._evictions is not None:
            self._evictions.inc()
        if self._gauge is not None:
            self._gauge.set(float(len(self.dead_letters)))
        tm = self._stream.tm
        if tm.enabled:
            tm.recorder.record(
                "dead_letter_evicted", stream=self._stream.name,
                msg_id=victim.msg_id, reason=victim.reason,
            )

    def _dead_letter(self, msg_id: str, instance: str, port: str, *, reason: str) -> None:
        stream = self._stream
        attempts = self._attempts.pop(msg_id, 0)
        frame = self._frame_of(msg_id) if self.ledger.enabled else None
        message = stream.pool.release(msg_id) if msg_id in stream.pool else None
        self.dead_letters.add(DeadLetter(
            msg_id=msg_id, message=message, instance=instance,
            port=port, attempts=attempts, reason=reason,
        ))
        if self.ledger.enabled:
            # settle any pending retry schedule first, then park durably
            self.ledger.retry_settled(self.scope, msg_id)
            self.ledger.dead_letter(
                self.scope, msg_id, stream=stream.name, reason=reason, frame=frame,
            )
        stream.stats.inc("dead_letters")  # fault handlers run on worker threads
        tm = stream.tm
        if tm.enabled:
            tm.forget(msg_id)
            tm.recorder.record(
                "dead_letter", stream=stream.name,
                msg_id=msg_id, instance=instance, attempts=attempts, reason=reason,
            )
        if self._gauge is not None:
            self._gauge.set(float(len(self.dead_letters)))
        if self._outcome is not None:
            self._outcome("exhausted")
        if self._events is not None:
            if tm.enabled:
                tm.recorder.record(
                    "supervisor_escalation", stream=stream.name,
                    event="RETRY_EXHAUSTED", instance=instance,
                )
            self._events.raise_event("RETRY_EXHAUSTED", source=stream.name)
            if tm.enabled:
                # the escalation is the postmortem moment: persist the ring
                tm.recorder.dump(
                    stream.name, reason=f"supervisor escalation: RETRY_EXHAUSTED ({reason})"
                )

    def _bypass(self, instance: str) -> None:
        """Heal the chain around a repeatedly-failing optional instance."""
        try:
            self._stream.extract_streamlet(instance, force=True)
        except (ReconfigurationError, CompositionError):
            # unextractable wiring — or the instance vanished under a
            # concurrently-committed transaction before we got here;
            # either way retries/dead-letters still apply
            return
        self.bypassed.append(instance)
        if self._outcome is not None:
            self._outcome("bypassed")
        tm = self._stream.tm
        if self._events is not None:
            if tm.enabled:
                tm.recorder.record(
                    "supervisor_escalation", stream=self._stream.name,
                    event="STREAMLET_BYPASSED", instance=instance,
                )
            self._events.raise_event("STREAMLET_BYPASSED", source=self._stream.name)
            if tm.enabled:
                tm.recorder.dump(
                    self._stream.name,
                    reason=f"supervisor escalation: STREAMLET_BYPASSED ({instance})",
                )

    # -- the retry pump ---------------------------------------------------------------

    def pump_retries(self, now: float | None = None) -> int:
        """Re-post every retry whose backoff has expired; returns reposts.

        A retry whose target instance/port has gone away (bypassed,
        removed) or whose channel refuses the post is dead-lettered —
        the id must never dangle.
        """
        if now is None:
            now = self._clock.now()
        due = sorted(e for e in self._pending if e[0] <= now)
        if not due:
            return 0
        self._pending = [e for e in self._pending if e[0] > now]
        stream = self._stream
        reposted = 0
        for _due, _seq, msg_id, instance, port in due:
            node = stream._nodes.get(instance)
            channel = node.inputs.get(port) if node is not None else None
            if channel is None:
                self._dead_letter(msg_id, instance, port, reason="retry target detached")
                continue
            try:
                posted = channel.post(msg_id, stream.pool.size_of(msg_id), timeout=0)
            except QueueClosedError:
                posted = False
            if posted:
                stream.stats.inc("retries")
                if self.ledger.enabled:
                    self.ledger.retry_settled(self.scope, msg_id)
                if self._outcome is not None:
                    self._outcome("retried")
                if stream.tm.enabled:
                    stream.tm.recorder.record(
                        "retry", stream=stream.name, msg_id=msg_id, instance=instance
                    )
                reposted += 1
            else:
                self._dead_letter(msg_id, instance, port, reason="retry channel full or closed")
        return reposted

    def next_due(self) -> float | None:
        """Earliest pending retry timestamp, or None."""
        return min((e[0] for e in self._pending), default=None)

    @property
    def pending_retries(self) -> int:
        return len(self._pending)

    def settle(self, scheduler, *, max_cycles: int = 1000) -> int:
        """Pump the scheduler and the retry queue until both are quiet.

        With a :class:`~repro.util.clock.VirtualClock` the clock jumps
        straight to each next backoff expiry, so a whole retry storm
        settles in zero wall time.  Returns total scheduler moves.
        """
        moved = 0
        for _ in range(max_cycles):
            moved += scheduler.pump()
            if not self._pending:
                return moved
            nxt = self.next_due()
            advance_to = getattr(self._clock, "advance_to", None)
            if advance_to is not None and nxt is not None and nxt > self._clock.now():
                advance_to(nxt)
            self.pump_retries()
        raise FaultPlanError(f"supervisor did not settle within {max_cycles} cycles")
