"""repro.gateway — the socket-facing MobiGATE proxy node.

Everything below :mod:`repro.runtime` moves messages between Python
objects; this package puts the runtime behind real TCP sockets, the way
the MobiGATE gateway sits between wireless clients and wired servers:

* a **data plane** (:mod:`repro.gateway.data_plane`): one asyncio
  listener that incrementally parses length-delimited MIME frames
  (:class:`~repro.mime.wire.FrameAssembler`), routes them by
  ``Content-Session``, and enforces end-to-end backpressure — a full
  session parks its readers (pausing socket reads, closing the client's
  TCP window) and sheds expired parks into the conservation ledger;
* a **control plane** (:mod:`repro.gateway.control_plane`): a separate
  loopback server speaking line-delimited JSON for deployment,
  reconfiguration, statistics, and telemetry — management verbs never
  share a listener with data;
* per-session glue (:mod:`repro.gateway.session`) bridging the asyncio
  world to the threaded runtime via the non-blocking
  :meth:`~repro.runtime.message_queue.MessageQueue.try_post` fast path
  and an event-driven egress pump;
* scripted link outages at the socket boundary
  (:mod:`repro.gateway.faults`), reusing :class:`repro.faults.plan.LinkFault`.

See ``docs/gateway.md`` for the architecture walk-through and
``examples/gateway_echo.py`` for a complete loopback run.
"""

from repro.gateway.config import GatewayConfig
from repro.gateway.control_plane import ControlPlane, control_request
from repro.gateway.data_plane import ERROR_HEADER, DataPlane
from repro.gateway.faults import LinkOutageGate
from repro.gateway.server import GatewayHandle, GatewayServer
from repro.gateway.session import (
    ADMITTED,
    CONNECTION_HEADER,
    FULL,
    RETRY,
    SHED,
    GatewaySession,
    OfferTicket,
)

__all__ = [
    "ADMITTED",
    "CONNECTION_HEADER",
    "ControlPlane",
    "DataPlane",
    "ERROR_HEADER",
    "FULL",
    "GatewayConfig",
    "GatewayHandle",
    "GatewayServer",
    "GatewaySession",
    "LinkOutageGate",
    "OfferTicket",
    "RETRY",
    "SHED",
    "control_request",
]
