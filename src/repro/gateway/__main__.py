"""Run a gateway as a standalone OS process: ``python -m repro.gateway``.

The process form exists for the durability story: the crash harness
(:mod:`repro.store.crash`) spawns this module, kills it with ``SIGKILL``
mid-flight, respawns it against the same ledger path, and checks what
recovery restored.  It is equally usable by hand::

    python -m repro.gateway --store /tmp/gw/ledger.wal --backend file --supervise

On boot the process prints exactly one JSON line to stdout::

    {"data": [host, port], "control": [host, port], "recovered": N}

where ``recovered`` counts the sessions crash recovery restored from the
ledger.  Deployment happens over the control API.  ``SIGTERM`` (and
``SIGINT``) trigger the graceful path — :meth:`GatewayServer.drain` —
so a supervised shutdown quiesces sessions and flushes the ledger;
``SIGKILL`` is the crash under test.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.gateway.config import GatewayConfig
from repro.gateway.server import GatewayServer


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Run a MobiGATE gateway process (see module docstring).",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="ledger path; omitting it disables durability",
    )
    parser.add_argument(
        "--backend", default="file", choices=("memory", "file", "sqlite"),
        help="state-store backend (default: file)",
    )
    parser.add_argument(
        "--fsync", default="batch", choices=("always", "batch", "never"),
        help="store fsync policy (default: batch)",
    )
    parser.add_argument(
        "--supervise", action="store_true",
        help="attach a recovery supervisor (retries + dead letters) per session",
    )
    parser.add_argument("--data-port", type=int, default=0)
    parser.add_argument("--control-port", type=int, default=0)
    return parser.parse_args(argv)


async def _amain(args: argparse.Namespace) -> int:
    config = GatewayConfig(
        data_port=args.data_port,
        control_port=args.control_port,
        store_backend=args.backend if args.store else None,
        store_path=args.store,
        store_fsync=args.fsync,
        supervise=args.supervise,
    )
    gateway = GatewayServer(config=config)
    await gateway.start()
    report = gateway.recovery.last_report
    print(
        json.dumps(
            {
                "data": list(gateway.data.address),
                "control": list(gateway.control.address),
                "recovered": report.restored if report is not None else 0,
            }
        ),
        flush=True,
    )
    loop = asyncio.get_running_loop()
    finished = asyncio.Event()

    def _graceful() -> None:
        async def _drain_and_exit() -> None:
            try:
                await gateway.drain()
            finally:
                finished.set()

        loop.create_task(_drain_and_exit())

    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, _graceful)
    await finished.wait()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Synchronous entry point (also used by tests)."""
    return asyncio.run(_amain(_parse_args(argv)))


if __name__ == "__main__":
    sys.exit(main())
