"""Gateway tuning knobs, in one immutable-ish bundle.

Every limit that governs how the data plane treats untrusted bytes lives
here, so a test can shrink them to force the backpressure and rejection
paths, and a deployment can widen them without touching code.  The
defaults are sized for the loopback bench (1k concurrent clients, small
messages); see ``docs/gateway.md`` for how each knob maps onto the
framing/backpressure pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mime.wire import DEFAULT_MAX_FRAME_BYTES, DEFAULT_MAX_HEADER_BYTES


@dataclass
class GatewayConfig:
    """Addresses and limits for both planes of a :class:`GatewayServer`."""

    #: data plane bind address; port 0 asks the OS for an ephemeral port
    data_host: str = "127.0.0.1"
    data_port: int = 0
    #: control plane bind address — localhost by design: management stays
    #: off the data listener (the Parrot dual-router split)
    control_host: str = "127.0.0.1"
    control_port: int = 0

    #: per-frame ceilings enforced by the incremental parser
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES

    #: backpressure: a session whose pool holds this many resident
    #: messages stops admitting; the reader parks (socket reads pause)
    session_ingress_limit: int = 256
    #: how long a parked frame may wait for room before it is shed into
    #: the drop ledger (seconds)
    park_timeout: float = 0.25
    #: cadence of park re-probes (seconds)
    park_poll_interval: float = 0.002

    #: listen(2) backlog for the data plane — sized for connection storms
    #: (the bench opens ~1k loopback clients at once)
    listen_backlog: int = 1024

    #: socket read granularity (bytes per ``reader.read``)
    read_chunk_bytes: int = 64 * 1024
    #: egress frames aimed at a connection whose transport already buffers
    #: this much are dropped (slow-reader protection)
    max_conn_write_buffer: int = 4 * 1024 * 1024

    #: egress pump fallback wakeup (seconds): the pump is event-driven off
    #: the queue waiter; this bounds staleness if a rewire loses the waiter
    egress_wake_timeout: float = 0.05

    #: durable state plane: ledger backend (None disables durability;
    #: "memory" / "file" / "sqlite" per :func:`repro.store.base.open_store`)
    store_backend: str | None = None
    #: ledger path for the durable backends (file / sqlite)
    store_path: str | None = None
    #: store fsync policy ("always" / "batch" / "never")
    store_fsync: str = "batch"
    #: attach a recovery Supervisor (retry + dead-letter plane) to every
    #: deployed session; off by default — supervision claims the stream's
    #: fault hooks, which standalone embedders may want for themselves
    supervise: bool = False
    #: per-session dead-letter pool bound (oldest-first eviction);
    #: None leaves the pool unbounded
    dead_letter_capacity: int | None = 1024
    #: drain(): how long to wait for sessions to quiesce before closing
    drain_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.session_ingress_limit < 1:
            raise ValueError(
                f"session_ingress_limit must be >= 1, got {self.session_ingress_limit}"
            )
        if self.park_timeout < 0:
            raise ValueError(f"park_timeout must be >= 0, got {self.park_timeout}")
        if self.park_poll_interval <= 0:
            raise ValueError(
                f"park_poll_interval must be > 0, got {self.park_poll_interval}"
            )
        if self.read_chunk_bytes < 1:
            raise ValueError(f"read_chunk_bytes must be >= 1, got {self.read_chunk_bytes}")
        if self.egress_wake_timeout <= 0:
            raise ValueError(
                f"egress_wake_timeout must be > 0, got {self.egress_wake_timeout}"
            )
        if self.store_backend not in (None, "memory", "file", "sqlite"):
            raise ValueError(f"unknown store backend {self.store_backend!r}")
        if self.store_backend in ("file", "sqlite") and not self.store_path:
            raise ValueError(
                f"store backend {self.store_backend!r} requires store_path"
            )
        if self.store_fsync not in ("always", "batch", "never"):
            raise ValueError(f"unknown store fsync policy {self.store_fsync!r}")
        if self.dead_letter_capacity is not None and self.dead_letter_capacity < 1:
            raise ValueError(
                f"dead_letter_capacity must be >= 1, got {self.dead_letter_capacity}"
            )
        if self.drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {self.drain_timeout}")
