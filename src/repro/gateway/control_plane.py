"""The control plane: a localhost management API, split from the data path.

The MobiGATE proxy follows the dual-router shape: the data listener faces
clients and moves frames; this second, loopback-only server carries the
management verbs.  The protocol is deliberately minimal — one JSON object
per line in, one JSON object per line out — so ``nc``/``socat``, the
bench, and the tests all speak it without a client library.

Request: ``{"op": <verb>, ...}``.  Response: ``{"ok": true, ...}`` or
``{"ok": false, "error": "..."}``.  Verbs:

``health``
    Liveness + the data plane's address, session and connection counts.
``deploy``
    ``{"mcl": source, "session"?: key, "scheduler"?: "threaded"|"inline",
    "stream"?: name}`` — compile, verify, and deploy an MCL script as a
    new gateway session; returns the routing key clients must put in
    ``Content-Session``.
``reconfigure``
    ``{"event": name, "session"?: key}`` — raise a context event (scoped
    to one session's stream when given); compiled ``when`` handlers run
    as :class:`~repro.runtime.reconfig.ReconfigTransaction` epochs.
``set_param``
    ``{"session": key, "instance": id, "key": k, "value": v}`` — the
    §8.2.1 per-streamlet control interface.
``stats``
    ``{"session": key}`` — stream statistics, gateway boundary counters,
    and the message-conservation ledger (with its ``balanced`` verdict).
``sessions``
    List every deployed session's summary.
``telemetry``
    A JSON snapshot of the metrics registry (empty when telemetry is the
    null twin).
``introspect``
    Live-state snapshot: per-session queue depths/watermarks, worker
    states and utilization, RCU snapshot versions, the session table,
    data-plane connection counts, and flight-recorder health.
``attribution``
    ``{"session"?: key}`` — the per-hop latency attribution tables
    (queue_wait / service / egress histogram summaries) plus the
    component decomposition against the measured end-to-end latency.
``events``
    ``{"cursor"?: n, "limit"?: n}`` — the flight recorder's tail: events
    with seq > cursor, the cursor to resume from, and the eviction gap.
``metrics``
    The registry rendered in Prometheus text format.
``undeploy``
    ``{"session": key}`` — close a session and release its stream.
    Writes the ledger's ``undeployed`` record: crash recovery will not
    restore a deliberately undeployed session.
``dead_letters``
    ``{"session": key}`` — list the session supervisor's parked dead
    letters (id, failing instance/port, attempts, reason) plus the
    pool's capacity bound and eviction count.
``requeue``
    ``{"session": key, "msg_id": id}`` — take one parked dead letter
    and re-inject it through the ordinary admission path (gateway
    headers stripped), without restarting anything.  A session at its
    ingress bound re-parks the entry and reports the refusal.
``recovery``
    ``{"reconcile"?: true}`` — what crash recovery did at boot (per
    session: restored?, frozen in-flight, re-parked, re-injected); with
    ``reconcile`` also folds the ledger and balances the cross-crash
    conservation equation against live residency.
``drain``
    Graceful shutdown: stop intake, wait for sessions to quiesce,
    flush and close the ledger.  Responds first, then drains.

Mutating verbs run in the default executor: deployment takes runtime
locks and joins threads, which must not stall the event loop that is
concurrently moving data frames.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.errors import MobiGateError
from repro.gateway.config import GatewayConfig

#: ceiling on one control line (requests carry whole MCL scripts)
MAX_CONTROL_LINE = 1 << 20


class ControlPlane:
    """The loopback line-delimited-JSON management server."""

    def __init__(self, gateway, config: GatewayConfig):
        self._gateway = gateway
        self._config = config
        self._server: asyncio.AbstractServer | None = None
        self.requests_served = 0
        self.request_failures = 0

    async def start(self) -> None:
        """Bind the loopback management listener."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            self._config.control_host,
            self._config.control_port,
            limit=MAX_CONTROL_LINE,
        )

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("control plane is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Close the listener (in-flight requests finish on their own)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request loop ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_encode({"ok": False, "error": "request line too long"}))
                    return
                if not line:
                    return
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                writer.write(_encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, line: bytes) -> dict:
        self.requests_served += 1
        try:
            request = json.loads(line)
        except ValueError as exc:
            self.request_failures += 1
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(request, dict) or not isinstance(request.get("op"), str):
            self.request_failures += 1
            return {"ok": False, "error": "request must be an object with an 'op' string"}
        op = request["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            self.request_failures += 1
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return await handler(request)
        except MobiGateError as exc:
            self.request_failures += 1
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        except (KeyError, TypeError, ValueError) as exc:
            self.request_failures += 1
            return {"ok": False, "error": f"bad request: {exc}"}

    # -- verbs -------------------------------------------------------------------------

    async def _op_health(self, request: dict) -> dict:
        gateway = self._gateway
        return {
            "ok": True,
            "uptime_s": gateway.uptime(),
            "sessions": len(gateway.sessions),
            "connections": gateway.data.open_connections,
            "data_address": list(gateway.data.address),
            "frame_errors": gateway.data.frame_errors,
            "unrouted_frames": gateway.data.unrouted_frames,
        }

    async def _op_deploy(self, request: dict) -> dict:
        mcl = request["mcl"]
        if not isinstance(mcl, str) or not mcl.strip():
            return {"ok": False, "error": "'mcl' must be a non-empty MCL source string"}
        scheduler = request.get("scheduler", "threaded")
        if scheduler not in ("threaded", "inline", "process"):
            return {"ok": False, "error": f"unknown scheduler {scheduler!r}"}
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(
            None,
            lambda: self._gateway.deploy(
                mcl,
                session_key=request.get("session"),
                stream=request.get("stream"),
                scheduler=scheduler,
            ),
        )
        return {
            "ok": True,
            "session": session.key,
            "stream": session.stream.name,
            "epoch": session.stream.epoch,
        }

    async def _op_reconfigure(self, request: dict) -> dict:
        event = request["event"]
        key = request.get("session")
        loop = asyncio.get_running_loop()
        delivered = await loop.run_in_executor(
            None, lambda: self._gateway.raise_event(event, session_key=key)
        )
        response: dict = {"ok": True, "event": event, "delivered": delivered}
        if key is not None:
            session = self._gateway.route(key)
            if session is not None:
                response["epoch"] = session.stream.epoch
        return response

    async def _op_set_param(self, request: dict) -> dict:
        session = self._require_session(request)
        if isinstance(session, dict):
            return session
        session.stream.set_param(request["instance"], request["key"], request["value"])
        return {"ok": True}

    async def _op_stats(self, request: dict) -> dict:
        session = self._require_session(request)
        if isinstance(session, dict):
            return session
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, lambda: self._gateway.describe(session))

    async def _op_sessions(self, request: dict) -> dict:
        return {
            "ok": True,
            "sessions": [s.describe() for s in self._gateway.sessions.values()],
        }

    async def _op_telemetry(self, request: dict) -> dict:
        telemetry = self._gateway.telemetry
        if not telemetry.enabled:
            return {"ok": True, "enabled": False, "snapshot": {}}
        loop = asyncio.get_running_loop()
        snapshot = await loop.run_in_executor(None, telemetry.snapshot)
        return {"ok": True, "enabled": True, "snapshot": snapshot}

    async def _op_introspect(self, request: dict) -> dict:
        loop = asyncio.get_running_loop()
        state = await loop.run_in_executor(None, self._gateway.introspect)
        return {"ok": True, **state}

    async def _op_attribution(self, request: dict) -> dict:
        from repro.telemetry.attribution import decompose, summarize

        telemetry = self._gateway.telemetry
        if not telemetry.enabled:
            return {"ok": True, "enabled": False, "components": {}, "decomposition": {}}
        key = request.get("session")
        stream_name = None
        if key is not None:
            session = self._gateway.route(key)
            if session is None:
                self.request_failures += 1
                return {"ok": False, "error": f"no session {key!r}"}
            stream_name = session.stream.name
        loop = asyncio.get_running_loop()

        def _gather() -> dict:
            telemetry.flush()
            registry = telemetry.registry
            return {
                "components": summarize(registry, stream=stream_name),
                "decomposition": decompose(registry, stream=stream_name),
            }

        tables = await loop.run_in_executor(None, _gather)
        return {"ok": True, "enabled": True, **tables}

    async def _op_events(self, request: dict) -> dict:
        cursor = request.get("cursor", 0)
        limit = request.get("limit")
        if not isinstance(cursor, int) or cursor < 0:
            return {"ok": False, "error": "'cursor' must be a non-negative integer"}
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            return {"ok": False, "error": "'limit' must be a non-negative integer"}
        recorder = self._gateway.telemetry.recorder
        tail = recorder.tail(cursor, limit=limit)
        return {"ok": True, "enabled": recorder.enabled, **tail}

    async def _op_metrics(self, request: dict) -> dict:
        telemetry = self._gateway.telemetry
        if not telemetry.enabled:
            return {"ok": True, "enabled": False, "metrics": ""}
        loop = asyncio.get_running_loop()
        text = await loop.run_in_executor(None, telemetry.prometheus)
        return {"ok": True, "enabled": True, "metrics": text}

    async def _op_undeploy(self, request: dict) -> dict:
        key = request["session"]
        loop = asyncio.get_running_loop()
        removed = await loop.run_in_executor(None, lambda: self._gateway.undeploy(key))
        if not removed:
            return {"ok": False, "error": f"no session {key!r}"}
        return {"ok": True, "session": key}

    async def _op_dead_letters(self, request: dict) -> dict:
        session = self._require_session(request)
        if isinstance(session, dict):
            return session
        supervisor = session.supervisor
        if supervisor is None:
            return {
                "ok": True,
                "session": session.key,
                "supervised": False,
                "dead_letters": [],
            }
        pool = supervisor.dead_letters
        return {
            "ok": True,
            "session": session.key,
            "supervised": True,
            "capacity": pool.capacity,
            "evicted": pool.evicted,
            "dead_letters": [
                {
                    "msg_id": entry.msg_id,
                    "instance": entry.instance,
                    "port": entry.port,
                    "attempts": entry.attempts,
                    "reason": entry.reason,
                    "has_message": entry.message is not None,
                }
                for entry in pool
            ],
        }

    async def _op_requeue(self, request: dict) -> dict:
        from repro.gateway.session import (
            ADMITTED,
            CONNECTION_HEADER,
            FULL,
            INGRESS_HEADER,
            RETRY,
        )

        session = self._require_session(request)
        if isinstance(session, dict):
            return session
        msg_id = request["msg_id"]
        supervisor = session.supervisor
        if supervisor is None:
            return {"ok": False, "error": f"session {session.key!r} is not supervised"}
        if msg_id not in supervisor.dead_letters:
            return {"ok": False, "error": f"no dead letter with id {msg_id!r}"}
        entry = supervisor.dead_letters.take(msg_id)
        message = entry.message
        if message is None:
            supervisor.dead_letters.add(entry)  # keep it inspectable
            return {
                "ok": False,
                "error": f"dead letter {msg_id!r} carries no message payload",
            }
        message.headers.remove(CONNECTION_HEADER)
        message.headers.remove(INGRESS_HEADER)
        # admission must happen on this (the event-loop) thread; the
        # non-blocking offer path makes that safe without an executor
        ticket = session.offer(message)
        attempts = 0
        while ticket.status == RETRY and attempts < 64:
            await asyncio.sleep(0.002)
            ticket = session.retry(ticket, message)
            attempts += 1
        if ticket.status in (FULL, RETRY):
            supervisor.dead_letters.add(entry)  # no room: park it again
            return {
                "ok": False,
                "error": f"session {session.key!r} refused the requeue "
                f"({ticket.status}); the entry is parked again",
            }
        # ADMITTED or SHED: the copy re-entered the stream (a shed is
        # re-admitted then dropped with accounting) — settle the park
        if session.ledger.enabled:
            session.ledger.requeue(session.key, msg_id)
        return {
            "ok": True,
            "session": session.key,
            "msg_id": msg_id,
            "status": ticket.status,
        }

    async def _op_recovery(self, request: dict) -> dict:
        gateway = self._gateway
        report = gateway.recovery.last_report
        response: dict = {
            "ok": True,
            "enabled": gateway.ledger.enabled,
            "recovery": report.describe() if report is not None else None,
        }
        if request.get("reconcile"):
            loop = asyncio.get_running_loop()
            reconciled = await loop.run_in_executor(None, gateway.recovery.reconcile)
            response["reconcile"] = reconciled.describe()
        return response

    async def _op_drain(self, request: dict) -> dict:
        loop = asyncio.get_running_loop()
        # respond first: the drain closes this very listener
        loop.call_later(0.05, lambda: loop.create_task(self._gateway.drain()))
        return {"ok": True, "draining": True}

    def _require_session(self, request: dict):
        key = request["session"]
        session = self._gateway.route(key)
        if session is None:
            self.request_failures += 1
            return {"ok": False, "error": f"no session {key!r}"}
        return session


def _encode(response: dict) -> bytes:
    return json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"


# ---------------------------------------------------------------------------
# synchronous convenience client
# ---------------------------------------------------------------------------


def control_request(
    address: tuple[str, int], request: dict, *, timeout: float = 10.0
) -> dict:
    """One blocking request/response round against a control plane.

    Convenience for tests, benches, and scripts running outside the
    gateway's event loop; opens a fresh connection per call.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        buf = bytearray()
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("control connection closed mid-response")
            buf += chunk
    return json.loads(buf.decode("utf-8"))
