"""The data plane: the asyncio socket listener clients actually talk to.

One ``asyncio.start_server`` accept loop; one read task per connection.
The per-connection pipeline is::

    socket bytes ──► FrameAssembler (incremental, validated Content-Length)
                ──► route by Content-Session ──► GatewaySession.offer()
                        │ ADMITTED                  │ FULL / RETRY
                        ▼                           ▼
                  stream ingress            park: stop reading this socket
                                            (TCP backpressure), re-probe
                                            until room or the park budget
                                            expires ──► shed into the
                                            drop ledger

Because parking happens *inside* the read task, a saturated session
freezes exactly the sockets feeding it: the kernel's receive window
closes and the client blocks in ``send`` — end-to-end backpressure with
no gateway-side buffering beyond the bounded session.

Egress rides the session's pump thread: frames arrive here via
``call_soon_threadsafe`` and are written to the connection named by the
message's ``X-MobiGATE-Connection`` stamp.  A connection whose transport
already buffers ``max_conn_write_buffer`` bytes has its frames dropped
(slow-reader protection) rather than growing without bound.

Protocol errors (malformed framing, oversized declarations) poison the
connection's assembler; the plane answers with one ``text/plain`` error
frame carrying ``X-MobiGATE-Error`` and closes the socket.  Frames whose
``Content-Session`` matches no deployed session get the same error frame
but keep the connection open — framing is still intact.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from repro.errors import MimeError, QueueClosedError
from repro.gateway.config import GatewayConfig
from repro.gateway.session import ADMITTED, CONNECTION_HEADER, RETRY, SHED, GatewaySession
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message

ERROR_HEADER = "X-MobiGATE-Error"


def _error_frame(detail: str) -> bytes:
    message = MimeMessage("text/plain", detail.encode("utf-8"))
    message.headers.set(ERROR_HEADER, detail[:200])
    return serialize_message(message)


class DataPlane:
    """The client-facing TCP listener."""

    def __init__(self, gateway, config: GatewayConfig):
        self._gateway = gateway
        self._config = config
        self._server: asyncio.AbstractServer | None = None
        self._conn_ids = itertools.count(1)
        self._writers: dict[str, asyncio.StreamWriter] = {}
        telemetry = gateway.telemetry
        if telemetry.enabled:
            self._conn_gauge = telemetry.gateway_connections_gauge()
            self._frames_in = telemetry.gateway_frames_counter("in")
            self._frames_out = telemetry.gateway_frames_counter("out")
            self._bytes_in = telemetry.gateway_bytes_counter("in")
            self._bytes_out = telemetry.gateway_bytes_counter("out")
            self._bp_counter = telemetry.gateway_backpressure_counter
            self._error_counter = telemetry.gateway_frame_errors_counter()
            self._admission_hist = telemetry.gateway_admission_histogram()
            self._egress_write_hist = telemetry.gateway_egress_write_histogram()
        else:
            self._conn_gauge = None
            self._frames_in = self._frames_out = None
            self._bytes_in = self._bytes_out = None
            self._bp_counter = None
            self._error_counter = None
            self._admission_hist = None
            self._egress_write_hist = None
        # observability independent of telemetry (bench + control plane)
        self.connections_served = 0
        self.frame_errors = 0
        self.unrouted_frames = 0
        self.write_overflow_drops = 0

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        """Bind the client-facing listener."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            self._config.data_host,
            self._config.data_port,
            limit=max(self._config.read_chunk_bytes, 1 << 16),
            backlog=self._config.listen_backlog,
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral port requests."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("data plane is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def open_connections(self) -> int:
        return len(self._writers)

    async def stop(self) -> None:
        """Close the listener and every open connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()

    # -- per-connection read loop ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_id = f"c{next(self._conn_ids)}"
        self._writers[conn_id] = writer
        self.connections_served += 1
        if self._conn_gauge is not None:
            self._conn_gauge.inc()
        assembler = FrameAssembler(
            max_frame_bytes=self._config.max_frame_bytes,
            max_header_bytes=self._config.max_header_bytes,
        )
        gate = self._gateway.fault_gate
        try:
            while True:
                await gate.wait_clear()
                chunk = await reader.read(self._config.read_chunk_bytes)
                if not chunk:
                    return
                if self._bytes_in is not None:
                    self._bytes_in.inc(len(chunk))
                try:
                    messages = assembler.feed(chunk)
                except MimeError as exc:
                    self._count_error()
                    writer.write(_error_frame(f"bad frame: {exc}"))
                    return  # framing is lost; the finally clause closes
                for message in messages:
                    await self._ingest(conn_id, message, writer)
        except (ConnectionResetError, BrokenPipeError):  # client vanished
            return
        finally:
            self._writers.pop(conn_id, None)
            if self._conn_gauge is not None:
                self._conn_gauge.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _ingest(
        self, conn_id: str, message: MimeMessage, writer: asyncio.StreamWriter
    ) -> None:
        admission_hist = self._admission_hist
        if admission_hist is not None:
            t0 = time.perf_counter()
        if self._frames_in is not None:
            self._frames_in.inc()
        key = message.session
        session = self._gateway.route(key) if key else None
        if session is None:
            self.unrouted_frames += 1
            self._count_error()
            writer.write(_error_frame(f"no session {key!r} deployed"))
            return
        message.headers.set(CONNECTION_HEADER, conn_id)
        try:
            ticket = session.offer(message)
        except QueueClosedError:
            self.unrouted_frames += 1
            self._count_error()
            writer.write(_error_frame(f"session {key!r} is closed"))
            return
        if ticket.status in (ADMITTED, SHED):
            if ticket.status == ADMITTED and admission_hist is not None:
                admission_hist.observe(time.perf_counter() - t0)
            return
        # park: this await IS the socket read pause — no further bytes are
        # read from this connection until the session makes room or the
        # budget expires
        if self._bp_counter is not None:
            self._bp_counter("parked").inc()
        session.stats.inc("parked")
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._config.park_timeout
        while loop.time() < deadline:
            await asyncio.sleep(self._config.park_poll_interval)
            try:
                ticket = session.retry(ticket, message)
            except QueueClosedError:
                self.unrouted_frames += 1
                self._count_error()
                return
            if ticket.status in (ADMITTED, SHED):
                if ticket.status == ADMITTED:
                    if self._bp_counter is not None:
                        self._bp_counter("resumed").inc()
                    if admission_hist is not None:
                        # the park wait is part of the admission latency
                        admission_hist.observe(time.perf_counter() - t0)
                return
        session.abandon(ticket, message)
        if self._bp_counter is not None:
            self._bp_counter("shed").inc()

    def _count_error(self) -> None:
        self.frame_errors += 1
        if self._error_counter is not None:
            self._error_counter.inc()

    # -- egress (entered via call_soon_threadsafe from pump threads) -------------------

    def attach_session(self, session: GatewaySession, loop: asyncio.AbstractEventLoop) -> None:
        """Install the egress bridge: pump thread → loop → socket write."""

        def on_egress(conn_id: str | None, frame: bytes) -> None:
            # stamp on the pump thread so the measured egress-write latency
            # includes the loop hop the handoff pays
            loop.call_soon_threadsafe(
                self._write_frame, session, conn_id, frame, time.perf_counter()
            )

        session.on_egress = on_egress

    def _write_frame(
        self,
        session: GatewaySession,
        conn_id: str | None,
        frame: bytes,
        handoff_at: float | None = None,
    ) -> None:
        if handoff_at is not None and self._egress_write_hist is not None:
            self._egress_write_hist.observe(time.perf_counter() - handoff_at)
        writer = self._writers.get(conn_id) if conn_id else None
        if writer is None or writer.transport.is_closing():
            session.stats.inc("orphans")
            return
        if writer.transport.get_write_buffer_size() > self._config.max_conn_write_buffer:
            self.write_overflow_drops += 1
            session.stats.inc("orphans")
            return
        writer.write(frame)
        if self._frames_out is not None:
            self._frames_out.inc()
            self._bytes_out.inc(len(frame))
