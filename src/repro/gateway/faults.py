"""Link-fault injection at the socket boundary.

:mod:`repro.faults` scripts link outages against the *emulated* wireless
link; the gateway gives those same :class:`~repro.faults.plan.LinkFault`
specs a second landing site — the real socket.  During an outage window
no connection makes read progress: the data plane awaits
:meth:`LinkOutageGate.wait_clear` before every read, so bytes pile up in
kernel buffers exactly as they would on a dead radio link, and the
recovery path (clients retrying, backpressure draining) is exercised
end-to-end.

Time is measured from :meth:`start` (the gateway's start), matching the
plan convention that ``at`` is relative to the run's origin.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan


class LinkOutageGate:
    """Blocks data-plane reads during scripted link-outage windows."""

    #: poll granularity while an outage is pending but not yet due
    _POLL = 0.05

    def __init__(self, plan: "FaultPlan | None" = None, *, telemetry=None):
        outages = []
        if plan is not None:
            outages = [f for f in plan.link_faults if f.kind == "outage"]
        self._outages = sorted(outages, key=lambda f: f.at)
        self._origin: float | None = None
        if telemetry is not None and telemetry.enabled:
            self._counter = telemetry.gateway_outage_counter()
            self._recorder = telemetry.recorder
        else:
            self._counter = None
            self._recorder = None
        #: outage windows observed blocking at least one read
        self.stalls = 0

    @property
    def armed(self) -> bool:
        return bool(self._outages)

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        """Fix the plan's time origin to the loop's clock, once."""
        if self._origin is None:
            self._origin = loop.time()

    def blocked_for(self, now: float) -> float:
        """Seconds until the current outage (if any) clears; 0 when clear."""
        if self._origin is None or not self._outages:
            return 0.0
        elapsed = now - self._origin
        for fault in self._outages:
            if fault.at <= elapsed < fault.at + fault.duration:
                fault.applied = True
                return fault.at + fault.duration - elapsed
        return 0.0

    async def wait_clear(self) -> None:
        """Return once no outage window covers the present moment."""
        if not self._outages:
            return
        loop = asyncio.get_running_loop()
        stalled = False
        while True:
            remaining = self.blocked_for(loop.time())
            if remaining <= 0:
                return
            if not stalled:
                stalled = True
                self.stalls += 1
                if self._counter is not None:
                    self._counter.inc()
                if self._recorder is not None:
                    self._recorder.record(
                        "link_outage", remaining_seconds=round(remaining, 6)
                    )
            await asyncio.sleep(min(remaining, self._POLL))
