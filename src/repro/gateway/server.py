"""The gateway proper: both planes, the session table, and the runtime bridge.

:class:`GatewayServer` is the deployable artifact of :mod:`repro.gateway`.
It owns one :class:`~repro.runtime.server.MobiGateServer` (the streamlet
runtime), an asyncio **data plane** clients stream MIME frames to, and a
loopback **control plane** management tools speak JSON to.  Frames are
routed by their ``Content-Session`` header to :class:`GatewaySession`
objects, each wrapping one deployed stream plus its scheduler.

Two ways to run it::

    # inside an existing event loop
    gateway = GatewayServer()
    await gateway.start()
    gateway.deploy(MCL_SOURCE)          # or via the control API
    ...
    await gateway.stop()

    # from synchronous code (tests, benches, the example)
    with GatewayServer().run_in_thread() as handle:
        reply = handle.control({"op": "deploy", "mcl": MCL_SOURCE})
        ...  # connect sockets to handle.data_address

Deployment is thread-safe and callable from any thread (the control
plane invokes it from an executor): compiled stream names are made unique
per deployment so the same MCL script can back many concurrent sessions.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import signal
import threading
from dataclasses import fields, replace
from typing import TYPE_CHECKING

from repro.apps import build_server
from repro.errors import MobiGateError
from repro.faults.invariant import check_conservation
from repro.gateway.config import GatewayConfig
from repro.gateway.control_plane import ControlPlane, control_request
from repro.gateway.data_plane import DataPlane
from repro.gateway.faults import LinkOutageGate
from repro.gateway.session import GatewaySession
from repro.runtime.process_scheduler import (
    ProcessScheduler,
    register_child_cleanup,
    unregister_child_cleanup,
)
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.runtime.server import MobiGateServer
from repro.store.base import open_store
from repro.store.ledger import NULL_LEDGER, Ledger
from repro.store.recovery import RecoveryManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan
    from repro.telemetry import Telemetry


class GatewayServer:
    """A MobiGATE proxy node: data plane + control plane + session table."""

    def __init__(
        self,
        *,
        config: GatewayConfig | None = None,
        server: MobiGateServer | None = None,
        telemetry: "Telemetry | None" = None,
        fault_plan: "FaultPlan | None" = None,
    ):
        self.config = config if config is not None else GatewayConfig()
        if server is not None:
            self.mobigate = server
        elif telemetry is not None:
            self.mobigate = build_server(telemetry=telemetry)
        else:
            self.mobigate = build_server()
        self.telemetry = self.mobigate.telemetry
        #: ``Content-Session`` key -> session (read by the data plane per frame)
        self.sessions: dict[str, GatewaySession] = {}
        self.data = DataPlane(self, self.config)
        self.control = ControlPlane(self, self.config)
        self.fault_gate = LinkOutageGate(fault_plan, telemetry=self.telemetry)
        #: durable state plane (NULL_LEDGER when config names no backend)
        if self.config.store_backend is not None:
            store = open_store(
                self.config.store_backend,
                self.config.store_path,
                fsync=self.config.store_fsync,
                telemetry=self.telemetry,
            )
            self.ledger = Ledger(store)
        else:
            self.ledger = NULL_LEDGER
        self.recovery = RecoveryManager(self, self.ledger)
        self._sessions_gauge = (
            self.telemetry.gateway_sessions_gauge() if self.telemetry.enabled else None
        )
        self._deploy_lock = threading.Lock()
        self._stream_ids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started_at: float | None = None

    # -- lifecycle (event-loop thread) --------------------------------------------------

    async def start(self) -> None:
        """Bind both planes on the running loop.

        With a durable ledger, crash recovery runs first — before the
        data plane listens — so restored sessions exist (and their
        pending retries are re-injected) before any new frame can race
        them.  Recovery takes the deploy lock and joins threads, so it
        runs in the executor.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self.fault_gate.start(loop)
        if self.ledger.enabled:
            await loop.run_in_executor(None, self.recovery.recover)
        await self.data.start()
        await self.control.start()
        # a ProcessScheduler deploy forks from this live process; the
        # children must drop our listening sockets right after fork or a
        # surviving shard keeps the port bound when the gateway dies
        register_child_cleanup(self._close_listeners_in_child)
        self._started_at = loop.time()
        # sessions deployed before start() could not install their egress
        # bridge (no loop yet); attach them now
        for session in self.sessions.values():
            self.data.attach_session(session, loop)

    async def stop(self) -> None:
        """Close both planes, then every session and its stream.

        A stop is a *clean* exit, not a decommissioning: sessions are
        closed without ``undeployed`` ledger records, so a later restart
        against the same store recovers them.
        """
        unregister_child_cleanup(self._close_listeners_in_child)
        await self.control.stop()
        await self.data.stop()
        for key in list(self.sessions):
            self.undeploy(key, record=False)
        self.ledger.close()

    async def drain(self) -> dict:
        """Graceful shutdown: quiesce, flush the ledger, then stop.

        Stops intake first (the data plane closes, so nothing new is
        admitted), waits up to ``config.drain_timeout`` for every
        session's pool to empty, mirrors final counters, and closes
        everything — the SIGTERM path for a durable gateway.  Returns
        the per-session residency left when the wait ended (all zero on
        a clean drain).
        """
        unregister_child_cleanup(self._close_listeners_in_child)
        await self.data.stop()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while loop.time() < deadline:
            if all(s.resident == 0 for s in self.sessions.values()):
                break
            await asyncio.sleep(0.02)
        leftover = {key: s.resident for key, s in self.sessions.items()}
        await self.control.stop()
        for key in list(self.sessions):
            self.undeploy(key, record=False)
        self.ledger.flush()
        self.ledger.close()
        return leftover

    def uptime(self) -> float:
        """Seconds since :meth:`start` bound the planes (0 before that)."""
        if self._loop is None or self._started_at is None:
            return 0.0
        return max(0.0, self._loop.time() - self._started_at)

    def _close_listeners_in_child(self) -> None:
        """Close this gateway's inherited listening fds (runs in a forked
        shard worker only — closing there never touches the parent's
        sockets, just the child's copies of the file descriptors)."""
        for plane in (self.data, self.control):
            server = getattr(plane, "_server", None)
            for sock in getattr(server, "sockets", None) or ():
                try:
                    os.close(sock.fileno())
                except (OSError, ValueError):
                    pass

    # -- deployment (any thread) --------------------------------------------------------

    def deploy(
        self,
        mcl: str,
        *,
        session_key: str | None = None,
        stream: str | None = None,
        scheduler: str = "threaded",
    ) -> GatewaySession:
        """Compile, verify, deploy, and start one session from MCL source.

        The compiled stream is renamed to a per-deployment unique name, so
        one script can be deployed many times; the returned session's
        ``key`` (``session_key`` or the runtime's generated session id) is
        what clients must carry in ``Content-Session``.
        """
        if scheduler not in ("threaded", "inline", "process"):
            raise MobiGateError(f"unknown scheduler {scheduler!r}")
        with self._deploy_lock:
            if session_key is not None and session_key in self.sessions:
                raise MobiGateError(f"session {session_key!r} already deployed")
            compiled = self.mobigate.compile(mcl)
            if stream is not None:
                try:
                    table = compiled.tables[stream]
                except KeyError:
                    raise MobiGateError(f"script defines no stream {stream!r}") from None
            else:
                table = compiled.main_table()
            table = replace(
                table,
                stream_name=f"{table.stream_name}~g{next(self._stream_ids)}",
            )
            runtime_stream = self.mobigate.deploy_table(table, start=True)
            try:
                key = session_key if session_key is not None else runtime_stream.session
                if key is None or key in self.sessions:
                    raise MobiGateError(f"cannot key session as {key!r}")
                if scheduler == "inline":
                    engine = InlineScheduler(runtime_stream)
                elif scheduler == "process":
                    engine = ProcessScheduler(runtime_stream)
                    engine.start()
                else:
                    engine = ThreadedScheduler(runtime_stream)
                    engine.start()
                session = GatewaySession(
                    key,
                    runtime_stream,
                    engine,
                    ingress_limit=self.config.session_ingress_limit,
                    egress_wake_timeout=self.config.egress_wake_timeout,
                    inline=(scheduler == "inline"),
                    telemetry=self.telemetry,
                    ledger=self.ledger,
                )
                if self.config.supervise:
                    from repro.faults.supervisor import Supervisor

                    supervisor = Supervisor(
                        runtime_stream,
                        events=self.mobigate.events,
                        telemetry=self.telemetry,
                        ledger=self.ledger,
                        scope=key,
                        dead_letter_capacity=self.config.dead_letter_capacity,
                    )
                    supervisor.attach()
                    session.attach_supervisor(supervisor)
            except Exception:
                self.mobigate.undeploy(runtime_stream.name)
                raise
            self.sessions[key] = session
        if self.ledger.enabled:
            self.ledger.deployed(key, mcl=mcl, scheduler=scheduler)
        if self._sessions_gauge is not None:
            self._sessions_gauge.inc()
        if self._loop is not None:
            self.data.attach_session(session, self._loop)
        return session

    def undeploy(self, key: str, *, record: bool = True) -> bool:
        """Close one session and release its stream; False if unknown.

        ``record=True`` (the operator/default path) writes the ledger's
        ``undeployed`` record, so crash recovery will *not* restore the
        session.  Internal shutdown paths (stop, drain) pass False —
        a stopped session is still recoverable.
        """
        with self._deploy_lock:
            session = self.sessions.pop(key, None)
        if session is None:
            return False
        session.close()
        if record and self.ledger.enabled:
            self.ledger.undeployed(key)
        try:
            self.mobigate.undeploy(session.stream.name)
        except MobiGateError:  # already released (e.g. double shutdown)
            pass
        if self._sessions_gauge is not None:
            self._sessions_gauge.dec()
        return True

    # -- routing and management ---------------------------------------------------------

    def route(self, key: str | None) -> GatewaySession | None:
        """The session owning ``key``, or None (the data plane's hot path)."""
        if key is None:
            return None
        return self.sessions.get(key)

    def raise_event(self, name: str, *, session_key: str | None = None) -> int:
        """Raise a context event, scoped to one session's stream when keyed.

        Compiled ``when`` handlers run as reconfiguration transactions on
        the receiving stream; returns the number of deliveries.
        """
        if session_key is None:
            delivered = self.mobigate.events.raise_event(name)
            affected = list(self.sessions.values())
        else:
            session = self.route(session_key)
            if session is None:
                raise MobiGateError(f"no session {session_key!r}")
            delivered = self.mobigate.events.raise_event(
                name, source=session.stream.name
            )
            affected = [session]
        # a committed handler may have added instances; threaded sessions
        # need workers spawned for them or their traffic stalls
        for touched in affected:
            ensure = getattr(touched.scheduler, "ensure_workers", None)
            if ensure is not None:
                ensure()
        return delivered

    def describe(self, session: GatewaySession) -> dict:
        """One session's full ledger: gateway counters, stream stats, conservation."""
        report = check_conservation(session.stream)
        stream_stats = session.stream.stats
        return {
            "ok": True,
            **session.describe(),
            "stream_stats": {
                f.name: getattr(stream_stats, f.name) for f in fields(stream_stats)
            },
            "conservation": {
                "admitted": report.admitted,
                "delivered": report.delivered,
                "absorbed": report.absorbed,
                "dead_letters": report.dead_letters,
                "queue_drops": report.queue_drops,
                "open_circuit_drops": report.open_circuit_drops,
                "failure_drops": report.failure_drops,
                "end_drops": report.end_drops,
                "residual": report.residual,
                "missing": report.missing,
                "balanced": report.balanced,
                "ledger": report.describe(),
            },
        }

    def introspect(self) -> dict:
        """The live-state snapshot behind the ``introspect`` control verb.

        Per session: queue depths/watermarks, worker states (threaded
        schedulers), the RCU snapshot version, and the session ledger —
        plus data-plane connection counts and flight-recorder health.
        """
        sessions: dict[str, dict] = {}
        for key, session in list(self.sessions.items()):
            stream = session.stream
            entry = {
                **session.describe(),
                "snapshot_version": stream.snapshot_version,
                "queues": stream.queue_introspect(),
            }
            worker_states = getattr(session.scheduler, "worker_states", None)
            if worker_states is not None:
                entry["workers"] = worker_states()
            sessions[key] = entry
        recorder = self.telemetry.recorder
        return {
            "sessions": sessions,
            "open_connections": self.data.open_connections,
            "connections_served": self.data.connections_served,
            "uptime_seconds": self.uptime(),
            "recorder": {
                "enabled": recorder.enabled,
                "recorded": recorder.recorded,
                "dropped": recorder.dropped,
                "retained": len(recorder),
                "dumps": dict(recorder.dumps),
            },
        }

    # -- synchronous driver -------------------------------------------------------------

    def run_in_thread(self, *, timeout: float = 10.0) -> "GatewayHandle":
        """Start the gateway on a fresh event loop in a daemon thread.

        Blocks until both planes are bound (or raises the boot error), and
        returns a :class:`GatewayHandle` for synchronous callers.  When
        called from the main thread, ``SIGTERM`` is wired to
        :meth:`drain` — a terminated gateway process quiesces and
        flushes its ledger instead of abandoning in-flight state; the
        previous handler is restored by :meth:`GatewayHandle.stop`.
        """
        loop = asyncio.new_event_loop()
        started = threading.Event()
        boot_error: list[BaseException] = []

        def _run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surfaced to the caller below
                boot_error.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        thread = threading.Thread(target=_run, name="gateway-loop", daemon=True)
        thread.start()
        if not started.wait(timeout):
            raise MobiGateError("gateway failed to start within the timeout")
        if boot_error:
            raise MobiGateError(f"gateway failed to start: {boot_error[0]}")
        previous_term = None
        if threading.current_thread() is threading.main_thread():

            def _on_term(signum, frame) -> None:
                def _drain_then_stop() -> None:
                    task = loop.create_task(self.drain())
                    task.add_done_callback(lambda _t: loop.stop())

                loop.call_soon_threadsafe(_drain_then_stop)

            try:
                previous_term = signal.signal(signal.SIGTERM, _on_term)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                previous_term = None
        return GatewayHandle(self, loop, thread, previous_term=previous_term)


class GatewayHandle:
    """Synchronous remote control for a gateway running on its own loop thread."""

    def __init__(
        self,
        gateway: GatewayServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        *,
        previous_term=None,
    ):
        self.gateway = gateway
        self._loop = loop
        self._thread = thread
        self._stopped = False
        self._previous_term = previous_term

    @property
    def data_address(self) -> tuple[str, int]:
        return self.gateway.data.address

    @property
    def control_address(self) -> tuple[str, int]:
        return self.gateway.control.address

    def control(self, request: dict, *, timeout: float = 10.0) -> dict:
        """One request against the control API, over a real socket."""
        return control_request(self.control_address, request, timeout=timeout)

    def stop(self, *, timeout: float = 10.0) -> None:
        """Stop the gateway, then the loop and its thread (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        if (
            self._previous_term is not None
            and threading.current_thread() is threading.main_thread()
        ):
            try:
                signal.signal(signal.SIGTERM, self._previous_term)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
            self._previous_term = None
        future = asyncio.run_coroutine_threadsafe(self.gateway.stop(), self._loop)
        try:
            future.result(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)

    def __enter__(self) -> "GatewayHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
