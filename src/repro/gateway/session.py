"""One gateway session: a deployed stream plus its admission and egress glue.

A :class:`GatewaySession` binds a ``Content-Session`` routing key to a
deployed :class:`~repro.runtime.stream.RuntimeStream` and owns the two
boundary crossings the data plane needs:

* **admission** (event-loop thread → runtime): :meth:`offer` admits a
  parsed message into the stream through the non-blocking
  :meth:`~repro.runtime.message_queue.MessageQueue.try_post` fast path.
  The session is *bounded*: when its pool holds
  ``ingress_limit`` resident messages, offers report ``FULL`` and the
  caller parks — which, because the caller is the connection's read task,
  pauses socket reads and pushes the backpressure onto the client's TCP
  window.  A park that outlives its budget is **shed** through
  :meth:`~repro.runtime.stream.RuntimeStream.shed`, so the refusal lands
  in the drop statistics and the conservation ledger stays balanced.
* **egress** (runtime workers → event-loop thread): a pump thread blocks
  on the egress queues' waiter event, collects delivered messages,
  serialises them off the event loop, and hands ``(conn_id, frame
  bytes)`` to the ``on_egress`` callback the data plane installs.

All admission methods (``offer`` / ``retry`` / ``abandon``) must be
called from a single thread (the gateway's event loop); the pump runs on
its own thread and touches only thread-safe runtime surfaces
(``collect``, queue waiters).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import QueueClosedError
from repro.mime.message import MimeMessage
from repro.mime.wire import serialize_message
from repro.runtime.stream import RuntimeStream
from repro.store.ledger import NULL_LEDGER

#: gateway-internal header naming the data-plane connection a message
#: arrived on; stamped at admission, stripped before the echo leaves
CONNECTION_HEADER = "X-MobiGATE-Connection"

#: gateway-internal header carrying the admission perf_counter timestamp;
#: stamped/stripped like :data:`CONNECTION_HEADER`, it survives the whole
#: streamlet chain (redirectors included) so delivery can observe the
#: gateway-internal end-to-end latency — the attribution ground truth
INGRESS_HEADER = "X-MobiGATE-Ingress"

#: offer outcomes
ADMITTED = "admitted"
FULL = "full"          # nothing admitted; session at its ingress bound
RETRY = "retry"        # pool id admitted; queue lock contended, repost later
SHED = "shed"          # admitted and immediately dropped into the ledger


@dataclass
class OfferTicket:
    """The state of one in-flight admission attempt."""

    status: str
    msg_id: str | None = None
    size: int = 0


@dataclass
class SessionStats:
    """Gateway-boundary counters for one session (runtime stats live on the stream)."""

    frames_in: int = 0
    frames_out: int = 0
    parked: int = 0
    shed: int = 0
    contended: int = 0
    #: egress frames with no live connection to deliver to
    orphans: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def inc(self, name: str, n: int = 1) -> None:
        """Atomically bump one counter."""
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def snapshot(self) -> dict[str, int]:
        """A consistent copy of every counter."""
        with self._lock:
            return {
                "frames_in": self.frames_in,
                "frames_out": self.frames_out,
                "parked": self.parked,
                "shed": self.shed,
                "contended": self.contended,
                "orphans": self.orphans,
            }


class GatewaySession:
    """Routes one ``Content-Session`` key into one deployed stream."""

    def __init__(
        self,
        key: str,
        stream: RuntimeStream,
        scheduler,
        *,
        ingress_limit: int = 256,
        egress_wake_timeout: float = 0.05,
        inline: bool = False,
        telemetry=None,
        ledger=NULL_LEDGER,
    ):
        self.key = key
        self.stream = stream
        self.scheduler = scheduler
        self.ingress_limit = ingress_limit
        self.stats = SessionStats()
        #: durable state plane: counter deltas mirror here per pump batch
        self.ledger = ledger
        #: a recovery Supervisor, when the gateway runs with supervision
        self.supervisor = None
        self._mirror_lock = threading.Lock()
        self._mirrored = {
            "admitted": 0, "delivered": 0, "absorbed": 0,
            "dead_letters": 0, "dropped": 0,
        }
        #: end-to-end latency histogram (None disables the ingress stamp)
        self._e2e_hist = (
            telemetry.gateway_e2e_histogram() if telemetry is not None else None
        )
        self._delivery_hist = (
            telemetry.gateway_delivery_histogram() if telemetry is not None else None
        )
        #: installed by the data plane: called from the pump thread as
        #: ``on_egress(conn_id | None, frame_bytes)``
        self.on_egress = None
        self._inline = inline
        self._closed = False
        self._wake_timeout = egress_wake_timeout
        self._pump = threading.Thread(
            target=self._pump_loop, name=f"gw-egress-{key}", daemon=True
        )
        self._pump_stop = threading.Event()
        self._pump_wake = threading.Event()
        self._pump.start()

    # -- admission (event-loop thread only) -----------------------------------------

    @property
    def resident(self) -> int:
        """Messages of this session currently alive in the pool."""
        return len(self.stream.pool)

    def has_room(self) -> bool:
        """Whether the session is below its ingress bound."""
        return self.resident < self.ingress_limit

    def offer(self, message: MimeMessage) -> OfferTicket:
        """Try to admit one message without blocking; see module docstring."""
        if self._closed:
            raise QueueClosedError(f"session {self.key} is closed")
        if not self.has_room():
            return OfferTicket(FULL)
        return self._admit_and_post(message)

    def retry(self, ticket: OfferTicket, message: MimeMessage) -> OfferTicket:
        """Advance a parked admission attempt one step."""
        if ticket.status == RETRY:
            return self._post(ticket.msg_id, ticket.size)
        if ticket.status == FULL:
            return self.offer(message)
        return ticket

    def abandon(self, ticket: OfferTicket, message: MimeMessage) -> OfferTicket:
        """Give up on a parked attempt: shed it into the conservation ledger."""
        if ticket.status == RETRY and ticket.msg_id is not None:
            # the id is already admitted; route it through the drop path
            self.stream._release_dropped([ticket.msg_id])
        elif ticket.status == FULL:
            self.stream.shed(message)
        self.stats.inc("shed")
        return OfferTicket(SHED, ticket.msg_id, ticket.size)

    def _admit_and_post(self, message: MimeMessage) -> OfferTicket:
        stream = self.stream
        if message.session is None and stream.session is not None:
            message.headers.session = stream.session
        if stream.epoch:
            message.headers.set_epoch(stream.epoch)
        if self._e2e_hist is not None:
            message.headers.set(INGRESS_HEADER, repr(time.perf_counter()))
        traced = stream.tm.enabled and stream.tm.admit(message)
        size = message.total_size()
        msg_id = stream.pool.admit(message)
        if traced:
            stream.tm.mark_traced(msg_id)
        return self._post(msg_id, size)

    def _post(self, msg_id: str, size: int) -> OfferTicket:
        channel = self._ingress_channel()
        outcome = channel.queue.try_post(msg_id, size)
        if outcome is True:
            self.stream.stats.inc("messages_in")
            self.stats.inc("frames_in")
            if self._inline:
                self._pump_wake.set()  # no workers: the pump drives the stream
            return OfferTicket(ADMITTED, msg_id, size)
        if outcome is None:
            self.stats.inc("contended")
            return OfferTicket(RETRY, msg_id, size)
        # the effectively-unbounded edge queue is full — treat as a shed
        self.stream._release_dropped([msg_id])
        self.stats.inc("shed")
        return OfferTicket(SHED, msg_id, size)

    def _ingress_channel(self):
        stream = self.stream
        try:
            return next(iter(stream.ingress.values()))
        except StopIteration:
            raise QueueClosedError(
                f"stream {stream.name} exposes no ingress port"
            ) from None

    # -- the durable mirror -----------------------------------------------------------

    def attach_supervisor(self, supervisor) -> None:
        """Adopt a recovery supervisor; its retries pump with the egress pump."""
        self.supervisor = supervisor

    def sync_ledger(self) -> None:
        """Mirror counter *deltas* since the previous sync into the ledger.

        Read order matters: the terminal counters (delivered, absorbed,
        dead letters, drops) are read **before** the admission counter.
        A message that reaches a terminal between the two reads has its
        admission counted but not its fate — it folds as in-flight and
        corrects on the next sync — whereas the opposite order could
        fold a fate whose admission was missed, driving the running
        in-flight tally negative.  Callable from any thread.
        """
        if not self.ledger.enabled:
            return
        stats = self.stream.stats
        with self._mirror_lock:
            delivered = stats.messages_out
            absorbed = stats.absorbed
            dead_letters = stats.dead_letters
            dropped = (
                stats.queue_drops + stats.open_circuit_drops
                + stats.failure_drops + stats.end_drops
            )
            admitted = self.stream.pool.admitted
            m = self._mirrored
            self.ledger.counters(
                self.key,
                admitted=admitted - m["admitted"],
                delivered=delivered - m["delivered"],
                absorbed=absorbed - m["absorbed"],
                dead_letters=dead_letters - m["dead_letters"],
                dropped=dropped - m["dropped"],
            )
            m["admitted"] = admitted
            m["delivered"] = delivered
            m["absorbed"] = absorbed
            m["dead_letters"] = dead_letters
            m["dropped"] = dropped

    # -- egress pump (own thread) ------------------------------------------------------

    def _pump_loop(self) -> None:
        wake = self._pump_wake
        while not self._pump_stop.is_set():
            self._register_waiters(wake)
            wake.wait(self._wake_timeout)
            wake.clear()
            try:
                if self._inline:
                    self.scheduler.pump()
                supervisor = self.supervisor
                if supervisor is not None:
                    supervisor.pump_retries()
                delivered = self.stream.collect()
            except QueueClosedError:
                return  # the stream ended under us: nothing left to deliver
            if delivered and self.ledger.enabled:
                # ack durability: the delivered counts hit the ledger —
                # and the disk, per the fsync policy — *before* any echo
                # frame leaves, so an acked message is never unaccounted
                self.sync_ledger()
                self.ledger.flush()
            # one pickup stamp per batch: each message's delivery component
            # covers its wait behind earlier messages of the same batch
            picked = time.perf_counter()
            for message in delivered:
                self._deliver(message, picked)

    def _register_waiters(self, event: threading.Event) -> None:
        """(Re-)hook the wakeup event onto the current egress queues.

        Re-run every cycle because reconfiguration may swap egress
        channels; ``add_waiter`` is idempotent, so steady state costs one
        lock round per queue per wakeup.  Inline sessions also watch the
        ingress queues: with no scheduler workers, an arriving message is
        what makes the pump turn the stream over.
        """
        try:
            for _ref, channel in self.stream.egress:
                channel.queue.add_waiter(event)
            if self._inline:
                for channel in self.stream.ingress.values():
                    channel.queue.add_waiter(event)
        except QueueClosedError:  # pragma: no cover - teardown race
            pass

    def _deliver(self, message: MimeMessage, picked: float | None = None) -> None:
        raw_conn = message.headers.get(CONNECTION_HEADER)
        message.headers.remove(CONNECTION_HEADER)
        stamped = message.headers.get(INGRESS_HEADER)
        if stamped is not None:
            message.headers.remove(INGRESS_HEADER)
            if self._e2e_hist is not None:
                try:
                    admitted_at = float(stamped)
                except ValueError:
                    pass  # a corrupted stamp just goes unattributed
                else:
                    now = time.perf_counter()
                    self._e2e_hist.observe(now - admitted_at)
                    if self._delivery_hist is not None and picked is not None:
                        # same instant as the e2e observation, so the
                        # component set sums to what e2e measures
                        self._delivery_hist.observe(now - picked)
        frame = serialize_message(message)
        self.stats.inc("frames_out")
        callback = self.on_egress
        if callback is None:
            self.stats.inc("orphans")
            return
        callback(raw_conn, frame)

    # -- lifecycle ----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def scheduler_kind(self) -> str:
        """The engine flavour driving this session's stream."""
        if self._inline:
            return "inline"
        name = type(self.scheduler).__name__
        return "process" if name == "ProcessScheduler" else "threaded"

    def describe(self) -> dict:
        """A JSON-ready summary for the control plane."""
        return {
            "session": self.key,
            "stream": self.stream.name,
            "epoch": self.stream.epoch,
            "resident": self.resident,
            "ingress_limit": self.ingress_limit,
            "scheduler": self.scheduler_kind,
            **self.stats.snapshot(),
        }

    def close(self) -> None:
        """Stop the scheduler and pump, end the stream (idempotent).

        A close is *not* an undeploy in the ledger's eyes: the final
        counter sync lands, but no ``undeployed`` record — a session
        that merely stopped (or whose process died right after) is
        still recoverable.
        """
        if self._closed:
            return
        self._closed = True
        if not self._inline:
            self.scheduler.stop()
        self._pump_stop.set()
        self._pump_wake.set()
        self._pump.join(timeout=2.0)
        self.stream.end()
        if self.ledger.enabled:
            self.sync_ledger()  # capture the end_drops the stream just took
            self.ledger.flush()
