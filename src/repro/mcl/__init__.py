"""The MobiGATE Coordination Language (thesis chapter 4).

MCL describes streamlet compositions: streamlet and channel *definitions*
(ports typed with MIME media types, plus attributes), and *stream* scripts
that instantiate them, wire connections, and declare event-driven
reconfiguration (``when`` blocks).

Pipeline::

    source text --lex--> tokens --parse--> AST --compile--> ConfigurationTable

The compiler performs the section 4.4.1 compatibility checks, expands
recursive compositions (section 4.4.2), and emits one
:class:`~repro.mcl.config.ConfigurationTable` per stream — the structure
the Coordination Manager routes from at runtime.
"""

from repro.mcl.lexer import tokenize
from repro.mcl.parser import parse_script
from repro.mcl.compiler import MclCompiler, compile_script
from repro.mcl.config import ConfigurationTable, CompiledScript
from repro.mcl.pretty import format_script

__all__ = [
    "tokenize",
    "parse_script",
    "MclCompiler",
    "compile_script",
    "ConfigurationTable",
    "CompiledScript",
    "format_script",
]
