"""The MCL tool: check, analyse, and format coordination scripts.

The thesis's future-work list asks for "automated tools ... specific to
the MCL language [that] can provide automated checking of the properties"
(§8.2.2).  Usage::

    python -m repro.mcl check  script.mcl   # compile + chapter-5 analyses
    python -m repro.mcl format script.mcl   # canonical pretty-print
    python -m repro.mcl graph  script.mcl   # dump the StreamGraph edges

Options:

    --no-builtins   do not preload the built-in streamlet directory
    --strict        thesis-style closed analysis (exposed outputs are
                    open circuits unless their definition is terminal)
    --stream NAME   restrict to one stream

Exit status: 0 = consistent, 1 = violations found, 2 = compile error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import MclError, MobiGateError
from repro.mcl.compiler import MclCompiler
from repro.mcl.parser import parse_script
from repro.mcl.pretty import format_script
from repro.semantics import analyze
from repro.semantics.graph import StreamGraph


def _build_compiler(use_builtins: bool) -> MclCompiler:
    if not use_builtins:
        return MclCompiler()
    from repro.streamlets import builtin_definitions

    return MclCompiler(extra_streamlets=builtin_definitions())


def _terminals(use_builtins: bool) -> frozenset[str]:
    if not use_builtins:
        return frozenset()
    from repro.streamlets import builtin_definitions

    return frozenset(
        name for name, d in builtin_definitions().items() if not d.outputs()
    )


def cmd_check(args: argparse.Namespace, source: str) -> int:
    compiler = _build_compiler(not args.no_builtins)
    try:
        compiled = compiler.compile(source)
    except MclError as exc:
        if args.json:
            print(json.dumps({"status": "compile-error", "error": str(exc)}))
        else:
            print(f"compile error: {exc}", file=sys.stderr)
        return 2
    names = [args.stream] if args.stream else list(compiled.tables)
    status = 0
    results = []
    for name in names:
        table = compiled.tables.get(name)
        if table is None:
            print(f"no stream named {name!r}", file=sys.stderr)
            return 2
        report = analyze(
            table,
            terminal_definitions=_terminals(not args.no_builtins),
            exposed_ports_bound=not args.strict,
        )
        if args.json:
            results.append({
                "stream": name,
                "consistent": report.consistent,
                "violations": [
                    {"kind": v.kind.value, "message": v.message}
                    for v in report.violations
                ],
                "instances": sorted(table.instances),
                "dormant": sorted(table.dormant_instances()),
                "links": len(table.links),
            })
        else:
            print(report.summary())
        if not report.consistent:
            status = 1
    if args.json:
        print(json.dumps({"status": "ok" if status == 0 else "violations",
                          "streams": results}, indent=2))
    return status


def cmd_format(args: argparse.Namespace, source: str) -> int:
    try:
        script = parse_script(source)
    except MclError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(format_script(script))
    return 0


def cmd_graph(args: argparse.Namespace, source: str) -> int:
    compiler = _build_compiler(not args.no_builtins)
    try:
        compiled = compiler.compile(source)
    except MclError as exc:
        print(f"compile error: {exc}", file=sys.stderr)
        return 2
    names = [args.stream] if args.stream else list(compiled.tables)
    for name in names:
        table = compiled.tables.get(name)
        if table is None:
            print(f"no stream named {name!r}", file=sys.stderr)
            return 2
        graph = StreamGraph.from_table(table)
        print(f"stream {name}: {len(graph)} node(s)")
        for src, dst in sorted(graph.edges()):
            print(f"  {src} -> {dst}")
        dormant = table.dormant_instances()
        if dormant:
            print(f"  dormant: {', '.join(sorted(dormant))}")
    return 0


_COMMANDS = {"check": cmd_check, "format": cmd_format, "graph": cmd_graph}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.mcl")
    parser.add_argument("command", choices=sorted(_COMMANDS))
    parser.add_argument("script", help="path to an .mcl file, or - for stdin")
    parser.add_argument("--no-builtins", action="store_true")
    parser.add_argument("--strict", action="store_true")
    parser.add_argument("--stream")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable check output")
    args = parser.parse_args(argv)

    if args.script == "-":
        source = sys.stdin.read()
    else:
        path = Path(args.script)
        if not path.exists():
            print(f"no such file: {path}", file=sys.stderr)
            return 2
        source = path.read_text()
    try:
        return _COMMANDS[args.command](args, source)
    except MobiGateError as exc:  # analysis errors surfaced as exit 1
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
