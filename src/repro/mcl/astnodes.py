"""MCL abstract syntax (Figures 4-3, 4-4, 4-5).

Nodes are frozen dataclasses so parsed scripts hash/compare naturally —
the pretty-printer round-trip property (`parse(format(ast)) == ast`) relies
on structural equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.mime.mediatype import MediaType


class PortDirection(Enum):
    """Whether a port consumes (IN) or produces (OUT) messages."""
    IN = "in"
    OUT = "out"


class StreamletKind(Enum):
    """STATELESS instances are poolable; STATEFUL ones are per-stream."""
    STATELESS = "STATELESS"
    STATEFUL = "STATEFUL"


class ChannelSync(Enum):
    """Channel timing discipline: SYNC (rendezvous) or ASYNC (buffered)."""
    SYNC = "SYNC"
    ASYNC = "ASYNC"


class ChannelCategory(Enum):
    """Disconnection semantics (section 4.2.2)."""

    S = "S"    # never holds pending units
    BB = "BB"  # break one end -> break both
    BK = "BK"  # keep target side on source disconnect (the default)
    KB = "KB"  # keep source side on target disconnect
    KK = "KK"  # cannot be disconnected at either side


@dataclass(frozen=True)
class PortDecl:
    direction: PortDirection
    name: str
    mediatype: MediaType


@dataclass(frozen=True)
class StreamletDef:
    """``streamlet name { port{...} attribute{...} }`` (Figure 4-3)."""

    name: str
    ports: tuple[PortDecl, ...]
    kind: StreamletKind = StreamletKind.STATELESS
    library: str = ""
    description: str = ""
    #: extension attributes feeding the chapter-5 analyses
    excludes: tuple[str, ...] = ()   # mutual exclusion partners (5.2.3)
    requires: tuple[str, ...] = ()   # mutual dependency partners (5.2.4)
    after: tuple[str, ...] = ()      # preorder: must come after these (5.2.5)

    def inputs(self) -> tuple[PortDecl, ...]:
        """The declared input ports, in declaration order."""
        return tuple(p for p in self.ports if p.direction is PortDirection.IN)

    def outputs(self) -> tuple[PortDecl, ...]:
        """The declared output ports, in declaration order."""
        return tuple(p for p in self.ports if p.direction is PortDirection.OUT)

    def port(self, name: str) -> PortDecl | None:
        """The port declaration named ``name``, or None."""
        for p in self.ports:
            if p.name == name:
                return p
        return None


@dataclass(frozen=True)
class ChannelDef:
    """``channel name { port{...} attribute{...} }`` (Figure 4-4)."""

    name: str
    in_port: PortDecl
    out_port: PortDecl
    sync: ChannelSync = ChannelSync.ASYNC
    category: ChannelCategory = ChannelCategory.BK
    buffer_kb: int = 100
    description: str = ""


# -- stream statements -----------------------------------------------------------


@dataclass(frozen=True)
class PortRef:
    """``instance.port``"""

    instance: str
    port: str

    def __str__(self) -> str:
        return f"{self.instance}.{self.port}"


@dataclass(frozen=True)
class NewInstances:
    """``streamlet a, b = new-streamlet (defname);`` (also channels)."""

    kind: str                 # "streamlet" | "channel"
    names: tuple[str, ...]
    definition: str
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class RemoveInstance:
    kind: str                 # "streamlet" | "channel" | "extract"
    name: str
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Connect:
    """``connect (p.o, q.i [, chan]);`` — omitted chan = default channel."""

    source: PortRef
    sink: PortRef
    channel: str | None = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Disconnect:
    source: PortRef
    sink: PortRef
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class DisconnectAll:
    instance: str
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Insert:
    """``insert (p.o, q.i, inst);`` — splice ``inst`` into an existing link."""

    source: PortRef
    sink: PortRef
    instance: str
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Replace:
    """``replace (old, new);`` — swap an instance, inheriting connections."""

    old: str
    new: str
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class When:
    """``when (EVENT) { actions }`` (section 4.2.3)."""

    event: str
    actions: tuple["Statement", ...]
    line: int = field(default=0, compare=False)


Statement = NewInstances | RemoveInstance | Connect | Disconnect | DisconnectAll | Insert | Replace | When


@dataclass(frozen=True)
class StreamDef:
    """``[main] stream name { statements }`` (Figure 4-5)."""

    name: str
    body: tuple[Statement, ...]
    is_main: bool = False


@dataclass(frozen=True)
class Script:
    """A whole MCL source unit."""

    streamlets: tuple[StreamletDef, ...] = ()
    channels: tuple[ChannelDef, ...] = ()
    streams: tuple[StreamDef, ...] = ()

    def streamlet(self, name: str) -> StreamletDef | None:
        """The streamlet definition named ``name``, or None."""
        for d in self.streamlets:
            if d.name == name:
                return d
        return None

    def channel(self, name: str) -> ChannelDef | None:
        """The channel definition named ``name``, or None."""
        for d in self.channels:
            if d.name == name:
                return d
        return None

    def stream(self, name: str) -> StreamDef | None:
        """The stream definition named ``name``, or None."""
        for d in self.streams:
            if d.name == name:
                return d
        return None

    def main_stream(self) -> StreamDef | None:
        """The ``main`` stream, or the only stream, or None."""
        for d in self.streams:
            if d.is_main:
                return d
        return self.streams[0] if len(self.streams) == 1 else None
