"""The MCL compiler (section 3.3.6).

Turns a parsed :class:`~repro.mcl.astnodes.Script` into one
:class:`~repro.mcl.config.ConfigurationTable` per stream:

* resolves instance declarations against streamlet/channel definitions
  (from the script itself plus any externally supplied directory),
* simulates the initial statement sequence, validating connections — port
  existence, direction, MIME compatibility (section 4.4.1) — and tracking
  which ports/channels are bound,
* expands **recursive compositions** (section 4.4.2): instantiating a
  definition whose name matches a stream inlines that stream with
  ``instance$inner`` name prefixing and binds the composite's declared
  ports to the child's unbound inner ports,
* validates ``when`` handlers (names, ports, types, event vocabulary) but
  leaves their *state* effects to the runtime, since event order is
  dynamic.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import MclCompileError, MclNameError
from repro.events import DEFAULT_CATALOG, EventCatalog
from repro.mcl import astnodes as ast
from repro.mcl.config import ChannelEntry, CompiledScript, ConfigurationTable, Link
from repro.mcl.parser import parse_script
from repro.mcl.typecheck import check_connection
from repro.mime.mediatype import ANY
from repro.mime.registry import TypeRegistry, default_registry

#: "the system automatically creates a channel instance of an asynchronous
#: BK type with 100 Kbytes of buffer" (section 4.2.3)
DEFAULT_CHANNEL_DEF = ast.ChannelDef(
    name="__default",
    in_port=ast.PortDecl(ast.PortDirection.IN, "cin", ANY),
    out_port=ast.PortDecl(ast.PortDirection.OUT, "cout", ANY),
    sync=ast.ChannelSync.ASYNC,
    category=ast.ChannelCategory.BK,
    buffer_kb=100,
    description="compiler-generated default channel",
)


class _StreamState:
    """Mutable composition state while simulating a stream body."""

    def __init__(self):
        self.instances: dict[str, ast.StreamletDef] = {}
        self.channels: dict[str, ChannelEntry] = {}
        self.used_channels: set[str] = set()
        self.links: list[Link] = []
        self.bound_ports: set[tuple[str, str]] = set()
        # composite instance -> declared port name -> (inner PortRef, decl)
        self.composite_ports: dict[str, dict[str, tuple[ast.PortRef, ast.PortDecl]]] = {}
        # event -> renamed actions hoisted from expanded child streams
        self.hoisted_handlers: dict[str, tuple[ast.Statement, ...]] = {}
        self.auto_counter = 0

    def is_declared(self, name: str) -> bool:
        return name in self.instances or name in self.channels or name in self.composite_ports


class MclCompiler:
    """Compile MCL scripts against a definition environment.

    Parameters
    ----------
    registry:
        MIME hierarchy used for compatibility checks (default: Figure 4-1).
    catalog:
        Event vocabulary for ``when`` clauses (default: Table 6-1).
    extra_streamlets / extra_channels:
        Definitions from the Streamlet Directory, available in addition to
        the ones declared in the script.
    """

    def __init__(
        self,
        registry: TypeRegistry | None = None,
        catalog: EventCatalog | None = None,
        extra_streamlets: dict[str, ast.StreamletDef] | None = None,
        extra_channels: dict[str, ast.ChannelDef] | None = None,
    ):
        self._registry = registry if registry is not None else default_registry()
        self._catalog = catalog if catalog is not None else DEFAULT_CATALOG
        self._extra_streamlets = dict(extra_streamlets or {})
        self._extra_channels = dict(extra_channels or {})

    # -- public API -----------------------------------------------------------------

    def compile(self, source: ast.Script | str) -> CompiledScript:
        """Compile a script (text or AST) into per-stream configuration tables."""
        script = parse_script(source) if isinstance(source, str) else source
        self._check_unique_definitions(script)
        tables = {
            stream.name: self._compile_stream(script, stream, expanding=frozenset())
            for stream in script.streams
        }
        main = script.main_stream()
        return CompiledScript(tables=tables, main=main.name if main else None)

    # -- definition environment --------------------------------------------------------

    def _check_unique_definitions(self, script: ast.Script) -> None:
        seen: set[str] = set()
        for d in script.streamlets:
            if d.name in seen:
                raise MclNameError(f"duplicate streamlet definition {d.name!r}")
            seen.add(d.name)
        seen.clear()
        for d in script.channels:
            if d.name in seen:
                raise MclNameError(f"duplicate channel definition {d.name!r}")
            seen.add(d.name)
        seen.clear()
        for d in script.streams:
            if d.name in seen:
                raise MclNameError(f"duplicate stream definition {d.name!r}")
            seen.add(d.name)

    def _lookup_streamlet(self, script: ast.Script, name: str) -> ast.StreamletDef | None:
        return script.streamlet(name) or self._extra_streamlets.get(name)

    def _lookup_channel(self, script: ast.Script, name: str) -> ast.ChannelDef | None:
        return script.channel(name) or self._extra_channels.get(name)

    # -- stream compilation -----------------------------------------------------------------

    def _compile_stream(
        self, script: ast.Script, stream: ast.StreamDef, *, expanding: frozenset[str]
    ) -> ConfigurationTable:
        if stream.name in expanding:
            chain = " -> ".join([*expanding, stream.name])
            raise MclCompileError(f"recursive composition cycle: {chain}")
        state = _StreamState()
        handlers: dict[str, tuple[ast.Statement, ...]] = {}
        for stmt in stream.body:
            if isinstance(stmt, ast.When):
                event = self._canonical_event(stmt.event, stmt.line)
                if event in handlers:
                    raise MclCompileError(
                        f"stream {stream.name}: duplicate handler for {event}", stmt.line
                    )
                handlers[event] = self._validate_handler(script, state, stmt)
            else:
                self._apply_statement(script, state, stmt, expanding=expanding | {stream.name})

        # handlers hoisted from expanded composites run before the parent's
        # own actions for the same event
        for event, hoisted in state.hoisted_handlers.items():
            handlers[event] = hoisted + handlers.get(event, ())

        exposed_in, exposed_out = self._exposed_ports(state)
        table = ConfigurationTable(
            stream_name=stream.name,
            instances=dict(state.instances),
            channels=dict(state.channels),
            links=list(state.links),
            handlers=handlers,
            exposed_in=exposed_in,
            exposed_out=exposed_out,
            streamlet_defs={d.name: d for d in script.streamlets} | self._extra_streamlets,
            channel_defs={d.name: d for d in script.channels} | self._extra_channels,
        )
        return table

    # -- statement simulation --------------------------------------------------------------------

    def _apply_statement(
        self,
        script: ast.Script,
        state: _StreamState,
        stmt: ast.Statement,
        *,
        expanding: frozenset[str],
    ) -> None:
        if isinstance(stmt, ast.NewInstances):
            self._apply_new(script, state, stmt, expanding=expanding)
        elif isinstance(stmt, ast.Connect):
            self._apply_connect(state, stmt)
        elif isinstance(stmt, ast.Disconnect):
            self._apply_disconnect(state, stmt)
        elif isinstance(stmt, ast.DisconnectAll):
            self._apply_disconnect_all(state, stmt)
        elif isinstance(stmt, ast.RemoveInstance):
            self._apply_remove(state, stmt)
        elif isinstance(stmt, ast.Insert | ast.Replace):
            raise MclCompileError(
                f"{type(stmt).__name__.lower()} is a reconfiguration primitive; "
                "it is only valid inside a when-block",
                stmt.line,
            )
        else:  # pragma: no cover - parser produces no other kinds
            raise MclCompileError(f"unsupported statement {stmt!r}")

    def _apply_new(
        self,
        script: ast.Script,
        state: _StreamState,
        stmt: ast.NewInstances,
        *,
        expanding: frozenset[str],
    ) -> None:
        for name in stmt.names:
            if state.is_declared(name):
                raise MclNameError(f"instance name {name!r} already in use", stmt.line)
            if stmt.kind == "channel":
                definition = self._lookup_channel(script, stmt.definition)
                if definition is None:
                    raise MclNameError(
                        f"unknown channel definition {stmt.definition!r}", stmt.line
                    )
                state.channels[name] = ChannelEntry(name=name, definition=definition)
                continue
            # streamlet: stream names take precedence -> recursive composition
            child_stream = script.stream(stmt.definition)
            if child_stream is not None:
                self._expand_composite(script, state, name, child_stream, stmt, expanding)
                continue
            definition = self._lookup_streamlet(script, stmt.definition)
            if definition is None:
                raise MclNameError(
                    f"unknown streamlet definition {stmt.definition!r}", stmt.line
                )
            state.instances[name] = definition

    def _expand_composite(
        self,
        script: ast.Script,
        state: _StreamState,
        inst_name: str,
        child_stream: ast.StreamDef,
        stmt: ast.NewInstances,
        expanding: frozenset[str],
    ) -> None:
        child = self._compile_stream(script, child_stream, expanding=expanding)
        iface = self._lookup_streamlet(script, child_stream.name)
        if iface is None:
            iface = self._synthesize_interface(child)
        declared_in = iface.inputs()
        declared_out = iface.outputs()
        if len(declared_in) != len(child.exposed_in) or len(declared_out) != len(child.exposed_out):
            raise MclCompileError(
                f"composite {child_stream.name}: interface declares "
                f"{len(declared_in)} in / {len(declared_out)} out ports but the stream "
                f"exposes {len(child.exposed_in)} in / {len(child.exposed_out)} out",
                stmt.line,
            )

        prefix = f"{inst_name}$"
        rename = lambda inner: prefix + inner  # noqa: E731

        for inner_name, inner_def in child.instances.items():
            state.instances[rename(inner_name)] = inner_def
        for inner_name, entry in child.channels.items():
            state.channels[rename(inner_name)] = ChannelEntry(
                name=rename(inner_name), definition=entry.definition, auto=entry.auto
            )
            state.used_channels.add(rename(inner_name))
        for link in child.links:
            renamed = Link(
                source=ast.PortRef(rename(link.source.instance), link.source.port),
                sink=ast.PortRef(rename(link.sink.instance), link.sink.port),
                channel=rename(link.channel),
                mediatype=link.mediatype,
            )
            state.links.append(renamed)
            state.bound_ports.add((renamed.source.instance, renamed.source.port))
            state.bound_ports.add((renamed.sink.instance, renamed.sink.port))

        # bind declared composite ports to the child's exposed inner ports,
        # checking type compatibility in the message-flow direction
        bindings: dict[str, tuple[ast.PortRef, ast.PortDecl]] = {}
        for decl, inner in zip(declared_in, child.exposed_in):
            inner_decl = child.instances[inner.instance].port(inner.port)
            assert inner_decl is not None
            if not self._registry.compatible(decl.mediatype, inner_decl.mediatype):
                raise MclCompileError(
                    f"composite {child_stream.name}: declared in port {decl.name} "
                    f"({decl.mediatype}) is not accepted by inner port {inner} "
                    f"({inner_decl.mediatype})",
                    stmt.line,
                )
            bindings[decl.name] = (ast.PortRef(rename(inner.instance), inner.port), decl)
        for decl, inner in zip(declared_out, child.exposed_out):
            inner_decl = child.instances[inner.instance].port(inner.port)
            assert inner_decl is not None
            if not self._registry.compatible(inner_decl.mediatype, decl.mediatype):
                raise MclCompileError(
                    f"composite {child_stream.name}: inner port {inner} "
                    f"({inner_decl.mediatype}) does not satisfy declared out port "
                    f"{decl.name} ({decl.mediatype})",
                    stmt.line,
                )
            bindings[decl.name] = (ast.PortRef(rename(inner.instance), inner.port), decl)
        state.composite_ports[inst_name] = bindings

        # child event handlers are hoisted with renamed references so the
        # composite keeps adapting inside its parent
        # (merged under the same events; parent handlers validated separately)
        self._hoist_child_handlers(state, child, rename)

    def _hoist_child_handlers(self, state: _StreamState, child, rename) -> None:
        for event, actions in child.handlers.items():
            renamed_actions = tuple(self._rename_statement(a, rename) for a in actions)
            state.hoisted_handlers[event] = (
                state.hoisted_handlers.get(event, ()) + renamed_actions
            )

    @staticmethod
    def _rename_statement(stmt: ast.Statement, rename) -> ast.Statement:
        def rp(ref: ast.PortRef) -> ast.PortRef:
            return ast.PortRef(rename(ref.instance), ref.port)

        if isinstance(stmt, ast.Connect):
            return replace(
                stmt,
                source=rp(stmt.source),
                sink=rp(stmt.sink),
                channel=rename(stmt.channel) if stmt.channel else None,
            )
        if isinstance(stmt, ast.Disconnect):
            return replace(stmt, source=rp(stmt.source), sink=rp(stmt.sink))
        if isinstance(stmt, ast.DisconnectAll):
            return replace(stmt, instance=rename(stmt.instance))
        if isinstance(stmt, ast.Insert):
            return replace(
                stmt, source=rp(stmt.source), sink=rp(stmt.sink), instance=rename(stmt.instance)
            )
        if isinstance(stmt, ast.Replace):
            return replace(stmt, old=rename(stmt.old), new=rename(stmt.new))
        if isinstance(stmt, ast.RemoveInstance):
            return replace(stmt, name=rename(stmt.name))
        if isinstance(stmt, ast.NewInstances):
            return replace(stmt, names=tuple(rename(n) for n in stmt.names))
        raise MclCompileError(f"cannot rename statement {stmt!r}")  # pragma: no cover

    def _synthesize_interface(self, child: ConfigurationTable) -> ast.StreamletDef:
        """Derive a composite interface when none is declared (section 5.1.4)."""
        ports: list[ast.PortDecl] = []
        for index, ref in enumerate(child.exposed_in):
            decl = child.instances[ref.instance].port(ref.port)
            assert decl is not None
            ports.append(ast.PortDecl(ast.PortDirection.IN, f"pi{index}", decl.mediatype))
        for index, ref in enumerate(child.exposed_out):
            decl = child.instances[ref.instance].port(ref.port)
            assert decl is not None
            ports.append(ast.PortDecl(ast.PortDirection.OUT, f"po{index}", decl.mediatype))
        return ast.StreamletDef(
            name=child.stream_name,
            ports=tuple(ports),
            kind=ast.StreamletKind.STATEFUL,
            library=f"mcl/{child.stream_name}",
            description="synthesised composite interface",
        )

    # -- connect / disconnect -------------------------------------------------------------------------

    def _resolve_endpoint(
        self, state: _StreamState, ref: ast.PortRef, line: int
    ) -> tuple[ast.PortRef, ast.StreamletDef]:
        """Map a (possibly composite) port reference to a concrete one."""
        if ref.instance in state.composite_ports:
            bindings = state.composite_ports[ref.instance]
            if ref.port not in bindings:
                raise MclNameError(
                    f"composite {ref.instance} has no port {ref.port!r}", line
                )
            inner_ref, _decl = bindings[ref.port]
            return inner_ref, state.instances[inner_ref.instance]
        if ref.instance in state.channels:
            raise MclCompileError(
                f"{ref.instance} is a channel; connect() endpoints must be streamlets "
                "(the channel goes in the third argument)",
                line,
            )
        definition = state.instances.get(ref.instance)
        if definition is None:
            raise MclNameError(f"unknown instance {ref.instance!r}", line)
        return ref, definition

    def _apply_connect(self, state: _StreamState, stmt: ast.Connect) -> None:
        source, source_def = self._resolve_endpoint(state, stmt.source, stmt.line)
        sink, sink_def = self._resolve_endpoint(state, stmt.sink, stmt.line)
        if stmt.channel is not None:
            entry = state.channels.get(stmt.channel)
            if entry is None:
                raise MclNameError(f"unknown channel instance {stmt.channel!r}", stmt.line)
            if stmt.channel in state.used_channels:
                raise MclCompileError(
                    f"channel {stmt.channel!r} already carries a connection", stmt.line
                )
            channel_name = stmt.channel
            channel_def = entry.definition
        else:
            channel_name = f"__auto{state.auto_counter}"
            state.auto_counter += 1
            state.channels[channel_name] = ChannelEntry(
                name=channel_name, definition=DEFAULT_CHANNEL_DEF, auto=True
            )
            channel_def = DEFAULT_CHANNEL_DEF
        src_port = check_connection(
            self._registry, source_def, source, sink_def, sink, channel_def, line=stmt.line
        )
        for endpoint in (source, sink):
            if (endpoint.instance, endpoint.port) in state.bound_ports:
                raise MclCompileError(f"port {endpoint} is already connected", stmt.line)
        state.links.append(
            Link(source=source, sink=sink, channel=channel_name, mediatype=src_port.mediatype)
        )
        state.bound_ports.add((source.instance, source.port))
        state.bound_ports.add((sink.instance, sink.port))
        state.used_channels.add(channel_name)

    def _apply_disconnect(self, state: _StreamState, stmt: ast.Disconnect) -> None:
        source, _ = self._resolve_endpoint(state, stmt.source, stmt.line)
        sink, _ = self._resolve_endpoint(state, stmt.sink, stmt.line)
        for index, link in enumerate(state.links):
            if link.source == source and link.sink == sink:
                self._drop_link(state, index)
                return
        raise MclCompileError(f"no connection between {source} and {sink}", stmt.line)

    def _apply_disconnect_all(self, state: _StreamState, stmt: ast.DisconnectAll) -> None:
        if not state.is_declared(stmt.instance):
            raise MclNameError(f"unknown instance {stmt.instance!r}", stmt.line)
        indices = [
            i
            for i, link in enumerate(state.links)
            if stmt.instance in (link.source.instance, link.sink.instance)
        ]
        for index in reversed(indices):
            self._drop_link(state, index)

    def _drop_link(self, state: _StreamState, index: int) -> None:
        link = state.links.pop(index)
        state.bound_ports.discard((link.source.instance, link.source.port))
        state.bound_ports.discard((link.sink.instance, link.sink.port))
        state.used_channels.discard(link.channel)
        entry = state.channels.get(link.channel)
        if entry is not None and entry.auto:
            del state.channels[link.channel]

    def _apply_remove(self, state: _StreamState, stmt: ast.RemoveInstance) -> None:
        if stmt.kind == "extract":
            # detach from the topology; the instance stays declared (dormant)
            if stmt.name not in state.instances:
                raise MclNameError(f"unknown streamlet instance {stmt.name!r}", stmt.line)
            self._apply_disconnect_all(state, ast.DisconnectAll(stmt.name, line=stmt.line))
            return
        if stmt.kind == "channel":
            entry = state.channels.get(stmt.name)
            if entry is None:
                raise MclNameError(f"unknown channel instance {stmt.name!r}", stmt.line)
            if stmt.name in state.used_channels:
                raise MclCompileError(
                    f"channel {stmt.name!r} still carries a connection", stmt.line
                )
            del state.channels[stmt.name]
            return
        if stmt.name in state.composite_ports:
            raise MclCompileError(
                f"composite instance {stmt.name!r} cannot be removed statically", stmt.line
            )
        if stmt.name not in state.instances:
            raise MclNameError(f"unknown streamlet instance {stmt.name!r}", stmt.line)
        attached = [
            link
            for link in state.links
            if stmt.name in (link.source.instance, link.sink.instance)
        ]
        if attached:
            raise MclCompileError(
                f"streamlet {stmt.name!r} is still connected; disconnect first", stmt.line
            )
        del state.instances[stmt.name]

    # -- when-handler validation ------------------------------------------------------------------------

    def _canonical_event(self, name: str, line: int) -> str:
        canonical = self._catalog.canonical(name)
        if canonical not in self._catalog:
            raise MclCompileError(
                f"unknown event {name!r}; register it in the EventCatalog first", line
            )
        return canonical

    def _validate_handler(
        self, script: ast.Script, state: _StreamState, when: ast.When
    ) -> tuple[ast.Statement, ...]:
        """Name/port/type validation of handler actions.

        Connectivity effects are not simulated — event firing order is a
        runtime matter — but every referenced definition, instance, port,
        and type relation must already make sense.  Returns the actions
        with composite port references rewritten to their concrete inner
        ports, ready for runtime replay.
        """
        local_instances: dict[str, ast.StreamletDef] = {}
        local_channels: set[str] = set()
        resolved_actions: list[ast.Statement] = []

        def find_def(ref: ast.PortRef, line: int) -> ast.StreamletDef:
            if ref.instance in local_instances:
                return local_instances[ref.instance]
            resolved, definition = self._resolve_endpoint(state, ref, line)
            del resolved
            return definition

        def resolve_ref(ref: ast.PortRef, line: int) -> ast.PortRef:
            if ref.instance in local_instances:
                return ref
            resolved, _definition = self._resolve_endpoint(state, ref, line)
            return resolved

        for action in when.actions:
            if isinstance(action, ast.NewInstances):
                for name in action.names:
                    if state.is_declared(name) or name in local_instances or name in local_channels:
                        raise MclNameError(f"instance name {name!r} already in use", action.line)
                    if action.kind == "channel":
                        if self._lookup_channel(script, action.definition) is None:
                            raise MclNameError(
                                f"unknown channel definition {action.definition!r}", action.line
                            )
                        local_channels.add(name)
                    else:
                        if script.stream(action.definition) is not None:
                            raise MclCompileError(
                                "composite streamlets cannot be instantiated inside "
                                "a when-block",
                                action.line,
                            )
                        definition = self._lookup_streamlet(script, action.definition)
                        if definition is None:
                            raise MclNameError(
                                f"unknown streamlet definition {action.definition!r}",
                                action.line,
                            )
                        local_instances[name] = definition
            elif isinstance(action, ast.Connect):
                source_def = find_def(action.source, action.line)
                sink_def = find_def(action.sink, action.line)
                if action.channel is not None:
                    if (
                        action.channel not in state.channels
                        and action.channel not in local_channels
                    ):
                        raise MclNameError(
                            f"unknown channel instance {action.channel!r}", action.line
                        )
                    entry = state.channels.get(action.channel)
                    channel_def = entry.definition if entry else DEFAULT_CHANNEL_DEF
                else:
                    channel_def = DEFAULT_CHANNEL_DEF
                src = resolve_ref(action.source, action.line)
                dst = resolve_ref(action.sink, action.line)
                check_connection(
                    self._registry, source_def, src, sink_def, dst, channel_def,
                    line=action.line,
                )
                action = replace(action, source=src, sink=dst)
            elif isinstance(action, ast.Disconnect):
                find_def(action.source, action.line)
                find_def(action.sink, action.line)
                action = replace(
                    action,
                    source=resolve_ref(action.source, action.line),
                    sink=resolve_ref(action.sink, action.line),
                )
            elif isinstance(action, ast.DisconnectAll):
                if not state.is_declared(action.instance) and action.instance not in local_instances:
                    raise MclNameError(f"unknown instance {action.instance!r}", action.line)
            elif isinstance(action, ast.RemoveInstance):
                known = (
                    state.is_declared(action.name)
                    or action.name in local_instances
                    or action.name in local_channels
                )
                if not known:
                    raise MclNameError(f"unknown instance {action.name!r}", action.line)
            elif isinstance(action, ast.Insert):
                find_def(action.source, action.line)
                find_def(action.sink, action.line)
                if action.instance not in local_instances and action.instance not in state.instances:
                    raise MclNameError(f"unknown instance {action.instance!r}", action.line)
                action = replace(
                    action,
                    source=resolve_ref(action.source, action.line),
                    sink=resolve_ref(action.sink, action.line),
                )
            elif isinstance(action, ast.Replace):
                for name in (action.old, action.new):
                    if name not in local_instances and name not in state.instances:
                        raise MclNameError(f"unknown instance {name!r}", action.line)
            else:  # pragma: no cover
                raise MclCompileError(f"illegal action in when-block: {action!r}", when.line)
            resolved_actions.append(action)
        return tuple(resolved_actions)

    # -- exposed ports ------------------------------------------------------------------------------------

    @staticmethod
    def _exposed_ports(
        state: _StreamState,
    ) -> tuple[tuple[ast.PortRef, ...], tuple[ast.PortRef, ...]]:
        """Unbound ports of *connected* instances, in declaration order.

        Fully unconnected instances are dormant (reserved for event-time
        insertion, like the dashed entities of Figure 4-6) and contribute
        no composite ports.
        """
        if state.links:
            connected: set[str] = set()
            for link in state.links:
                connected.add(link.source.instance)
                connected.add(link.sink.instance)
        else:
            # a composition with no internal connections *is* its
            # streamlets: expose everything (e.g. a single-streamlet stream)
            connected = set(state.instances)
        exposed_in: list[ast.PortRef] = []
        exposed_out: list[ast.PortRef] = []
        for name, definition in state.instances.items():
            if name not in connected:
                continue
            for port in definition.ports:
                if (name, port.name) in state.bound_ports:
                    continue
                ref = ast.PortRef(name, port.name)
                if port.direction is ast.PortDirection.IN:
                    exposed_in.append(ref)
                else:
                    exposed_out.append(ref)
        return tuple(exposed_in), tuple(exposed_out)


def compile_script(
    source: ast.Script | str,
    *,
    registry: TypeRegistry | None = None,
    catalog: EventCatalog | None = None,
    extra_streamlets: dict[str, ast.StreamletDef] | None = None,
    extra_channels: dict[str, ast.ChannelDef] | None = None,
) -> CompiledScript:
    """One-shot convenience wrapper around :class:`MclCompiler`."""
    compiler = MclCompiler(
        registry=registry,
        catalog=catalog,
        extra_streamlets=extra_streamlets,
        extra_channels=extra_channels,
    )
    return compiler.compile(source)
