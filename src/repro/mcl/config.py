"""Configuration tables — the compiler's output, the coordinator's input.

The Coordination Manager "maintains a configuration table for each instance
of streamlet composition ... derived from the compilation of the MCL
script" (section 3.3).  A :class:`ConfigurationTable` records:

* which streamlet/channel instances exist and from which definitions,
* the initial link topology (who feeds whom through which channel),
* validated event handlers (the ``when`` blocks, kept as AST statements and
  replayed by the reconfiguration engine),
* the stream's *exposed* ports — unbound ports of connected instances,
  which become the composite streamlet interface under recursive
  composition (section 5.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mcl import astnodes as ast
from repro.mime.mediatype import MediaType


@dataclass(frozen=True)
class ChannelEntry:
    """A channel instance in a stream."""

    name: str
    definition: ast.ChannelDef
    auto: bool = False  # True for compiler-created default channels


@dataclass(frozen=True)
class Link:
    """One routed connection: source out-port → channel → sink in-port."""

    source: ast.PortRef
    sink: ast.PortRef
    channel: str
    mediatype: MediaType  # the type actually carried (the source port type)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.source} --[{self.channel}]--> {self.sink}"


@dataclass
class ConfigurationTable:
    """Everything the runtime needs to deploy and adapt one stream."""

    stream_name: str
    instances: dict[str, ast.StreamletDef] = field(default_factory=dict)
    channels: dict[str, ChannelEntry] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)
    handlers: dict[str, tuple[ast.Statement, ...]] = field(default_factory=dict)
    exposed_in: tuple[ast.PortRef, ...] = ()
    exposed_out: tuple[ast.PortRef, ...] = ()
    #: definitions visible to event-time instantiation (``new-streamlet``
    #: inside a ``when`` block), keyed by definition name
    streamlet_defs: dict[str, ast.StreamletDef] = field(default_factory=dict)
    channel_defs: dict[str, ast.ChannelDef] = field(default_factory=dict)

    # -- queries used by the analyses and the runtime -------------------------------

    def links_from(self, instance: str) -> list[Link]:
        """Every link whose source is ``instance``."""
        return [l for l in self.links if l.source.instance == instance]

    def links_to(self, instance: str) -> list[Link]:
        """Every link whose sink is ``instance``."""
        return [l for l in self.links if l.sink.instance == instance]

    def link_between(self, source: ast.PortRef, sink: ast.PortRef) -> Link | None:
        """The link joining ``source`` to ``sink``, or None."""
        for link in self.links:
            if link.source == source and link.sink == sink:
                return link
        return None

    def connected_instances(self) -> set[str]:
        """Instances that participate in at least one link."""
        names: set[str] = set()
        for link in self.links:
            names.add(link.source.instance)
            names.add(link.sink.instance)
        return names

    def dormant_instances(self) -> set[str]:
        """Declared but fully unconnected (optional/dashed entities)."""
        return set(self.instances) - self.connected_instances()

    def subscribed_events(self) -> frozenset[str]:
        """The canonical event names this stream handles."""
        return frozenset(self.handlers)


@dataclass
class CompiledScript:
    """All stream tables from one source unit, plus the entry point."""

    tables: dict[str, ConfigurationTable]
    main: str | None

    def main_table(self) -> ConfigurationTable:
        """The configuration table of the main stream (KeyError if none)."""
        if self.main is None:
            raise KeyError("script has no main stream")
        return self.tables[self.main]
