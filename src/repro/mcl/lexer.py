"""MCL lexer.

Comments are ``//`` to end of line.  Block comments are deliberately not
supported: ``/*`` is indistinguishable from the wildcard media types
(``text/*``) that port declarations use constantly.  Identifiers may
contain hyphens (``new-streamlet``, ``octet-stream``) and underscores.
"""

from __future__ import annotations

from repro.errors import MclLexError
from repro.mcl.tokens import Token, TokenKind

_SINGLE = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "*": TokenKind.STAR,
    "=": TokenKind.EQUALS,
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/":
            tokens.append(Token(TokenKind.SLASH, "/", line, col))
            i += 1
            col += 1
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line, col))
            i += 1
            col += 1
            continue
        if ch == '"':
            start_line, start_col = line, col
            i += 1
            col += 1
            chars: list[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\n":
                    raise MclLexError("unterminated string literal", start_line, start_col)
                if source[i] == "\\" and i + 1 < n:
                    esc = source[i + 1]
                    chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    i += 2
                    col += 2
                    continue
                chars.append(source[i])
                i += 1
                col += 1
            if i >= n:
                raise MclLexError("unterminated string literal", start_line, start_col)
            i += 1
            col += 1
            tokens.append(Token(TokenKind.STRING, "".join(chars), start_line, start_col))
            continue
        if ch.isdigit():
            start = i
            start_col = col
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
                col += 1
            text = source[start:i]
            if text.count(".") > 1:
                raise MclLexError(f"malformed number {text!r}", line, start_col)
            tokens.append(Token(TokenKind.NUMBER, text, line, start_col))
            continue
        if _is_ident_start(ch):
            start = i
            start_col = col
            while i < n and _is_ident_char(source[i]):
                i += 1
                col += 1
            tokens.append(Token(TokenKind.IDENT, source[start:i], line, start_col))
            continue
        raise MclLexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
