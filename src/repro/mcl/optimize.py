"""Post-compile optimizer: plan fusion of synchronous streamlet chains.

The compiler emits a :class:`~repro.mcl.config.ConfigurationTable` that
maps one streamlet instance to one runtime node and one channel to one
``MessageQueue``.  That is the faithful execution model, but it taxes
every hop with a queue post/claim and a scheduler dispatch even when the
channel is a zero-length rendezvous that can never buffer anything.
:func:`optimize` runs right after compilation (and after
:func:`repro.semantics.verify`, which it assumes has passed) and plans
which maximal synchronous chains the runtime may collapse into single
fused nodes, stepping the whole chain in one dispatch with the interior
channels elided.

The plan is *advisory metadata*, not a table rewrite: the configuration
table keeps every instance, channel, and link, so reconfiguration
handlers, semantic re-verification, and introspection keep seeing the
structure the script declared.  The runtime applies the same legality
query (:mod:`repro.semantics.fusion`) to its live wiring when it builds
each topology snapshot, so the plan here always agrees with what the
stream actually fuses — and a reconfiguration that invalidates a chain
simply makes the next snapshot stop fusing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mcl.config import ConfigurationTable
from repro.semantics import fusion

__all__ = ["FusedGroup", "FusionPlan", "optimize"]


@dataclass(frozen=True)
class FusedGroup:
    """One maximal fusable chain: its members and the channels it elides."""

    members: tuple[str, ...]
    #: interior channel instances (len(members) - 1 of them, in hop order)
    elided_channels: tuple[str, ...]

    @property
    def head(self) -> str:
        """The member that keeps receiving from outside the group."""
        return self.members[0]

    @property
    def tail(self) -> str:
        """The member whose emissions leave the group."""
        return self.members[-1]

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class FusionPlan:
    """Everything :func:`optimize` decided about one configuration table."""

    stream_name: str
    groups: tuple[FusedGroup, ...] = ()
    #: instance → reason it can never join a fused chain (diagnostics)
    barred: dict[str, str] = field(default_factory=dict)

    def group_of(self, instance: str) -> FusedGroup | None:
        """The fused group containing ``instance``, or None."""
        for group in self.groups:
            if instance in group.members:
                return group
        return None

    @property
    def fused_instances(self) -> frozenset[str]:
        """Every instance that is a member of some fused group."""
        return frozenset(m for g in self.groups for m in g.members)

    @property
    def elided_hop_count(self) -> int:
        """Total queue hops the plan removes."""
        return sum(len(g.elided_channels) for g in self.groups)


def _interior_channels(table: ConfigurationTable, members: tuple[str, ...]) -> tuple[str, ...]:
    """The channel instance joining each consecutive member pair."""
    channels: list[str] = []
    for source, sink in zip(members, members[1:]):
        for link in table.links:
            if link.source.instance == source and link.sink.instance == sink:
                channels.append(link.channel)
                break
        else:  # pragma: no cover - legality guarantees the link exists
            raise ValueError(f"no link between fused members {source!r} and {sink!r}")
    return tuple(channels)


def optimize(table: ConfigurationTable) -> FusionPlan:
    """Plan fusion for one compiled, verified configuration table.

    Returns a :class:`FusionPlan` whose groups are the maximal chains of
    synchronously-coupled streamlets with no feedback loop, no mutual
    exclusion inside a chain, and no optional/extractable member.  The
    ``barred`` map explains — per instance that sits on at least one
    synchronous link but was not fused — which condition stopped it.
    """
    chains = fusion.fusable_chains(table)
    groups = tuple(
        FusedGroup(members=chain, elided_channels=_interior_channels(table, chain))
        for chain in chains
    )
    fused = {m for g in groups for m in g.members}
    optional = fusion.optional_instances(table.handlers)

    barred: dict[str, str] = {}
    for link in table.links:
        entry = table.channels.get(link.channel)
        if entry is None or not fusion.is_synchronous(entry.definition):
            continue
        for name in (link.source.instance, link.sink.instance):
            if name in fused or name in barred:
                continue
            if name in optional:
                barred[name] = "optional: extracted by a reconfiguration handler"
            elif len(table.links_from(name)) + sum(
                1 for r in table.exposed_out if r.instance == name
            ) > 1 or len(table.links_to(name)) + sum(
                1 for r in table.exposed_in if r.instance == name
            ) > 1:
                barred[name] = "fan: more than one wired input or output"
            else:
                barred[name] = "chain too short or blocked by a neighbour"

    return FusionPlan(stream_name=table.stream_name, groups=groups, barred=barred)
