"""Recursive-descent parser for MCL.

Grammar (derived from Figures 4-3..4-5 and the section 4.3 examples)::

    script        := (streamlet_def | channel_def | stream_def)* EOF
    streamlet_def := "streamlet" IDENT "{" port_block [attribute_block] "}"
    channel_def   := "channel" IDENT "{" port_block [attribute_block] "}"
    stream_def    := ["main"] "stream" IDENT "{" statement* "}"
    port_block    := "port" "{" port_decl* "}"
    port_decl     := ("in"|"out") IDENT ":" media_type ";"
    media_type    := (IDENT|"*") ["/" (IDENT|"*")]
    attribute_block := "attribute" "{" (IDENT "=" value ";")* "}"
    statement     := decl | action ";" | when
    decl          := ("streamlet"|"channel") IDENT ("," IDENT)*
                     "=" ("new-streamlet"|"new-channel"|"new" "channel")
                     "(" IDENT ")" ";"
    action        := connect | disconnect | disconnectall | insert
                   | remove | replace | remove-streamlet | remove-channel
    when          := "when" "(" IDENT ")" "{" statement* "}"

``new channel`` (with a space) appears in Figure 4-8 alongside
``new-streamlet``; both spellings are accepted.
"""

from __future__ import annotations

from repro.errors import MclParseError
from repro.mcl import astnodes as ast
from repro.mcl.lexer import tokenize
from repro.mcl.tokens import Token, TokenKind
from repro.mime.mediatype import MediaType


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _check(self, kind: TokenKind, text: str | None = None) -> bool:
        tok = self._cur
        return tok.kind is kind and (text is None or tok.text == text)

    def _accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        tok = self._cur
        if not self._check(kind, text):
            want = text or kind.name
            raise MclParseError(
                f"expected {want!r}, found {tok.text or tok.kind.name!r}",
                tok.line,
                tok.column,
            )
        return self._advance()

    def _expect_ident(self, *, what: str) -> Token:
        tok = self._cur
        if tok.kind is not TokenKind.IDENT:
            raise MclParseError(f"expected {what}, found {tok.text or 'EOF'!r}", tok.line, tok.column)
        return self._advance()

    # -- entry -------------------------------------------------------------------

    def parse_script(self) -> ast.Script:
        streamlets: list[ast.StreamletDef] = []
        channels: list[ast.ChannelDef] = []
        streams: list[ast.StreamDef] = []
        while not self._check(TokenKind.EOF):
            tok = self._cur
            if self._check(TokenKind.IDENT, "streamlet"):
                streamlets.append(self._parse_streamlet_def())
            elif self._check(TokenKind.IDENT, "channel"):
                channels.append(self._parse_channel_def())
            elif self._check(TokenKind.IDENT, "stream") or self._check(TokenKind.IDENT, "main"):
                streams.append(self._parse_stream_def())
            else:
                raise MclParseError(
                    f"expected a definition, found {tok.text!r}", tok.line, tok.column
                )
        mains = [s for s in streams if s.is_main]
        if len(mains) > 1:
            raise MclParseError(f"multiple main streams: {', '.join(s.name for s in mains)}")
        return ast.Script(tuple(streamlets), tuple(channels), tuple(streams))

    # -- definitions ----------------------------------------------------------------

    def _parse_streamlet_def(self) -> ast.StreamletDef:
        self._expect(TokenKind.IDENT, "streamlet")
        name = self._expect_ident(what="streamlet name")
        self._expect(TokenKind.LBRACE)
        ports = self._parse_port_block()
        attrs = self._parse_attribute_block() if self._check(TokenKind.IDENT, "attribute") else {}
        self._expect(TokenKind.RBRACE)
        kind_text = str(attrs.pop("type", "STATELESS")).upper()
        try:
            kind = ast.StreamletKind(kind_text)
        except ValueError:
            raise MclParseError(
                f"streamlet {name}: type must be STATELESS or STATEFUL, got {kind_text!r}",
                name.line,
            ) from None
        def names_list(key: str) -> tuple[str, ...]:
            raw = str(attrs.pop(key, "")).strip()
            return tuple(part.strip() for part in raw.split(",") if part.strip())

        definition = ast.StreamletDef(
            name=name.text,
            ports=tuple(ports),
            kind=kind,
            library=str(attrs.pop("library", "")),
            description=str(attrs.pop("description", "")),
            excludes=names_list("excludes"),
            requires=names_list("requires"),
            after=names_list("after"),
        )
        if attrs:
            raise MclParseError(
                f"streamlet {name.text}: unknown attribute(s) {sorted(attrs)}", name.line
            )
        return definition

    def _parse_channel_def(self) -> ast.ChannelDef:
        self._expect(TokenKind.IDENT, "channel")
        name = self._expect_ident(what="channel name")
        self._expect(TokenKind.LBRACE)
        ports = self._parse_port_block()
        attrs = self._parse_attribute_block() if self._check(TokenKind.IDENT, "attribute") else {}
        self._expect(TokenKind.RBRACE)
        ins = [p for p in ports if p.direction is ast.PortDirection.IN]
        outs = [p for p in ports if p.direction is ast.PortDirection.OUT]
        if len(ins) != 1 or len(outs) != 1:
            raise MclParseError(
                f"channel {name.text} must have exactly one in and one out port",
                name.line,
            )
        sync_text = str(attrs.pop("type", "ASYNC")).upper()
        try:
            sync = ast.ChannelSync(sync_text)
        except ValueError:
            raise MclParseError(
                f"channel {name.text}: type must be SYNC or ASYNC, got {sync_text!r}", name.line
            ) from None
        cat_text = str(attrs.pop("category", "BK")).upper()
        try:
            category = ast.ChannelCategory(cat_text)
        except ValueError:
            raise MclParseError(
                f"channel {name.text}: unknown category {cat_text!r}", name.line
            ) from None
        buffer_raw = attrs.pop("buffer", 100)
        try:
            buffer_kb = int(buffer_raw)
        except (TypeError, ValueError):
            raise MclParseError(
                f"channel {name.text}: buffer must be an integer (KB), got {buffer_raw!r}",
                name.line,
            ) from None
        if buffer_kb < 0:
            raise MclParseError(f"channel {name.text}: negative buffer", name.line)
        if sync is ast.ChannelSync.SYNC and buffer_kb != 0:
            # synchronous channels are zero-length buffers (section 4.2.2)
            raise MclParseError(
                f"channel {name.text}: SYNC channels must have buffer = 0", name.line
            )
        definition = ast.ChannelDef(
            name=name.text,
            in_port=ins[0],
            out_port=outs[0],
            sync=sync,
            category=category,
            buffer_kb=buffer_kb,
            description=str(attrs.pop("description", "")),
        )
        if attrs:
            raise MclParseError(
                f"channel {name.text}: unknown attribute(s) {sorted(attrs)}", name.line
            )
        return definition

    def _parse_port_block(self) -> list[ast.PortDecl]:
        self._expect(TokenKind.IDENT, "port")
        self._expect(TokenKind.LBRACE)
        ports: list[ast.PortDecl] = []
        while not self._check(TokenKind.RBRACE):
            direction_tok = self._expect_ident(what="'in' or 'out'")
            if direction_tok.text not in ("in", "out"):
                raise MclParseError(
                    f"expected 'in' or 'out', found {direction_tok.text!r}",
                    direction_tok.line,
                    direction_tok.column,
                )
            name = self._expect_ident(what="port name")
            self._expect(TokenKind.COLON)
            mediatype = self._parse_media_type()
            self._expect(TokenKind.SEMI)
            if any(p.name == name.text for p in ports):
                raise MclParseError(f"duplicate port {name.text!r}", name.line, name.column)
            ports.append(
                ast.PortDecl(ast.PortDirection(direction_tok.text), name.text, mediatype)
            )
        closing = self._expect(TokenKind.RBRACE)
        if not ports:
            raise MclParseError("port block may not be empty", closing.line)
        return ports

    def _parse_media_type(self) -> MediaType:
        tok = self._cur
        if self._accept(TokenKind.STAR):
            main = "*"
        else:
            main = self._expect_ident(what="media type").text
        sub = None
        if self._accept(TokenKind.SLASH):
            if self._accept(TokenKind.STAR):
                sub = "*"
            else:
                sub = self._expect_ident(what="media subtype").text
        try:
            return MediaType(main, sub if sub is not None else "*")
        except Exception as exc:
            raise MclParseError(f"bad media type: {exc}", tok.line, tok.column) from exc

    def _parse_attribute_block(self) -> dict[str, object]:
        self._expect(TokenKind.IDENT, "attribute")
        self._expect(TokenKind.LBRACE)
        attrs: dict[str, object] = {}
        while not self._check(TokenKind.RBRACE):
            key = self._expect_ident(what="attribute name")
            self._expect(TokenKind.EQUALS)
            tok = self._cur
            if tok.kind is TokenKind.STRING:
                value: object = self._advance().text
            elif tok.kind is TokenKind.NUMBER:
                value = self._advance().text
            elif tok.kind is TokenKind.IDENT:
                value = self._advance().text
            else:
                raise MclParseError(
                    f"bad attribute value {tok.text!r}", tok.line, tok.column
                )
            self._expect(TokenKind.SEMI)
            if key.text in attrs:
                raise MclParseError(f"duplicate attribute {key.text!r}", key.line, key.column)
            attrs[key.text] = value
        self._expect(TokenKind.RBRACE)
        return attrs

    # -- streams -----------------------------------------------------------------------

    def _parse_stream_def(self) -> ast.StreamDef:
        is_main = bool(self._accept(TokenKind.IDENT, "main"))
        self._expect(TokenKind.IDENT, "stream")
        name = self._expect_ident(what="stream name")
        self._expect(TokenKind.LBRACE)
        body = self._parse_statements_until_rbrace(allow_when=True)
        self._expect(TokenKind.RBRACE)
        return ast.StreamDef(name.text, tuple(body), is_main=is_main)

    def _parse_statements_until_rbrace(self, *, allow_when: bool) -> list[ast.Statement]:
        body: list[ast.Statement] = []
        while not self._check(TokenKind.RBRACE) and not self._check(TokenKind.EOF):
            body.append(self._parse_statement(allow_when=allow_when))
        return body

    def _parse_statement(self, *, allow_when: bool) -> ast.Statement:
        tok = self._cur
        if tok.kind is not TokenKind.IDENT:
            raise MclParseError(f"expected statement, found {tok.text!r}", tok.line, tok.column)
        word = tok.text
        if word in ("streamlet", "channel"):
            return self._parse_decl()
        if word == "when":
            if not allow_when:
                raise MclParseError("nested 'when' blocks are not allowed", tok.line, tok.column)
            return self._parse_when()
        if word == "connect":
            self._advance()
            self._expect(TokenKind.LPAREN)
            source = self._parse_port_ref()
            self._expect(TokenKind.COMMA)
            sink = self._parse_port_ref()
            channel = None
            if self._accept(TokenKind.COMMA):
                channel = self._expect_ident(what="channel instance").text
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.SEMI)
            return ast.Connect(source, sink, channel, line=tok.line)
        if word == "disconnect":
            self._advance()
            self._expect(TokenKind.LPAREN)
            source = self._parse_port_ref()
            self._expect(TokenKind.COMMA)
            sink = self._parse_port_ref()
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.SEMI)
            return ast.Disconnect(source, sink, line=tok.line)
        if word == "disconnectall":
            self._advance()
            self._expect(TokenKind.LPAREN)
            inst = self._expect_ident(what="instance name").text
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.SEMI)
            return ast.DisconnectAll(inst, line=tok.line)
        if word == "insert":
            self._advance()
            self._expect(TokenKind.LPAREN)
            source = self._parse_port_ref()
            self._expect(TokenKind.COMMA)
            sink = self._parse_port_ref()
            self._expect(TokenKind.COMMA)
            inst = self._expect_ident(what="instance name").text
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.SEMI)
            return ast.Insert(source, sink, inst, line=tok.line)
        if word == "replace":
            self._advance()
            self._expect(TokenKind.LPAREN)
            old = self._expect_ident(what="instance name").text
            self._expect(TokenKind.COMMA)
            new = self._expect_ident(what="instance name").text
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.SEMI)
            return ast.Replace(old, new, line=tok.line)
        if word in ("remove-streamlet", "remove-channel", "remove"):
            self._advance()
            self._expect(TokenKind.LPAREN)
            inst = self._expect_ident(what="instance name").text
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.SEMI)
            # bare `remove` is the Figure 6-4 composition primitive: detach
            # the streamlet from the topology but keep the instance dormant
            # so a later handler can re-insert it
            kind = {"remove-channel": "channel", "remove-streamlet": "streamlet"}.get(
                word, "extract"
            )
            return ast.RemoveInstance(kind, inst, line=tok.line)
        raise MclParseError(f"unknown statement {word!r}", tok.line, tok.column)

    def _parse_decl(self) -> ast.NewInstances:
        kind_tok = self._advance()  # 'streamlet' | 'channel'
        names = [self._expect_ident(what=f"{kind_tok.text} instance name").text]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect_ident(what="instance name").text)
        self._expect(TokenKind.EQUALS)
        ctor = self._expect_ident(what="new-streamlet or new-channel")
        ctor_text = ctor.text
        if ctor_text == "new":  # 'new channel (...)' spelling from Figure 4-8
            follower = self._expect_ident(what="'streamlet' or 'channel'")
            ctor_text = f"new-{follower.text}"
        expected = f"new-{kind_tok.text}"
        if ctor_text != expected:
            raise MclParseError(
                f"{kind_tok.text} declaration must use {expected!r}, found {ctor_text!r}",
                ctor.line,
                ctor.column,
            )
        self._expect(TokenKind.LPAREN)
        definition = self._expect_ident(what="definition name").text
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        if len(set(names)) != len(names):
            raise MclParseError("duplicate instance names in declaration", kind_tok.line)
        return ast.NewInstances(kind_tok.text, tuple(names), definition, line=kind_tok.line)

    def _parse_when(self) -> ast.When:
        when_tok = self._expect(TokenKind.IDENT, "when")
        self._expect(TokenKind.LPAREN)
        event = self._expect_ident(what="event name").text
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.LBRACE)
        actions = self._parse_statements_until_rbrace(allow_when=False)
        self._expect(TokenKind.RBRACE)
        return ast.When(event, tuple(actions), line=when_tok.line)

    def _parse_port_ref(self) -> ast.PortRef:
        inst = self._expect_ident(what="instance name")
        self._expect(TokenKind.DOT)
        port = self._expect_ident(what="port name")
        return ast.PortRef(inst.text, port.text)


def parse_script(source: str) -> ast.Script:
    """Parse MCL source text into a :class:`~repro.mcl.astnodes.Script`."""
    return _Parser(tokenize(source)).parse_script()
