"""Pretty-printer: AST → canonical MCL source.

``parse_script(format_script(script)) == script`` — the round-trip property
is tested with hypothesis.  Output is canonical (stable ordering of the
blocks each node owns, two-space indent), so formatted scripts diff
cleanly.
"""

from __future__ import annotations

from repro.mcl import astnodes as ast


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{escaped}"'


def _format_port(port: ast.PortDecl, indent: str) -> str:
    return f"{indent}{port.direction.value} {port.name} : {port.mediatype.essence};"


def _format_streamlet(d: ast.StreamletDef) -> str:
    lines = [f"streamlet {d.name} {{", "  port {"]
    lines.extend(_format_port(p, "    ") for p in d.ports)
    lines.append("  }")
    lines.append("  attribute {")
    lines.append(f"    type = {d.kind.value};")
    if d.library:
        lines.append(f"    library = {_quote(d.library)};")
    if d.description:
        lines.append(f"    description = {_quote(d.description)};")
    if d.excludes:
        lines.append(f"    excludes = {_quote(', '.join(d.excludes))};")
    if d.requires:
        lines.append(f"    requires = {_quote(', '.join(d.requires))};")
    if d.after:
        lines.append(f"    after = {_quote(', '.join(d.after))};")
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _format_channel(d: ast.ChannelDef) -> str:
    lines = [f"channel {d.name} {{", "  port {"]
    lines.append(_format_port(d.in_port, "    "))
    lines.append(_format_port(d.out_port, "    "))
    lines.append("  }")
    lines.append("  attribute {")
    lines.append(f"    type = {d.sync.value};")
    lines.append(f"    category = {d.category.value};")
    lines.append(f"    buffer = {d.buffer_kb};")
    if d.description:
        lines.append(f"    description = {_quote(d.description)};")
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _format_statement(stmt: ast.Statement, indent: str) -> list[str]:
    if isinstance(stmt, ast.NewInstances):
        names = ", ".join(stmt.names)
        return [f"{indent}{stmt.kind} {names} = new-{stmt.kind} ({stmt.definition});"]
    if isinstance(stmt, ast.Connect):
        channel = f", {stmt.channel}" if stmt.channel else ""
        return [f"{indent}connect ({stmt.source}, {stmt.sink}{channel});"]
    if isinstance(stmt, ast.Disconnect):
        return [f"{indent}disconnect ({stmt.source}, {stmt.sink});"]
    if isinstance(stmt, ast.DisconnectAll):
        return [f"{indent}disconnectall ({stmt.instance});"]
    if isinstance(stmt, ast.Insert):
        return [f"{indent}insert ({stmt.source}, {stmt.sink}, {stmt.instance});"]
    if isinstance(stmt, ast.Replace):
        return [f"{indent}replace ({stmt.old}, {stmt.new});"]
    if isinstance(stmt, ast.RemoveInstance):
        if stmt.kind == "extract":
            return [f"{indent}remove ({stmt.name});"]
        return [f"{indent}remove-{stmt.kind} ({stmt.name});"]
    if isinstance(stmt, ast.When):
        lines = [f"{indent}when ({stmt.event}) {{"]
        for action in stmt.actions:
            lines.extend(_format_statement(action, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover


def _format_stream(d: ast.StreamDef) -> str:
    head = "main stream" if d.is_main else "stream"
    lines = [f"{head} {d.name} {{"]
    for stmt in d.body:
        lines.extend(_format_statement(stmt, "  "))
    lines.append("}")
    return "\n".join(lines)


def format_script(script: ast.Script) -> str:
    """Render a whole script; definitions first, then streams."""
    chunks = [_format_streamlet(d) for d in script.streamlets]
    chunks.extend(_format_channel(d) for d in script.channels)
    chunks.extend(_format_stream(d) for d in script.streams)
    return "\n\n".join(chunks) + ("\n" if chunks else "")
