"""Token kinds for the MCL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Terminal symbols of the MCL grammar."""
    IDENT = auto()      # identifiers and word-keywords (incl. new-streamlet)
    NUMBER = auto()     # integer or decimal literal
    STRING = auto()     # double-quoted
    LBRACE = auto()     # {
    RBRACE = auto()     # }
    LPAREN = auto()     # (
    RPAREN = auto()     # )
    COLON = auto()      # :
    SEMI = auto()       # ;
    COMMA = auto()      # ,
    DOT = auto()        # .
    SLASH = auto()      # /
    STAR = auto()       # *
    EQUALS = auto()     # =
    EOF = auto()


#: Word keywords.  They are lexed as IDENT and promoted by the parser, so
#: e.g. a streamlet may not be named ``stream`` but ``switch`` stays legal.
KEYWORDS = frozenset(
    {
        "streamlet",
        "channel",
        "stream",
        "main",
        "port",
        "attribute",
        "in",
        "out",
        "when",
        "connect",
        "disconnect",
        "disconnectall",
        "insert",
        "remove",
        "replace",
        "new-streamlet",
        "new-channel",
        "remove-streamlet",
        "remove-channel",
    }
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
