"""Port-compatibility checking (section 4.4.1).

Two restrictions are enforced when a connection is made:

1. streamlet ports connect only to channel ports — structurally guaranteed
   here because every ``connect`` interposes a channel, but the endpoints
   themselves are validated to be streamlet instances and the third
   argument to be a channel instance;
2. the source port type must equal, or be a specialisation of, the sink
   port type — resolved through the MIME registry
   (:meth:`~repro.mime.registry.TypeRegistry.compatible`), and the channel
   must be able to carry the source's type.
"""

from __future__ import annotations

from repro.errors import MclTypeError
from repro.mcl import astnodes as ast
from repro.mime.registry import TypeRegistry


def check_connection(
    registry: TypeRegistry,
    source_def: ast.StreamletDef,
    source: ast.PortRef,
    sink_def: ast.StreamletDef,
    sink: ast.PortRef,
    channel_def: ast.ChannelDef,
    *,
    line: int = 0,
) -> ast.PortDecl:
    """Validate one connection; returns the source port declaration.

    Raises :class:`MclTypeError` describing exactly which check failed —
    "incompatible connections in the script are returned by the compiler
    with a detailed error message" (section 3.3.6).
    """
    src_port = source_def.port(source.port)
    if src_port is None:
        raise MclTypeError(
            f"{source.instance} ({source_def.name}) has no port {source.port!r}", line
        )
    if src_port.direction is not ast.PortDirection.OUT:
        raise MclTypeError(f"{source} is an input port; sources must be outputs", line)
    dst_port = sink_def.port(sink.port)
    if dst_port is None:
        raise MclTypeError(
            f"{sink.instance} ({sink_def.name}) has no port {sink.port!r}", line
        )
    if dst_port.direction is not ast.PortDirection.IN:
        raise MclTypeError(f"{sink} is an output port; sinks must be inputs", line)
    if not registry.compatible(src_port.mediatype, dst_port.mediatype):
        raise MclTypeError(
            f"type mismatch on connect({source}, {sink}): source produces "
            f"{src_port.mediatype} but sink accepts {dst_port.mediatype}",
            line,
        )
    if not registry.compatible(src_port.mediatype, channel_def.in_port.mediatype):
        raise MclTypeError(
            f"channel {channel_def.name} carries {channel_def.in_port.mediatype}; "
            f"cannot accept {src_port.mediatype} from {source}",
            line,
        )
    return src_port
