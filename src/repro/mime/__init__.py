"""MIME type system (thesis section 4.1).

MobiGATE models every message and every streamlet port with a MIME media
type.  This package provides:

* :class:`~repro.mime.mediatype.MediaType` — parsed ``type/subtype`` values
  with parameters and wildcard support,
* :class:`~repro.mime.registry.TypeRegistry` — the subtype/supertype
  hierarchy of Figure 4-1, used for port-compatibility checks,
* :class:`~repro.mime.headers.HeaderMap` — case-insensitive header fields,
  including MobiGATE's ``Content-Session`` and peer-streamlet extensions,
* :class:`~repro.mime.message.MimeMessage` — the message unit exchanged
  between streamlets.
"""

from repro.mime.mediatype import MediaType
from repro.mime.registry import TypeRegistry, default_registry
from repro.mime.headers import (
    HeaderMap,
    CONTENT_TYPE,
    CONTENT_SESSION,
    CONTENT_LENGTH,
    PEER_STACK,
)
from repro.mime.message import MimeMessage
from repro.mime.wire import serialize_message, parse_message

__all__ = [
    "serialize_message",
    "parse_message",
    "MediaType",
    "TypeRegistry",
    "default_registry",
    "HeaderMap",
    "MimeMessage",
    "CONTENT_TYPE",
    "CONTENT_SESSION",
    "CONTENT_LENGTH",
    "PEER_STACK",
]
