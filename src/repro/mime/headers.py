"""MIME header fields, including MobiGATE's extension fields.

The thesis uses two MIME-extension headers:

* ``Content-Session`` (section 4.4.3) — identifies which stream instance a
  message belongs to, enabling streamlet sharing across streams;
* a peer-streamlet field (section 6.5) — each server-side streamlet that
  needs reverse processing pushes its peer id; the client pops ids in LIFO
  order so transformations are undone inside-out.  We name it
  ``X-MobiGATE-Peers``.

This reproduction adds one more extension field, ``Content-Trace``: the
telemetry subsystem's trace context (``trace-id;parent-span-id``).  It
rides the message through every hop and across the wire, so the client's
peer spans join the same trace the server started (see
``docs/observability.md``).

Header names are case-insensitive; insertion order is preserved so
``format()`` round-trips.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import HeaderError
from repro.mime.mediatype import MediaType

CONTENT_TYPE = "Content-Type"
CONTENT_SESSION = "Content-Session"
CONTENT_LENGTH = "Content-Length"
PEER_STACK = "X-MobiGATE-Peers"
CONTENT_TRACE = "Content-Trace"

_PEER_SEPARATOR = ","
_TRACE_SEPARATOR = ";"
_SESSION_PARAM_SEPARATOR = ";"
_EPOCH_PARAM = "epoch="


class HeaderMap:
    """An ordered, case-insensitive multimap restricted to single values.

    MobiGATE messages never need repeated fields, so ``set`` replaces; this
    keeps the routing code simple and the wire form unambiguous.
    """

    __slots__ = ("_fields",)

    def __init__(self, initial: dict[str, str] | None = None):
        # canonical-lower name -> (display name, value)
        self._fields: dict[str, tuple[str, str]] = {}
        if initial:
            for name, value in initial.items():
                self.set(name, value)

    # -- core mapping ----------------------------------------------------------

    def set(self, name: str, value: str) -> None:
        """Set (replacing) a field; names/values are validated."""
        name = name.strip()
        if not name or any(c in name for c in ":\r\n"):
            raise HeaderError(f"illegal header name {name!r}")
        value = str(value).strip()
        if "\n" in value or "\r" in value:
            raise HeaderError(f"header value may not contain newlines: {value!r}")
        self._fields[name.lower()] = (name, value)

    def get(self, name: str, default: str | None = None) -> str | None:
        """The field value, or ``default`` when absent."""
        entry = self._fields.get(name.lower())
        return entry[1] if entry else default

    def require(self, name: str) -> str:
        """The field value; HeaderError when absent."""
        value = self.get(name)
        if value is None:
            raise HeaderError(f"missing required header {name!r}")
        return value

    def remove(self, name: str) -> bool:
        """Delete a field; returns False if it was absent."""
        return self._fields.pop(name.lower(), None) is not None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._fields

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        for display, value in self._fields.values():
            yield display, value

    def copy(self) -> "HeaderMap":
        """Independent copy of the header map."""
        clone = HeaderMap()
        clone._fields = dict(self._fields)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeaderMap):
            return NotImplemented
        mine = {k: v for k, (_, v) in self._fields.items()}
        theirs = {k: v for k, (_, v) in other._fields.items()}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{n}={v!r}" for n, v in self)
        return f"HeaderMap({inner})"

    # -- typed accessors ---------------------------------------------------------

    @property
    def content_type(self) -> MediaType | None:
        raw = self.get(CONTENT_TYPE)
        return MediaType.parse(raw) if raw else None

    @content_type.setter
    def content_type(self, value: MediaType | str) -> None:
        self.set(CONTENT_TYPE, str(value))

    @property
    def session(self) -> str | None:
        raw = self.get(CONTENT_SESSION)
        if raw is None:
            return None
        base, _, _params = raw.partition(_SESSION_PARAM_SEPARATOR)
        return base.strip() or None

    @session.setter
    def session(self, value: str) -> None:
        self.set(CONTENT_SESSION, value)

    # -- stream epoch (reconfiguration extension) -----------------------------------
    #
    # Transactional reconfiguration (``repro.runtime.reconfig``) versions a
    # live composition with a monotonically increasing *epoch*.  The epoch
    # rides in-band as a parameter on ``Content-Session`` —
    # ``Content-Session: sess-42;epoch=3`` — so the MobiGATE client can
    # swap its peer-streamlet chain at exactly the right message boundary.

    @property
    def epoch(self) -> int | None:
        """The stream epoch carried on ``Content-Session``, or None."""
        raw = self.get(CONTENT_SESSION)
        if raw is None:
            return None
        _base, sep, params = raw.partition(_SESSION_PARAM_SEPARATOR)
        if not sep:
            return None
        for param in params.split(_SESSION_PARAM_SEPARATOR):
            param = param.strip()
            if param.startswith(_EPOCH_PARAM):
                value = param[len(_EPOCH_PARAM):]
                if not value.isdigit():
                    raise HeaderError(f"illegal epoch parameter {param!r}")
                return int(value)
        return None

    def set_epoch(self, epoch: int) -> None:
        """Stamp (replacing) the epoch parameter on ``Content-Session``."""
        if epoch < 0:
            raise HeaderError(f"epoch must be >= 0, got {epoch}")
        raw = self.get(CONTENT_SESSION)
        if raw is None or not raw.strip():
            raise HeaderError("cannot stamp an epoch without a Content-Session")
        base, _, _params = raw.partition(_SESSION_PARAM_SEPARATOR)
        self.set(CONTENT_SESSION, f"{base.strip()}{_SESSION_PARAM_SEPARATOR}{_EPOCH_PARAM}{epoch}")

    # -- trace context (telemetry extension) ----------------------------------------

    def set_trace(self, trace_id: str, parent_id: str | None = None) -> None:
        """Record the telemetry trace context (``trace-id;parent-span``)."""
        if not trace_id or _TRACE_SEPARATOR in trace_id:
            raise HeaderError(f"illegal trace id {trace_id!r}")
        if parent_id:
            self.set(CONTENT_TRACE, f"{trace_id}{_TRACE_SEPARATOR}{parent_id}")
        else:
            self.set(CONTENT_TRACE, trace_id)

    @property
    def trace_context(self) -> tuple[str, str | None] | None:
        """``(trace_id, parent_span_id)`` from ``Content-Trace``, or None."""
        raw = self.get(CONTENT_TRACE)
        if raw is None:
            return None
        trace_id, _, parent = raw.partition(_TRACE_SEPARATOR)
        return trace_id, parent or None

    # -- peer streamlet stack (section 6.5) ---------------------------------------

    def push_peer(self, peer_id: str) -> None:
        """Record that ``peer_id`` must reverse-process this message."""
        peer_id = peer_id.strip()
        if not peer_id or _PEER_SEPARATOR in peer_id:
            raise HeaderError(f"illegal peer id {peer_id!r}")
        current = self.get(PEER_STACK)
        self.set(PEER_STACK, f"{current}{_PEER_SEPARATOR}{peer_id}" if current else peer_id)

    def pop_peer(self) -> str | None:
        """Remove and return the most recently pushed peer id."""
        current = self.get(PEER_STACK)
        if not current:
            return None
        head, sep, last = current.rpartition(_PEER_SEPARATOR)
        if sep:
            self.set(PEER_STACK, head)
        else:
            self.remove(PEER_STACK)
        return last

    def peer_stack(self) -> list[str]:
        """The full stack, bottom first (LIFO processing order = reversed)."""
        current = self.get(PEER_STACK)
        return current.split(_PEER_SEPARATOR) if current else []

    # -- wire form ----------------------------------------------------------------

    def format(self) -> str:
        """Serialise as ``Name: value`` lines (no trailing blank line)."""
        return "\n".join(f"{name}: {value}" for name, value in self)

    @classmethod
    def parse(cls, text: str) -> "HeaderMap":
        headers = cls()
        # lines are '\n'-separated by definition; str.splitlines would also
        # split on Unicode breaks (NEL, LS, PS) that values may contain
        for lineno, line in enumerate(text.split("\n"), start=1):
            if not line.strip():
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise HeaderError(f"header line {lineno} has no colon: {line!r}")
            headers.set(name, value.strip())
        return headers
