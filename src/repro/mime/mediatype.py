"""Media types: parsing, formatting, and structural matching.

The thesis adopts a simplified MIME ``Content-Type`` grammar (Figure 4-2)::

    type-declaration ::= type "/" subtype *( ";" parameter )
    type             ::= token | "*"
    subtype          ::= token | "*"
    parameter        ::= attribute "=" value

A bare top-level name such as ``text`` (used in the thesis to mean "any
text") is accepted and normalised to ``text/*``.  Structural matching
(wildcards) is independent of the registry-driven hierarchy in
:mod:`repro.mime.registry`; the compatibility check of section 4.4.1
combines both.
"""

from __future__ import annotations

import re
from functools import lru_cache, total_ordering

from repro.errors import MediaTypeParseError

# RFC 2045 token: printable ASCII except tspecials, space, and CTLs.
_TOKEN_RE = re.compile(r"^[A-Za-z0-9!#$%&'*+.^_`|~-]+$")

_PARAM_RE = re.compile(
    r"""\s*;\s*
        (?P<attr>[A-Za-z0-9!#$%&'*+.^_`|~-]+)
        \s*=\s*
        (?P<value>"[^"]*"|[A-Za-z0-9!#$%&'*+.^_`|~-]+)
    """,
    re.VERBOSE,
)


def _is_token(text: str) -> bool:
    return bool(_TOKEN_RE.match(text))


@lru_cache(maxsize=4096)
def _parse_cached(cls: type, text: str) -> "MediaType":
    """The uncached grammar walk behind :meth:`MediaType.parse`.

    Keyed on the constructing class so a subclass never receives a
    memoized base-class instance.  Parse *errors* are never cached —
    ``lru_cache`` re-invokes on every raising call.
    """
    head, sep, rest = text.partition(";")
    head = head.strip()
    if "/" in head:
        maintype, _, subtype = head.partition("/")
        if "/" in subtype:
            raise MediaTypeParseError(f"too many '/' in {text!r}")
        if not maintype.strip() or not subtype.strip():
            raise MediaTypeParseError(f"missing type or subtype in {text!r}")
    else:
        maintype, subtype = head, "*"
    params: dict[str, str] = {}
    if sep:
        remainder = ";" + rest
        pos = 0
        while pos < len(remainder):
            match = _PARAM_RE.match(remainder, pos)
            if not match:
                raise MediaTypeParseError(f"bad parameter syntax in {text!r}")
            value = match.group("value")
            if value.startswith('"'):
                value = value[1:-1]
            params[match.group("attr")] = value
            pos = match.end()
    return cls(maintype, subtype, params)


@total_ordering
class MediaType:
    """An immutable ``type/subtype;param=value`` media type.

    Comparison (``<``) is purely lexicographic and exists only so that media
    types can live in sorted containers; *specialisation* is expressed by
    :meth:`matches` (structural, wildcard-aware) and by the registry.
    """

    __slots__ = ("_maintype", "_subtype", "_params")

    def __init__(self, maintype: str, subtype: str = "*", params: dict[str, str] | None = None):
        maintype = maintype.strip().lower()
        subtype = subtype.strip().lower()
        if maintype != "*" and not _is_token(maintype):
            raise MediaTypeParseError(f"illegal main type {maintype!r}")
        if subtype != "*" and not _is_token(subtype):
            raise MediaTypeParseError(f"illegal subtype {subtype!r}")
        if maintype == "*" and subtype != "*":
            raise MediaTypeParseError(f"'*/{subtype}' is not a valid media type")
        self._maintype = maintype
        self._subtype = subtype
        items = tuple(sorted((k.lower(), v) for k, v in (params or {}).items()))
        for key, _ in items:
            if not _is_token(key):
                raise MediaTypeParseError(f"illegal parameter name {key!r}")
        self._params = items

    # -- constructors -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "MediaType":
        """Parse a media-type string; a bare name becomes ``name/*``.

        Results are memoized per (class, string): headers re-parse their
        raw ``Content-Type`` on every typed access, which makes this the
        hottest single call on a streamlet chain — and since instances
        are immutable, handing the same object back is free sharing, not
        aliasing.
        """
        if not isinstance(text, str) or not text.strip():
            raise MediaTypeParseError(f"empty media type: {text!r}")
        return _parse_cached(cls, text.strip())

    # -- accessors -----------------------------------------------------------

    @property
    def maintype(self) -> str:
        return self._maintype

    @property
    def subtype(self) -> str:
        return self._subtype

    @property
    def params(self) -> dict[str, str]:
        return dict(self._params)

    @property
    def essence(self) -> str:
        """``type/subtype`` without parameters."""
        return f"{self._maintype}/{self._subtype}"

    def param(self, name: str, default: str | None = None) -> str | None:
        """The parameter's value, or ``default``."""
        name = name.lower()
        for key, value in self._params:
            if key == name:
                return value
        return default

    def with_params(self, **params: str) -> "MediaType":
        """A copy with the given parameters merged in."""
        merged = dict(self._params)
        merged.update({k.lower(): v for k, v in params.items()})
        return MediaType(self._maintype, self._subtype, merged)

    def without_params(self) -> "MediaType":
        """The bare ``type/subtype`` without parameters."""
        return MediaType(self._maintype, self._subtype)

    # -- structure -----------------------------------------------------------

    @property
    def is_wildcard(self) -> bool:
        return self._subtype == "*"

    @property
    def is_anything(self) -> bool:
        return self._maintype == "*"

    def matches(self, pattern: "MediaType") -> bool:
        """True if this (concrete or not) type falls under ``pattern``.

        ``text/richtext`` matches ``text/*`` and ``*/*``; parameters on the
        pattern must be present with equal values on ``self``.
        """
        if pattern._maintype != "*" and pattern._maintype != self._maintype:
            return False
        if pattern._subtype != "*" and pattern._subtype != self._subtype:
            return False
        mine = dict(self._params)
        return all(mine.get(k) == v for k, v in pattern._params)

    # -- dunder --------------------------------------------------------------

    def __str__(self) -> str:
        parts = [self.essence]
        parts.extend(f"{k}={v}" for k, v in self._params)
        return "; ".join(parts)

    def __repr__(self) -> str:
        return f"MediaType({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MediaType):
            return NotImplemented
        return (
            self._maintype == other._maintype
            and self._subtype == other._subtype
            and self._params == other._params
        )

    def __lt__(self, other: "MediaType") -> bool:
        if not isinstance(other, MediaType):
            return NotImplemented
        return (self._maintype, self._subtype, self._params) < (
            other._maintype,
            other._subtype,
            other._params,
        )

    def __hash__(self) -> int:
        return hash((self._maintype, self._subtype, self._params))


# Frequently used types, mirroring Figure 4-1 of the thesis.
ANY = MediaType("*", "*")
TEXT = MediaType("text", "*")
TEXT_PLAIN = MediaType("text", "plain")
TEXT_RICHTEXT = MediaType("text", "richtext")
TEXT_HTML = MediaType("text", "html")
IMAGE = MediaType("image", "*")
IMAGE_GIF = MediaType("image", "gif")
IMAGE_JPEG = MediaType("image", "jpeg")
AUDIO = MediaType("audio", "*")
VIDEO = MediaType("video", "*")
APPLICATION = MediaType("application", "*")
APPLICATION_POSTSCRIPT = MediaType("application", "postscript")
APPLICATION_OCTET = MediaType("application", "octet-stream")
MULTIPART_MIXED = MediaType("multipart", "mixed")
