"""The message unit exchanged between streamlets.

A :class:`MimeMessage` is a header map plus a payload.  Payloads may be

* ``bytes`` (the common case: compressed text, encoded images),
* ``str`` (convenience; measured as UTF-8),
* ``numpy.ndarray`` (decoded raster images mid-pipeline),
* any object implementing the :class:`Payload` protocol
  (``size_bytes()`` + ``clone()``) — e.g. the PostScript-like document
  model, or
* a list of :class:`MimeMessage` parts for ``multipart/mixed``.

``size_bytes`` feeds the bandwidth accounting of the network emulator;
``clone`` implements the deep copy that the pass-by-*value* baseline of
Figure 7-3 pays for at every hop (the pass-by-*reference* runtime never
calls it on the hot path).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import MimeError
from repro.mime.headers import (
    CONTENT_LENGTH,
    CONTENT_SESSION,
    CONTENT_TYPE,
    HeaderMap,
)
from repro.mime.mediatype import MULTIPART_MIXED, MediaType


@runtime_checkable
class Payload(Protocol):
    """Structured payloads must report size and support deep copy."""

    def size_bytes(self) -> int:
        """Payload size in bytes."""
        ...

    def clone(self) -> "Payload":
        """Deep copy of the payload."""
        ...


def payload_size(body: object) -> int:
    """Size in bytes of any supported payload kind."""
    if body is None:
        return 0
    if isinstance(body, bytes | bytearray | memoryview):
        return len(body)
    if isinstance(body, str):
        return len(body.encode("utf-8"))
    if isinstance(body, np.ndarray):
        return int(body.nbytes)
    if isinstance(body, list):
        return sum(part.total_size() for part in body)
    if isinstance(body, Payload):
        return body.size_bytes()
    raise MimeError(f"unsupported payload type {type(body).__name__}")


def clone_payload(body: object) -> object:
    """Deep-copy any supported payload kind."""
    if body is None or isinstance(body, bytes | str):
        return body  # immutable
    if isinstance(body, bytearray):
        return bytearray(body)
    if isinstance(body, memoryview):
        return bytes(body)
    if isinstance(body, np.ndarray):
        return body.copy()
    if isinstance(body, list):
        return [part.clone() for part in body]
    if isinstance(body, Payload):
        return body.clone()
    raise MimeError(f"unsupported payload type {type(body).__name__}")


class MimeMessage:
    """Headers + payload; the unit that flows through channels.

    Messages are *mutable in place* by design: the pass-by-reference runtime
    hands the same object to consecutive streamlets, each of which swaps the
    payload and rewrites ``Content-Type``.
    """

    __slots__ = ("headers", "body")

    def __init__(
        self,
        content_type: MediaType | str,
        body: object = b"",
        *,
        session: str | None = None,
        headers: HeaderMap | None = None,
    ):
        self.headers = headers.copy() if headers is not None else HeaderMap()
        self.headers.content_type = (
            content_type if isinstance(content_type, MediaType) else MediaType.parse(content_type)
        )
        if session is not None:
            self.headers.session = session
        payload_size(body)  # validate kind eagerly
        self.body = body

    # -- typed access -------------------------------------------------------------

    @property
    def content_type(self) -> MediaType:
        ct = self.headers.content_type
        if ct is None:
            raise MimeError("message lost its Content-Type header")
        return ct

    @content_type.setter
    def content_type(self, value: MediaType | str) -> None:
        self.headers.content_type = value

    @property
    def session(self) -> str | None:
        return self.headers.session

    def set_body(self, body: object, content_type: MediaType | str | None = None) -> None:
        """Replace the payload (and optionally retype) in place."""
        payload_size(body)
        self.body = body
        if content_type is not None:
            self.headers.content_type = content_type

    # -- size accounting -----------------------------------------------------------

    def body_size(self) -> int:
        """Payload size in bytes."""
        return payload_size(self.body)

    def header_size(self) -> int:
        """UTF-8 size of the serialised header block."""
        return len(self.headers.format().encode("utf-8"))

    def total_size(self) -> int:
        """Bytes on the wire: headers + blank line + body."""
        return self.header_size() + 2 + self.body_size()

    # -- multipart (section 4.3 merge/switch streamlets) -----------------------------

    @property
    def is_multipart(self) -> bool:
        return isinstance(self.body, list)

    @property
    def parts(self) -> list["MimeMessage"]:
        if not self.is_multipart:
            raise MimeError(f"{self.content_type} message has no parts")
        return self.body  # type: ignore[return-value]

    @classmethod
    def multipart(
        cls, parts: list["MimeMessage"], *, session: str | None = None
    ) -> "MimeMessage":
        for part in parts:
            if not isinstance(part, MimeMessage):
                raise MimeError("multipart parts must be MimeMessage instances")
        return cls(MULTIPART_MIXED, list(parts), session=session)

    # -- copying -------------------------------------------------------------------

    def clone(self) -> "MimeMessage":
        """Deep copy: new headers, deep-copied payload."""
        copy = MimeMessage.__new__(MimeMessage)
        copy.headers = self.headers.copy()
        copy.body = clone_payload(self.body)
        return copy

    # -- misc -----------------------------------------------------------------------

    def stamp_length(self) -> None:
        """Record the current body size in ``Content-Length``."""
        self.headers.set(CONTENT_LENGTH, str(self.body_size()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sess = self.headers.get(CONTENT_SESSION)
        return (
            f"MimeMessage({self.headers.get(CONTENT_TYPE)!r}, {self.body_size()}B"
            + (f", session={sess}" if sess else "")
            + ")"
        )
