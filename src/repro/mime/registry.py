"""The media-type hierarchy (Figure 4-1) and port compatibility.

Beyond the structural wildcard order (``text/richtext`` < ``text/*`` <
``*/*``), the thesis allows *declared* subtype edges between concrete types
("each given type has multiple associated direct subtypes or supertypes"),
e.g. ``text/richtext`` may be declared a subtype of ``text/plain`` so a
plain-text consumer accepts richtext.  :class:`TypeRegistry` stores those
edges and answers the section 4.4.1 question: *may a source port of type S
feed a sink port of type T?*  — yes iff ``S ≤ T`` in the combined order.

The registry is deliberately small and immutable-ish: edges can be added
but never removed, and cycle creation is rejected so ``≤`` stays a partial
order.
"""

from __future__ import annotations

from repro.errors import TypeHierarchyError
from repro.mime.mediatype import MediaType


class TypeRegistry:
    """Declared subtype relations over media-type essences.

    Edges relate parameter-free essences (``text/richtext`` →
    ``text/plain``).  Structural wildcard subsumption is always in force and
    needs no registration.
    """

    def __init__(self):
        # direct declared supertypes: essence -> set of essences
        self._supertypes: dict[str, set[str]] = {}
        self._known: set[str] = set()

    # -- registration ---------------------------------------------------------

    def register(self, mediatype: MediaType | str) -> MediaType:
        """Make a type known to the registry (idempotent)."""
        mt = self._coerce(mediatype).without_params()
        self._known.add(mt.essence)
        return mt

    def register_subtype(self, subtype: MediaType | str, supertype: MediaType | str) -> None:
        """Declare ``subtype ≤ supertype``.

        Raises :class:`TypeHierarchyError` if the edge would create a cycle
        (the subtype order must remain antisymmetric).
        """
        sub = self._coerce(subtype).without_params()
        sup = self._coerce(supertype).without_params()
        if sub == sup:
            raise TypeHierarchyError(f"{sub} cannot be its own declared subtype")
        if self._declared_le(sup.essence, sub.essence):
            raise TypeHierarchyError(
                f"declaring {sub} <= {sup} would create a cycle: {sup} <= {sub} already holds"
            )
        self._known.add(sub.essence)
        self._known.add(sup.essence)
        self._supertypes.setdefault(sub.essence, set()).add(sup.essence)

    # -- queries ---------------------------------------------------------------

    def known_types(self) -> frozenset[str]:
        """Every registered essence."""
        return frozenset(self._known)

    def is_subtype(self, sub: MediaType | str, sup: MediaType | str) -> bool:
        """``sub ≤ sup`` under structural wildcards plus declared edges.

        The order is the reflexive-transitive closure of:

        * ``t`` ≤ any wildcard pattern that :meth:`MediaType.matches`,
        * every declared edge.
        """
        sub_t = self._coerce(sub)
        sup_t = self._coerce(sup)
        if sub_t.matches(sup_t):
            return True
        # Walk declared edges from sub, testing structural matching of each
        # ancestor against sup (declared ancestors may themselves be
        # wildcards or have wildcard supertypes).
        seen: set[str] = set()
        frontier = [sub_t.essence]
        while frontier:
            essence = frontier.pop()
            if essence in seen:
                continue
            seen.add(essence)
            if MediaType.parse(essence).matches(sup_t):
                return True
            frontier.extend(self._supertypes.get(essence, ()))
        return False

    def compatible(self, source: MediaType | str, sink: MediaType | str) -> bool:
        """Section 4.4.1: a connection is legal iff ``source ≤ sink``."""
        return self.is_subtype(source, sink)

    def common_supertypes(self, a: MediaType | str, b: MediaType | str) -> set[str]:
        """Essences that are supertypes (declared closure) of both a and b."""
        return self._ancestors(self._coerce(a).essence) & self._ancestors(
            self._coerce(b).essence
        )

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _coerce(value: MediaType | str) -> MediaType:
        return value if isinstance(value, MediaType) else MediaType.parse(value)

    def _declared_le(self, sub: str, sup: str) -> bool:
        """Reachability over declared edges only."""
        if sub == sup:
            return True
        seen: set[str] = set()
        frontier = [sub]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            if node == sup:
                return True
            frontier.extend(self._supertypes.get(node, ()))
        return sup in seen

    def _ancestors(self, essence: str) -> set[str]:
        out: set[str] = set()
        frontier = [essence]
        while frontier:
            node = frontier.pop()
            if node in out:
                continue
            out.add(node)
            frontier.extend(self._supertypes.get(node, ()))
        # structural wildcard ancestors
        for node in list(out):
            mt = MediaType.parse(node)
            if mt.maintype != "*":
                out.add(f"{mt.maintype}/*")
        out.add("*/*")
        return out


def default_registry() -> TypeRegistry:
    """The Figure 4-1 hierarchy used throughout the thesis examples."""
    reg = TypeRegistry()
    for essence in (
        "text/plain",
        "text/richtext",
        "text/html",
        "image/gif",
        "image/jpeg",
        "image/png",
        "audio/basic",
        "video/mpeg",
        "application/postscript",
        "application/octet-stream",
        "multipart/mixed",
    ):
        reg.register(essence)
    # The thesis treats richtext as a specialisation usable anywhere plain
    # text is accepted (section 4.4.1 example uses text/richtext <= text/*,
    # which is structural; this declared edge covers text/plain sinks too).
    reg.register_subtype("text/richtext", "text/plain")
    reg.register_subtype("text/html", "text/richtext")
    return reg
