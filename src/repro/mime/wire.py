"""Wire form: serialise :class:`MimeMessage` to bytes and back.

The MobiGATE client "parses the incoming MIME messages" (section 3.4.1),
so messages need a concrete byte representation.  The format is
MIME-shaped and binary-safe:

* header block — ``Name: value`` lines, UTF-8, terminated by a blank line;
* ``Content-Length`` is (re)stamped on serialisation and trusted on parse,
  so bodies may contain anything, including CRLFs;
* multipart bodies use a generated boundary recorded as a ``boundary``
  parameter on the content type, each part serialised recursively;
* structured payloads are encoded through a payload-codec registry keyed
  by the ``X-MobiGATE-Payload`` header: ``raster`` (numpy image planes
  with a shape prefix) and ``psdoc`` (the document's textual wire form).
  Plain ``bytes``/``str`` payloads need no marker.

``parse_message(serialize_message(m))`` reproduces the message up to
payload identity (structured payloads compare equal, not identical).

``Content-Length`` is *validated* before it is trusted: a missing,
non-numeric, negative, or oversized declaration raises
:class:`~repro.errors.MimeError` instead of hanging a reader or
over-allocating a buffer.  The ceiling defaults to
:data:`DEFAULT_MAX_FRAME_BYTES` and is configurable per call (and per
:class:`FrameAssembler`), because a gateway accepting frames off a public
socket wants a much tighter bound than an in-process round-trip test.

:class:`FrameAssembler` is the streaming face of the format: feed it
arbitrary byte chunks as they arrive off a socket and it yields each
complete message exactly once, however the chunk boundaries fall.  It
never copies a body until the whole frame is present, and it validates
the declared length as soon as the header block is complete — a malformed
frame is rejected before a single payload byte is buffered beyond the
ceiling.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.imagefmt import ImageRaster
from repro.codecs.psdoc import PsDocument
from repro.errors import MimeError
from repro.mime.headers import CONTENT_LENGTH, CONTENT_TYPE, HeaderMap
from repro.mime.mediatype import MediaType
from repro.mime.message import MimeMessage
from repro.util.ids import IdGenerator

PAYLOAD_KIND = "X-MobiGATE-Payload"
_BOUNDARY_IDS = IdGenerator("mgbd")

_HEADER_TERMINATOR = b"\n\n"

#: default ceiling on one frame's declared payload (16 MiB): large enough
#: for every workload in the repo, small enough that a hostile
#: Content-Length cannot make a reader buffer gigabytes
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

#: default ceiling on the header block of one frame (64 KiB)
DEFAULT_MAX_HEADER_BYTES = 64 * 1024


def _validated_length(headers: HeaderMap, max_length: int) -> int:
    """The frame's Content-Length, or MimeError if it cannot be trusted."""
    length_raw = headers.get(CONTENT_LENGTH)
    if length_raw is None:
        raise MimeError("wire message lacks Content-Length")
    try:
        length = int(length_raw)
    except ValueError:
        raise MimeError(f"bad Content-Length {length_raw!r}") from None
    if length < 0:
        raise MimeError(f"negative Content-Length {length}")
    if length > max_length:
        raise MimeError(
            f"Content-Length {length} exceeds the {max_length}-byte frame ceiling"
        )
    return length


# ---------------------------------------------------------------------------
# structured payload codecs
# ---------------------------------------------------------------------------


def _encode_raster(raster: ImageRaster) -> bytes:
    height, width, _ = raster.pixels.shape
    return struct.pack("<HH", width, height) + raster.pixels.tobytes()


def _decode_raster(data: bytes) -> ImageRaster:
    if len(data) < 4:
        raise MimeError("truncated raster payload")
    width, height = struct.unpack_from("<HH", data, 0)
    expected = width * height * 3
    body = data[4:]
    if len(body) != expected:
        raise MimeError(
            f"raster payload is {len(body)} bytes; {width}x{height} needs {expected}"
        )
    pixels = np.frombuffer(body, dtype=np.uint8).reshape(height, width, 3).copy()
    return ImageRaster(pixels)


def _encode_psdoc(document: PsDocument) -> bytes:
    return document.to_source().encode("utf-8")


def _decode_psdoc(data: bytes) -> PsDocument:
    return PsDocument.parse(data.decode("utf-8"))


_CODECS = {
    "raster": (_encode_raster, _decode_raster),
    "psdoc": (_encode_psdoc, _decode_psdoc),
}


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------


def serialize_message(message: MimeMessage) -> bytes:
    """Render a message (and its parts, recursively) to wire bytes."""
    headers = message.headers.copy()
    body = message.body

    if isinstance(body, list):  # multipart
        boundary = _BOUNDARY_IDS.next()
        content_type = message.content_type.with_params(boundary=boundary)
        headers.content_type = content_type
        delimiter = f"--{boundary}\n".encode()
        closing = f"--{boundary}--".encode()
        chunks: list[bytes] = []
        for part in body:
            encoded = serialize_message(part)
            chunks.append(delimiter)
            chunks.append(struct.pack("<I", len(encoded)))
            chunks.append(encoded)
        chunks.append(closing)
        payload = b"".join(chunks)
        headers.remove(PAYLOAD_KIND)
    elif isinstance(body, ImageRaster):
        payload = _encode_raster(body)
        headers.set(PAYLOAD_KIND, "raster")
    elif isinstance(body, PsDocument):
        payload = _encode_psdoc(body)
        headers.set(PAYLOAD_KIND, "psdoc")
    elif isinstance(body, str):
        payload = body.encode("utf-8")
        headers.set(PAYLOAD_KIND, "text")
    elif body is None:
        payload = b""
        headers.remove(PAYLOAD_KIND)
    elif isinstance(body, bytes | bytearray | memoryview):
        payload = bytes(body)
        headers.remove(PAYLOAD_KIND)
    else:
        raise MimeError(f"cannot serialise payload of type {type(body).__name__}")

    headers.set(CONTENT_LENGTH, str(len(payload)))
    return headers.format().encode("utf-8") + _HEADER_TERMINATOR + payload


def parse_message(
    data: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> MimeMessage:
    """Inverse of :func:`serialize_message`.

    ``Content-Length`` is validated (present, numeric, non-negative, at
    most ``max_frame_bytes``) before the payload is sliced, so a
    malformed frame fails with a clean :class:`MimeError` instead of
    over-allocating.
    """
    split_at = data.find(_HEADER_TERMINATOR)
    if split_at < 0:
        raise MimeError("wire message has no header terminator")
    headers = HeaderMap.parse(data[:split_at].decode("utf-8"))
    length = _validated_length(headers, max_frame_bytes)
    payload = data[split_at + len(_HEADER_TERMINATOR):]
    if len(payload) != length:
        raise MimeError(
            f"Content-Length says {length} but payload is {len(payload)} bytes"
        )
    return _build_message(headers, payload)


def _build_message(headers: HeaderMap, payload: bytes) -> MimeMessage:
    """Assemble a message from a parsed header block and its exact payload."""
    content_type = headers.content_type
    if content_type is None:
        raise MimeError("wire message lacks Content-Type")

    body: object
    if content_type.maintype == "multipart" and content_type.param("boundary"):
        body = _parse_multipart(payload, content_type.param("boundary"))
        headers.content_type = content_type.without_params()
    else:
        kind = headers.get(PAYLOAD_KIND)
        if kind is None:
            body = payload
        elif kind == "text":
            body = payload.decode("utf-8")
            headers.remove(PAYLOAD_KIND)
        elif kind in _CODECS:
            body = _CODECS[kind][1](payload)
            headers.remove(PAYLOAD_KIND)
        else:
            raise MimeError(f"unknown payload kind {kind!r}")

    message = MimeMessage.__new__(MimeMessage)
    message.headers = headers
    message.body = body
    return message


# ---------------------------------------------------------------------------
# streaming incremental parsing
# ---------------------------------------------------------------------------


class FrameAssembler:
    """Reassemble wire messages from an arbitrary chunking of the byte stream.

    The gateway's data plane reads whatever the socket hands it; frame
    boundaries land anywhere.  ``feed`` buffers the chunk and yields every
    message that became complete, in order — the concatenation of all
    ``feed`` results equals parsing the concatenated stream whole.

    Discipline for untrusted input:

    * the header block is bounded (``max_header_bytes``); a stream that
      never produces a terminator is rejected instead of buffered forever;
    * ``Content-Length`` is validated the moment the header block is
      complete (see :func:`parse_message`), *before* payload bytes
      accumulate against it;
    * the payload is sliced out through one :class:`memoryview` copy when
      the frame completes — no per-chunk body copies, no quadratic
      re-concatenation.

    A raised :class:`MimeError` poisons the assembler (framing is lost);
    the caller should close the connection and discard it.
    """

    __slots__ = (
        "max_frame_bytes",
        "max_header_bytes",
        "_buf",
        "_scan_from",
        "_headers",
        "_payload_at",
        "_need",
        "bytes_in",
        "frames_out",
    )

    def __init__(
        self,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
    ):
        if max_frame_bytes < 0 or max_header_bytes <= 0:
            raise ValueError("frame/header ceilings must be positive")
        self.max_frame_bytes = max_frame_bytes
        self.max_header_bytes = max_header_bytes
        self._buf = bytearray()
        self._scan_from = 0
        self._headers: HeaderMap | None = None
        self._payload_at = 0
        self._need = 0
        # observability (the gateway mirrors these into metrics)
        self.bytes_in = 0
        self.frames_out = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buf)

    def feed(self, chunk: bytes | bytearray | memoryview) -> list[MimeMessage]:
        """Buffer ``chunk``; return every message it completed (maybe none)."""
        self._buf += chunk
        self.bytes_in += len(chunk)
        out: list[MimeMessage] = []
        while True:
            message = self._next_frame()
            if message is None:
                return out
            out.append(message)

    def _next_frame(self) -> MimeMessage | None:
        buf = self._buf
        if self._headers is None:
            split_at = buf.find(_HEADER_TERMINATOR, self._scan_from)
            if split_at < 0:
                if len(buf) > self.max_header_bytes:
                    raise MimeError(
                        f"header block exceeds {self.max_header_bytes} bytes "
                        "with no terminator"
                    )
                # the terminator may straddle the next chunk: back up one byte
                self._scan_from = max(0, len(buf) - 1)
                return None
            if split_at > self.max_header_bytes:
                raise MimeError(f"header block exceeds {self.max_header_bytes} bytes")
            try:
                text = bytes(memoryview(buf)[:split_at]).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise MimeError(f"header block is not UTF-8: {exc}") from None
            headers = HeaderMap.parse(text)
            # validate the declared length *now*, before buffering against it
            self._need = _validated_length(headers, self.max_frame_bytes)
            self._headers = headers
            self._payload_at = split_at + len(_HEADER_TERMINATOR)
        end = self._payload_at + self._need
        if len(buf) < end:
            return None
        # one copy, exactly the body, via a zero-copy view of the buffer
        payload = bytes(memoryview(buf)[self._payload_at:end])
        headers = self._headers
        self._headers = None
        del buf[:end]
        self._scan_from = 0
        message = _build_message(headers, payload)
        self.frames_out += 1
        return message


def _parse_multipart(payload: bytes, boundary: str) -> list[MimeMessage]:
    delimiter = f"--{boundary}\n".encode()
    closing = f"--{boundary}--".encode()
    parts: list[MimeMessage] = []
    pos = 0
    while pos < len(payload):
        if payload.startswith(closing, pos):
            trailing = payload[pos + len(closing):]
            if trailing:
                raise MimeError("bytes after the closing multipart boundary")
            return parts
        if not payload.startswith(delimiter, pos):
            raise MimeError("malformed multipart: expected a boundary delimiter")
        pos += len(delimiter)
        if pos + 4 > len(payload):
            raise MimeError("truncated multipart part length")
        (part_len,) = struct.unpack_from("<I", payload, pos)
        pos += 4
        if pos + part_len > len(payload):
            raise MimeError("truncated multipart part")
        parts.append(parse_message(payload[pos : pos + part_len]))
        pos += part_len
    raise MimeError("multipart payload missing its closing boundary")
