"""Wire form: serialise :class:`MimeMessage` to bytes and back.

The MobiGATE client "parses the incoming MIME messages" (section 3.4.1),
so messages need a concrete byte representation.  The format is
MIME-shaped and binary-safe:

* header block — ``Name: value`` lines, UTF-8, terminated by a blank line;
* ``Content-Length`` is (re)stamped on serialisation and trusted on parse,
  so bodies may contain anything, including CRLFs;
* multipart bodies use a generated boundary recorded as a ``boundary``
  parameter on the content type, each part serialised recursively;
* structured payloads are encoded through a payload-codec registry keyed
  by the ``X-MobiGATE-Payload`` header: ``raster`` (numpy image planes
  with a shape prefix) and ``psdoc`` (the document's textual wire form).
  Plain ``bytes``/``str`` payloads need no marker.

``parse_message(serialize_message(m))`` reproduces the message up to
payload identity (structured payloads compare equal, not identical).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.imagefmt import ImageRaster
from repro.codecs.psdoc import PsDocument
from repro.errors import MimeError
from repro.mime.headers import CONTENT_LENGTH, CONTENT_TYPE, HeaderMap
from repro.mime.mediatype import MediaType
from repro.mime.message import MimeMessage
from repro.util.ids import IdGenerator

PAYLOAD_KIND = "X-MobiGATE-Payload"
_BOUNDARY_IDS = IdGenerator("mgbd")

_HEADER_TERMINATOR = b"\n\n"


# ---------------------------------------------------------------------------
# structured payload codecs
# ---------------------------------------------------------------------------


def _encode_raster(raster: ImageRaster) -> bytes:
    height, width, _ = raster.pixels.shape
    return struct.pack("<HH", width, height) + raster.pixels.tobytes()


def _decode_raster(data: bytes) -> ImageRaster:
    if len(data) < 4:
        raise MimeError("truncated raster payload")
    width, height = struct.unpack_from("<HH", data, 0)
    expected = width * height * 3
    body = data[4:]
    if len(body) != expected:
        raise MimeError(
            f"raster payload is {len(body)} bytes; {width}x{height} needs {expected}"
        )
    pixels = np.frombuffer(body, dtype=np.uint8).reshape(height, width, 3).copy()
    return ImageRaster(pixels)


def _encode_psdoc(document: PsDocument) -> bytes:
    return document.to_source().encode("utf-8")


def _decode_psdoc(data: bytes) -> PsDocument:
    return PsDocument.parse(data.decode("utf-8"))


_CODECS = {
    "raster": (_encode_raster, _decode_raster),
    "psdoc": (_encode_psdoc, _decode_psdoc),
}


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------


def serialize_message(message: MimeMessage) -> bytes:
    """Render a message (and its parts, recursively) to wire bytes."""
    headers = message.headers.copy()
    body = message.body

    if isinstance(body, list):  # multipart
        boundary = _BOUNDARY_IDS.next()
        content_type = message.content_type.with_params(boundary=boundary)
        headers.content_type = content_type
        delimiter = f"--{boundary}\n".encode()
        closing = f"--{boundary}--".encode()
        chunks: list[bytes] = []
        for part in body:
            encoded = serialize_message(part)
            chunks.append(delimiter)
            chunks.append(struct.pack("<I", len(encoded)))
            chunks.append(encoded)
        chunks.append(closing)
        payload = b"".join(chunks)
        headers.remove(PAYLOAD_KIND)
    elif isinstance(body, ImageRaster):
        payload = _encode_raster(body)
        headers.set(PAYLOAD_KIND, "raster")
    elif isinstance(body, PsDocument):
        payload = _encode_psdoc(body)
        headers.set(PAYLOAD_KIND, "psdoc")
    elif isinstance(body, str):
        payload = body.encode("utf-8")
        headers.set(PAYLOAD_KIND, "text")
    elif body is None:
        payload = b""
        headers.remove(PAYLOAD_KIND)
    elif isinstance(body, bytes | bytearray | memoryview):
        payload = bytes(body)
        headers.remove(PAYLOAD_KIND)
    else:
        raise MimeError(f"cannot serialise payload of type {type(body).__name__}")

    headers.set(CONTENT_LENGTH, str(len(payload)))
    return headers.format().encode("utf-8") + _HEADER_TERMINATOR + payload


def parse_message(data: bytes) -> MimeMessage:
    """Inverse of :func:`serialize_message`."""
    split_at = data.find(_HEADER_TERMINATOR)
    if split_at < 0:
        raise MimeError("wire message has no header terminator")
    headers = HeaderMap.parse(data[:split_at].decode("utf-8"))
    content_type = headers.content_type
    if content_type is None:
        raise MimeError("wire message lacks Content-Type")
    length_raw = headers.get(CONTENT_LENGTH)
    if length_raw is None:
        raise MimeError("wire message lacks Content-Length")
    try:
        length = int(length_raw)
    except ValueError:
        raise MimeError(f"bad Content-Length {length_raw!r}") from None
    payload = data[split_at + len(_HEADER_TERMINATOR):]
    if len(payload) != length:
        raise MimeError(
            f"Content-Length says {length} but payload is {len(payload)} bytes"
        )

    body: object
    if content_type.maintype == "multipart" and content_type.param("boundary"):
        body = _parse_multipart(payload, content_type.param("boundary"))
        headers.content_type = content_type.without_params()
    else:
        kind = headers.get(PAYLOAD_KIND)
        if kind is None:
            body = payload
        elif kind == "text":
            body = payload.decode("utf-8")
            headers.remove(PAYLOAD_KIND)
        elif kind in _CODECS:
            body = _CODECS[kind][1](payload)
            headers.remove(PAYLOAD_KIND)
        else:
            raise MimeError(f"unknown payload kind {kind!r}")

    message = MimeMessage.__new__(MimeMessage)
    message.headers = headers
    message.body = body
    return message


def _parse_multipart(payload: bytes, boundary: str) -> list[MimeMessage]:
    delimiter = f"--{boundary}\n".encode()
    closing = f"--{boundary}--".encode()
    parts: list[MimeMessage] = []
    pos = 0
    while pos < len(payload):
        if payload.startswith(closing, pos):
            trailing = payload[pos + len(closing):]
            if trailing:
                raise MimeError("bytes after the closing multipart boundary")
            return parts
        if not payload.startswith(delimiter, pos):
            raise MimeError("malformed multipart: expected a boundary delimiter")
        pos += len(delimiter)
        if pos + 4 > len(payload):
            raise MimeError("truncated multipart part length")
        (part_len,) = struct.unpack_from("<I", payload, pos)
        pos += 4
        if pos + part_len > len(payload):
            raise MimeError("truncated multipart part")
        parts.append(parse_message(payload[pos : pos + part_len]))
        pos += part_len
    raise MimeError("multipart payload missing its closing boundary")
