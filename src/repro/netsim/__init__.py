"""Emulated wireless environment (replaces the Figure 7-1 testbed).

The thesis ran on three PCs with a Linux router shaping an emulated
wireless hop.  We substitute a virtual-time model with the same knobs the
experiments sweep — bandwidth, propagation delay, loss — plus the context
monitor that turns link conditions into MobiGATE events:

* :class:`WirelessLink` — serialisation (size/bandwidth) + propagation
  delay + Bernoulli loss over a :class:`~repro.util.clock.VirtualClock`;
* :mod:`repro.netsim.traces` — bandwidth-over-time profiles;
* :class:`ContextMonitor` — raises LOW_BANDWIDTH / HIGH_BANDWIDTH with
  hysteresis, feeding the Event Manager;
* :class:`EndToEndEmulator` — drives a server stream, the link, and a
  MobiGATE client on one virtual timeline, charging *measured* CPU time
  for streamlet processing; this is the Figure 7-7 harness.
"""

from repro.netsim.link import WirelessLink
from repro.netsim.traces import BandwidthTrace
from repro.netsim.monitor import ContextMonitor
from repro.netsim.handoff import HandoffManager
from repro.netsim.energy import RadioEnergyModel, EnergyReport
from repro.netsim.emulator import EndToEndEmulator, DirectTransfer, TransferReport

__all__ = [
    "WirelessLink",
    "BandwidthTrace",
    "ContextMonitor",
    "HandoffManager",
    "RadioEnergyModel",
    "EnergyReport",
    "EndToEndEmulator",
    "DirectTransfer",
    "TransferReport",
]
