"""End-to-end emulation: server stream → wireless link → MobiGATE client.

This is the Figure 7-7 harness.  One virtual timeline carries both terms
of Equation 7-2:

* **processing overhead** — real CPU seconds spent pumping the stream,
  measured with a wall clock and charged to the virtual clock;
* **transmission time** — size/bandwidth + propagation delay, computed by
  the :class:`WirelessLink` in virtual time.

The stream's ``communicator`` streamlet is given a transport that submits
each processed message to the link; arrivals are delivered to the client
(reverse peer processing) in arrival order.  ``DirectTransfer`` is the
no-proxy baseline: the same workload pushed straight through the link.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.client.client import MobiGateClient
from repro.errors import NetSimError
from repro.mime.message import MimeMessage
from repro.mime.wire import parse_message, serialize_message
from repro.netsim.link import WirelessLink
from repro.netsim.monitor import ContextMonitor
from repro.runtime.scheduler import InlineScheduler
from repro.runtime.stream import RuntimeStream
from repro.util.clock import VirtualClock


@dataclass
class TransferReport:
    """Totals for one emulated run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    app_messages: int = 0
    bytes_offered_app: int = 0        # application payload entering the system
    bytes_on_link: int = 0            # what actually crossed the wireless hop
    bytes_delivered_app: int = 0      # application payload after reverse processing
    processing_time: float = 0.0      # CPU seconds charged to the timeline
    elapsed: float = 0.0              # virtual end-to-end time
    losses: int = 0
    latencies: list[float] = field(default_factory=list)
    #: delivery schedule (virtual arrival time, wire bytes) — feeds the
    #: client radio energy model
    arrivals: list[tuple[float, int]] = field(default_factory=list)

    @property
    def throughput_bps(self) -> float:
        """Delivered application bits per virtual second."""
        if self.elapsed <= 0:
            return 0.0
        return self.bytes_delivered_app * 8.0 / self.elapsed

    @property
    def goodput_bps(self) -> float:
        """Logical content transferred per virtual second.

        Both schemes in Figure 7-7 transfer the same content; lossy
        distillation *represents* it in fewer bytes.  Goodput therefore
        counts the offered content bytes (scaled by the delivered message
        fraction under loss), which is the throughput the thesis compares.
        """
        if self.elapsed <= 0 or self.messages_sent == 0:
            return 0.0
        fraction = self.messages_delivered / max(1, self.messages_sent)
        return self.bytes_offered_app * fraction * 8.0 / self.elapsed

    @property
    def reduction_ratio(self) -> float:
        """link bytes / offered app bytes (< 1 when adaptation pays off)."""
        if self.bytes_offered_app == 0:
            return 1.0
        return self.bytes_on_link / self.bytes_offered_app


class EndToEndEmulator:
    """Drive a deployed stream over an emulated link into a client."""

    def __init__(
        self,
        stream: RuntimeStream,
        link: WirelessLink,
        client: MobiGateClient,
        *,
        communicator: str = "comm",
        monitor: ContextMonitor | None = None,
        charge_processing_time: bool = True,
    ):
        if not isinstance(link.clock, VirtualClock):
            raise NetSimError("the emulator needs a VirtualClock-backed link")
        self.stream = stream
        self.link = link
        self.client = client
        self.clock: VirtualClock = link.clock
        self.monitor = monitor
        self._charge = charge_processing_time
        self._scheduler = InlineScheduler(stream)
        self._outbox: list[MimeMessage] = []
        self.report = TransferReport()

        node = stream.node(communicator)
        node.ctx.params["transport"] = self._outbox.append

    # -- the run ------------------------------------------------------------------

    def send(self, message: MimeMessage) -> None:
        """Push one application message through the whole pipeline."""
        self.report.messages_sent += 1
        self.report.bytes_offered_app += message.total_size()
        if self.monitor is not None:
            self.monitor.check()

        wall_start = time.perf_counter()
        self.stream.post(message)
        self._scheduler.pump()
        processing = time.perf_counter() - wall_start
        self.report.processing_time += processing
        if self._charge:
            self.clock.advance(processing)

        for processed in self._drain_outbox():
            self._transmit(processed)

    def _drain_outbox(self) -> list[MimeMessage]:
        out = self._outbox[:]
        self._outbox.clear()
        return out

    def _transmit(self, message: MimeMessage) -> None:
        # real wire bytes cross the emulated link: serialisation cost is
        # charged as processing, and the client parses what actually arrives
        wall_start = time.perf_counter()
        wire = serialize_message(message)
        serialise_cost = time.perf_counter() - wall_start
        self.report.processing_time += serialise_cost
        if self._charge:
            self.clock.advance(serialise_cost)
        size = len(wire)
        result = self.link.transmit(size)
        self.report.bytes_on_link += size
        if result.lost:
            self.report.losses += 1
            return
        # wait for the arrival, then reverse-process at the client
        self.clock.advance_to(result.arrival)
        self.report.arrivals.append((result.arrival, size))
        wall_start = time.perf_counter()
        delivered = self.client.receive(parse_message(wire))
        processing = time.perf_counter() - wall_start
        self.report.processing_time += processing
        if self._charge:
            self.clock.advance(processing)
        self.report.messages_delivered += 1
        self.report.app_messages += len(delivered)
        for app_message in delivered:
            self.report.bytes_delivered_app += app_message.total_size()

    def run(self, messages) -> TransferReport:
        """Send a whole workload; finalise and return the report."""
        start = self.clock.now()
        for message in messages:
            self.send(message)
        self.report.elapsed = self.clock.now() - start
        return self.report


class DirectTransfer:
    """The no-proxy baseline: the workload crosses the link untouched."""

    def __init__(self, link: WirelessLink):
        if not isinstance(link.clock, VirtualClock):
            raise NetSimError("the emulator needs a VirtualClock-backed link")
        self.link = link
        self.clock: VirtualClock = link.clock
        self.report = TransferReport()

    def run(self, messages) -> TransferReport:
        """Push the workload straight through the link; returns the report."""
        start = self.clock.now()
        for message in messages:
            size = message.total_size()
            self.report.messages_sent += 1
            self.report.bytes_offered_app += size
            self.report.bytes_on_link += size
            result = self.link.transmit(size)
            if result.lost:
                self.report.losses += 1
                continue
            self.clock.advance_to(result.arrival)
            self.report.messages_delivered += 1
            self.report.app_messages += 1
            self.report.bytes_delivered_app += size
        self.report.elapsed = self.clock.now() - start
        return self.report
