"""A client radio energy model (for the power-saving adaptation, §4.3).

Handheld radios burn most of their budget on wakeups and idle listening;
the cited power-saving literature ([Anastasi02]) batches traffic so the
radio can sleep between bursts.  This model makes that measurable:

* the radio **wakes** for each delivery burst (fixed ``wakeup_j`` joules),
* **receives** at ``rx_j_per_byte`` joules/byte,
* then **lingers** awake for ``linger_s`` seconds (at ``active_w`` watts)
  waiting for more traffic before sleeping; arrivals inside the linger
  window extend it instead of paying a new wakeup.

``consumed(arrivals)`` folds a schedule of ``(virtual time, bytes)``
deliveries into total joules plus the wakeup count, so the power-saving
ablation can compare bundled vs unbundled traffic on equal terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetSimError


@dataclass(frozen=True)
class EnergyReport:
    wakeups: int
    joules: float
    rx_bytes: int
    awake_seconds: float

    @property
    def joules_per_byte(self) -> float:
        return self.joules / self.rx_bytes if self.rx_bytes else 0.0


class RadioEnergyModel:
    """Wakeup + reception + linger energy accounting."""

    def __init__(
        self,
        *,
        wakeup_j: float = 0.015,
        rx_j_per_byte: float = 2.0e-7,
        active_w: float = 0.8,
        linger_s: float = 0.1,
    ):
        for name, value in [
            ("wakeup_j", wakeup_j),
            ("rx_j_per_byte", rx_j_per_byte),
            ("active_w", active_w),
            ("linger_s", linger_s),
        ]:
            if value < 0:
                raise NetSimError(f"{name} must be >= 0, got {value}")
        self.wakeup_j = wakeup_j
        self.rx_j_per_byte = rx_j_per_byte
        self.active_w = active_w
        self.linger_s = linger_s

    def consumed(self, arrivals: list[tuple[float, int]]) -> EnergyReport:
        """Energy for a delivery schedule of ``(time, size_bytes)`` pairs."""
        if not arrivals:
            return EnergyReport(wakeups=0, joules=0.0, rx_bytes=0, awake_seconds=0.0)
        ordered = sorted(arrivals)
        for timestamp, size in ordered:
            if timestamp < 0 or size < 0:
                raise NetSimError(f"bad arrival ({timestamp}, {size})")
        wakeups = 0
        awake = 0.0
        rx_bytes = 0
        sleep_at = -1.0  # radio asleep before the first arrival
        for timestamp, size in ordered:
            if timestamp > sleep_at:
                wakeups += 1
                burst_start = timestamp
            else:
                burst_start = None  # still awake from the previous burst
            rx_bytes += size
            end_of_linger = timestamp + self.linger_s
            if burst_start is not None:
                awake += end_of_linger - burst_start
                sleep_at = end_of_linger
            elif end_of_linger > sleep_at:
                awake += end_of_linger - sleep_at
                sleep_at = end_of_linger
        joules = (
            wakeups * self.wakeup_j
            + rx_bytes * self.rx_j_per_byte
            + awake * self.active_w
        )
        return EnergyReport(
            wakeups=wakeups, joules=joules, rx_bytes=rx_bytes, awake_seconds=awake
        )
