"""Vertical handoff between wireless interfaces (§2.2.1 / §8.2.1).

TranSend's vertical-handoff support — "the client-side software generates
a notification packet containing some essential characteristics of the new
network" — is on MobiGATE's future-work list.  This module implements it
for the emulation: a :class:`HandoffManager` owns several named links
(e.g. ``wavelan`` at 1 Mb/s and ``gsm`` at 20 Kb/s), exposes the *active*
one, and on ``switch_to`` raises the matching bandwidth event so deployed
streams re-adapt exactly as they do for in-link fades.

All links share one virtual clock; link-level state (busy-until) is
per-interface, as with real radios.
"""

from __future__ import annotations

from repro.errors import NetSimError
from repro.netsim.link import Transmission, WirelessLink
from repro.runtime.events import EventManager
from repro.util.clock import VirtualClock


class HandoffManager:
    """Named wireless interfaces with event-raising handoff."""

    def __init__(
        self,
        events: EventManager,
        *,
        low_threshold_bps: float = 100_000.0,
        source: str | None = None,
    ):
        if low_threshold_bps <= 0:
            raise NetSimError("threshold must be positive")
        self._events = events
        self._low = low_threshold_bps
        self._source = source
        self._links: dict[str, WirelessLink] = {}
        self._active: str | None = None
        self._clock: VirtualClock | None = None
        self.handoffs: list[tuple[float, str, str | None]] = []

    # -- interface registry -------------------------------------------------------

    def add_link(self, name: str, link: WirelessLink) -> None:
        """Register an interface; the first one becomes active."""
        if name in self._links:
            raise NetSimError(f"interface {name!r} already registered")
        if not isinstance(link.clock, VirtualClock):
            raise NetSimError("handoff links must share a VirtualClock")
        if self._clock is None:
            self._clock = link.clock
        elif link.clock is not self._clock:
            raise NetSimError("all interfaces must share one clock")
        self._links[name] = link
        if self._active is None:
            self._active = name

    def link(self, name: str) -> WirelessLink:
        """The link registered under ``name``; NetSimError if unknown."""
        try:
            return self._links[name]
        except KeyError:
            raise NetSimError(f"no interface {name!r}") from None

    @property
    def active_name(self) -> str:
        if self._active is None:
            raise NetSimError("no interfaces registered")
        return self._active

    @property
    def active(self) -> WirelessLink:
        return self.link(self.active_name)

    def interfaces(self) -> list[str]:
        """The registered interface names."""
        return list(self._links)

    # -- handoff ---------------------------------------------------------------------

    def switch_to(self, name: str) -> str | None:
        """Activate interface ``name``; raise the notification event.

        Returns the event raised (LOW_BANDWIDTH / HIGH_BANDWIDTH), or None
        when the bandwidth class did not change across the handoff.
        """
        new_link = self.link(name)
        old_name = self._active
        if old_name == name:
            return None
        old_low = self.active.bandwidth_bps < self._low if old_name else None
        self._active = name
        now = self._clock.now() if self._clock else 0.0
        self.handoffs.append((now, name, old_name))
        new_low = new_link.bandwidth_bps < self._low
        if old_low is None or new_low != old_low:
            event = "LOW_BANDWIDTH" if new_low else "HIGH_BANDWIDTH"
            self._events.raise_event(event, source=self._source)
            return event
        return None

    def storm(self, names: list[str] | tuple[str, ...], rounds: int = 1) -> list[str]:
        """Rapid alternation across ``names`` — the handoff-storm fault.

        Performs ``rounds`` passes over the interface list, switching to
        each in turn; every bandwidth-class edge raises its notification
        event, so a storm exercises the reconfiguration machinery exactly
        as fast successive real handoffs would.  Returns the events raised.
        """
        if rounds < 1:
            raise NetSimError(f"storm needs at least one round, got {rounds}")
        raised: list[str] = []
        for _ in range(rounds):
            for name in names:
                event = self.switch_to(name)
                if event is not None:
                    raised.append(event)
        return raised

    # -- link-compatible transmit (so the emulator can use the manager) -----------------

    def transmit(self, size_bytes: int, at: float | None = None) -> Transmission:
        """Transmit on the active interface (link-compatible signature)."""
        return self.active.transmit(size_bytes, at)

    @property
    def bandwidth_bps(self) -> float:
        return self.active.bandwidth_bps

    @property
    def clock(self) -> VirtualClock:
        if self._clock is None:
            raise NetSimError("no interfaces registered")
        return self._clock
