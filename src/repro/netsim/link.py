"""The wireless hop: a serialising, delaying, lossy pipe in virtual time.

Transmission of ``size`` bytes takes ``size * 8 / bandwidth`` seconds of
link occupancy (transmissions serialise — the link is busy until the last
bit leaves), then the message propagates for ``delay`` seconds.  Loss is
Bernoulli per message with a seeded generator so runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetSimError
from repro.util.clock import VirtualClock


@dataclass(frozen=True)
class Transmission:
    """Outcome of one send."""

    start: float
    arrival: float | None  # None = lost
    size: int

    @property
    def lost(self) -> bool:
        return self.arrival is None


class WirelessLink:
    """One direction of the emulated wireless hop."""

    def __init__(
        self,
        bandwidth_bps: float,
        *,
        propagation_delay: float = 0.0,
        loss_rate: float = 0.0,
        clock: VirtualClock | None = None,
        seed: int = 0,
    ):
        if bandwidth_bps <= 0:
            raise NetSimError(f"bandwidth must be positive, got {bandwidth_bps}")
        if propagation_delay < 0:
            raise NetSimError(f"delay must be >= 0, got {propagation_delay}")
        if not 0.0 <= loss_rate < 1.0:
            raise NetSimError(f"loss rate must be in [0, 1), got {loss_rate}")
        self._bandwidth = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        self.loss_rate = float(loss_rate)
        self.clock = clock if clock is not None else VirtualClock()
        self._rng = np.random.default_rng(seed)
        self._next_free = 0.0
        self._outage_until = 0.0
        # observability
        self.bytes_offered = 0
        self.bytes_delivered = 0
        self.transmissions = 0
        self.losses = 0
        self.outage_losses = 0
        self.busy_time = 0.0

    # -- conditions --------------------------------------------------------------

    @property
    def bandwidth_bps(self) -> float:
        return self._bandwidth

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Change the link rate (affects subsequent transmissions)."""
        if bandwidth_bps <= 0:
            raise NetSimError(f"bandwidth must be positive, got {bandwidth_bps}")
        self._bandwidth = float(bandwidth_bps)

    def set_loss_rate(self, loss_rate: float) -> None:
        """Change the Bernoulli loss rate (affects subsequent transmissions)."""
        if not 0.0 <= loss_rate < 1.0:
            raise NetSimError(f"loss rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = float(loss_rate)

    # -- outages (the fault-injection hook) ----------------------------------------

    def begin_outage(self, duration: float) -> float:
        """Take the link down for ``duration`` virtual seconds from now.

        Every transmission started inside the outage window is lost
        deterministically (no RNG draw, so the loss stream of the
        surviving traffic is unchanged — seeded runs stay bit-identical).
        Returns the virtual time the outage ends.
        """
        if duration <= 0:
            raise NetSimError(f"outage duration must be positive, got {duration}")
        self._outage_until = max(self._outage_until, self.clock.now() + duration)
        return self._outage_until

    def end_outage(self) -> None:
        """Restore the link immediately."""
        self._outage_until = 0.0

    @property
    def in_outage(self) -> bool:
        return self.clock.now() < self._outage_until

    # -- transfer -------------------------------------------------------------------

    def transmission_time(self, size_bytes: int) -> float:
        """Serialisation time for ``size_bytes`` at the current rate."""
        return size_bytes * 8.0 / self._bandwidth

    def transmit(self, size_bytes: int, at: float | None = None) -> Transmission:
        """Send ``size_bytes``; returns start and arrival (virtual) times.

        ``at`` is the earliest send time (defaults to the clock's now); the
        actual start waits for the link to go idle.  The clock is *not*
        advanced — callers decide whether to wait for the arrival.
        """
        if size_bytes < 0:
            raise NetSimError(f"size must be >= 0, got {size_bytes}")
        earliest = self.clock.now() if at is None else at
        start = max(earliest, self._next_free)
        tx = self.transmission_time(size_bytes)
        self._next_free = start + tx
        self.busy_time += tx
        self.bytes_offered += size_bytes
        self.transmissions += 1
        if start < self._outage_until:
            self.losses += 1
            self.outage_losses += 1
            return Transmission(start=start, arrival=None, size=size_bytes)
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.losses += 1
            return Transmission(start=start, arrival=None, size=size_bytes)
        self.bytes_delivered += size_bytes
        return Transmission(start=start, arrival=self._next_free + self.propagation_delay,
                            size=size_bytes)

    @property
    def next_free(self) -> float:
        return self._next_free

    def utilization(self, horizon: float | None = None) -> float:
        """Busy fraction of the timeline up to ``horizon`` (default: now)."""
        end = horizon if horizon is not None else max(self.clock.now(), self._next_free)
        if end <= 0:
            return 0.0
        return min(1.0, self.busy_time / end)
