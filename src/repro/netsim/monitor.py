"""The context monitor: link conditions → MobiGATE events.

The Event Manager of the thesis "monitors the underlying client variations
and composes corresponding events" (section 6.4).  This module is that
monitoring half: it watches a :class:`WirelessLink` (optionally driving it
from a :class:`BandwidthTrace`) and raises ``LOW_BANDWIDTH`` /
``HIGH_BANDWIDTH`` edges with hysteresis, so a link hovering at the
threshold does not thrash the reconfiguration machinery.

The section 7.5 application uses exactly one rule: Text Compressor active
iff bandwidth < 100 Kb/s.
"""

from __future__ import annotations

from repro.errors import NetSimError
from repro.netsim.link import WirelessLink
from repro.netsim.traces import BandwidthTrace
from repro.runtime.events import EventManager
from repro.telemetry import Telemetry


class ContextMonitor:
    """Threshold watcher with edge-triggered events.

    With a :class:`~repro.telemetry.Telemetry` facade attached, every
    check publishes the observed bandwidth to a per-link gauge and every
    raised edge increments a per-link event counter, so an export taken
    mid-run shows what the adaptation machinery is reacting to.
    """

    def __init__(
        self,
        link: WirelessLink,
        events: EventManager,
        *,
        low_threshold_bps: float,
        hysteresis: float = 0.05,
        trace: BandwidthTrace | None = None,
        source: str | None = None,
        fire_initial: bool = False,
        telemetry: Telemetry | None = None,
    ):
        if low_threshold_bps <= 0:
            raise NetSimError("threshold must be positive")
        if not 0.0 <= hysteresis < 1.0:
            raise NetSimError("hysteresis must be in [0, 1)")
        self._link = link
        self._events = events
        self._low = low_threshold_bps
        self._hysteresis = hysteresis
        self._trace = trace
        self._source = source
        self._in_low_state = link.bandwidth_bps < low_threshold_bps
        #: with ``fire_initial``, a link that *starts* below the threshold
        #: raises LOW_BANDWIDTH on the first check (not just on an edge)
        self._fire_initial_pending = fire_initial
        self.raised: list[tuple[float, str]] = []
        self._telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        self._bw_gauge = (
            self._telemetry.link_bandwidth_gauge(source or "wireless")
            if self._telemetry is not None
            else None
        )

    def _count_edge(self, event: str) -> None:
        """Publish one raised edge to the per-link event counter."""
        if self._telemetry is not None:
            self._telemetry.link_event_counter(self._source or "wireless", event).inc()

    @property
    def in_low_state(self) -> bool:
        return self._in_low_state

    def check(self, now: float | None = None) -> str | None:
        """Apply the trace (if any) and raise an event on a state edge."""
        t = self._link.clock.now() if now is None else now
        if self._trace is not None:
            self._link.set_bandwidth(self._trace.value_at(t))
        bandwidth = self._link.bandwidth_bps
        if self._bw_gauge is not None:
            self._bw_gauge.set(bandwidth)
        if self._fire_initial_pending:
            self._fire_initial_pending = False
            if self._in_low_state:
                self._events.raise_event("LOW_BANDWIDTH", source=self._source)
                self.raised.append((t, "LOW_BANDWIDTH"))
                self._count_edge("LOW_BANDWIDTH")
                return "LOW_BANDWIDTH"
        if not self._in_low_state and bandwidth < self._low * (1 - self._hysteresis):
            self._in_low_state = True
            self._events.raise_event("LOW_BANDWIDTH", source=self._source)
            self.raised.append((t, "LOW_BANDWIDTH"))
            self._count_edge("LOW_BANDWIDTH")
            return "LOW_BANDWIDTH"
        if self._in_low_state and bandwidth >= self._low * (1 + self._hysteresis):
            self._in_low_state = False
            self._events.raise_event("HIGH_BANDWIDTH", source=self._source)
            self.raised.append((t, "HIGH_BANDWIDTH"))
            self._count_edge("HIGH_BANDWIDTH")
            return "HIGH_BANDWIDTH"
        return None
