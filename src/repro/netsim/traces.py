"""Bandwidth-over-time profiles for dynamic-condition experiments.

A trace is a piecewise-constant function ``t -> bandwidth_bps``.  Builders
cover the scenarios the thesis motivates: a constant link, step changes
(walking out of coverage), a fade-and-recover dip, and a seeded bounded
random walk for "highly dynamic network conditions".
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.errors import NetSimError


class BandwidthTrace:
    """Piecewise-constant bandwidth schedule."""

    def __init__(self, steps: list[tuple[float, float]]):
        """``steps`` = [(start_time, bandwidth_bps), ...]; first must be t=0."""
        if not steps:
            raise NetSimError("trace needs at least one step")
        times = [t for t, _ in steps]
        if times[0] != 0.0:
            raise NetSimError("trace must start at t=0")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise NetSimError("trace times must be strictly increasing")
        for _, bw in steps:
            if bw <= 0:
                raise NetSimError(f"bandwidth must be positive, got {bw}")
        self._times = times
        self._values = [bw for _, bw in steps]

    def value_at(self, t: float) -> float:
        """The bandwidth in force at time ``t``."""
        if t < 0:
            raise NetSimError(f"time must be >= 0, got {t}")
        index = bisect_right(self._times, t) - 1
        return self._values[index]

    def steps(self) -> list[tuple[float, float]]:
        """The (time, bandwidth) steps, in order."""
        return list(zip(self._times, self._values))

    def change_points(self) -> list[float]:
        """The times (t > 0) at which the bandwidth steps."""
        return list(self._times[1:])

    # -- builders ------------------------------------------------------------------

    @classmethod
    def constant(cls, bandwidth_bps: float) -> "BandwidthTrace":
        return cls([(0.0, bandwidth_bps)])

    @classmethod
    def step(cls, before_bps: float, after_bps: float, at: float) -> "BandwidthTrace":
        if at <= 0:
            raise NetSimError("step time must be positive")
        return cls([(0.0, before_bps), (at, after_bps)])

    @classmethod
    def fade(
        cls, normal_bps: float, faded_bps: float, start: float, duration: float
    ) -> "BandwidthTrace":
        """Dip to ``faded_bps`` during [start, start+duration)."""
        if start <= 0 or duration <= 0:
            raise NetSimError("fade start and duration must be positive")
        return cls([(0.0, normal_bps), (start, faded_bps), (start + duration, normal_bps)])

    @classmethod
    def random_walk(
        cls,
        *,
        start_bps: float,
        minimum_bps: float,
        maximum_bps: float,
        interval: float,
        steps: int,
        volatility: float = 0.25,
        seed: int = 0,
    ) -> "BandwidthTrace":
        """Seeded multiplicative random walk, clamped to [min, max]."""
        if not minimum_bps <= start_bps <= maximum_bps:
            raise NetSimError("start bandwidth outside [minimum, maximum]")
        if interval <= 0 or steps < 1:
            raise NetSimError("interval must be positive and steps >= 1")
        rng = np.random.default_rng(seed)
        points = [(0.0, start_bps)]
        current = start_bps
        for index in range(1, steps):
            factor = float(np.exp(rng.normal(0.0, volatility)))
            current = min(maximum_bps, max(minimum_bps, current * factor))
            points.append((index * interval, current))
        return cls(points)
