"""Wireless TCP substrate: plain TCP vs Snoop vs Indirect TCP (§2.1).

The thesis motivates proxy-based adaptation with the classic result that
"TCP does not work well on many wireless links": random wireless loss is
misread as congestion, collapsing the sender's window.  Two fixes it
reviews — the **Snoop** agent (cache + local retransmission at the base
station, §2.1.2) and **Indirect TCP** (split the connection at the base
station, §2.1.3) — both place intelligence exactly where MobiGATE places
its proxy.  This module reproduces that comparison on a small
discrete-event model so the motivation is measurable, not cited.

Model (documented simplifications):

* fixed-size segments; a wired hop (reliable, fixed one-way delay) and a
  wireless hop (fixed delay, Bernoulli data loss; ACKs are not lost);
* the sender is a classic Reno-style loop: slow start, congestion
  avoidance, triple-duplicate-ACK fast retransmit (window halving), and a
  coarse retransmission timeout that resets to slow start;
* the Snoop agent caches data segments at the base station, retransmits
  locally on a duplicate ACK or a (short) local timeout, and suppresses
  duplicate ACKs so the sender never sees the wireless loss;
* Indirect TCP runs two independent senders: wired sender → base station
  (lossless, so it just streams) and base station → mobile host (a Reno
  loop over the lossy hop with its much shorter RTT).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetSimError


class EventSim:
    """A tiny discrete-event loop."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, object]] = []
        self._counter = 0

    def at(self, time: float, fn) -> None:
        """Schedule ``fn`` at absolute ``time`` (must not be in the past)."""
        if time < self.now:
            raise NetSimError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._counter, fn))
        self._counter += 1

    def after(self, delay: float, fn) -> None:
        """Schedule ``fn`` ``delay`` seconds from now."""
        self.at(self.now + delay, fn)

    def run(self, *, until: float | None = None, max_events: int = 2_000_000) -> None:
        """Drain events in time order, optionally stopping at ``until``."""
        events = 0
        while self._heap:
            time, _, fn = heapq.heappop(self._heap)
            if until is not None and time > until:
                return
            self.now = time
            fn()
            events += 1
            if events > max_events:
                raise NetSimError("event budget exhausted; simulation diverged")


@dataclass
class WTcpConfig:
    segments: int = 200               # segments to deliver
    segment_bytes: int = 1000
    wired_delay: float = 0.020        # one-way, seconds
    wireless_delay: float = 0.010     # one-way, seconds
    wireless_loss: float = 0.05       # data-direction Bernoulli loss
    initial_ssthresh: int = 16
    rto: float = 1.0                  # sender retransmission timeout
    snoop_local_timeout: float = 0.06  # ~2x wireless RTT
    seed: int = 0

    def validate(self) -> None:
        """Range-check the configuration; raises NetSimError on bad values."""
        if self.segments < 1:
            raise NetSimError("need at least one segment")
        if not 0.0 <= self.wireless_loss < 1.0:
            raise NetSimError("loss must be in [0, 1)")
        if min(self.wired_delay, self.wireless_delay) < 0:
            raise NetSimError("delays must be >= 0")


@dataclass
class WTcpResult:
    scheme: str
    elapsed: float
    delivered_segments: int
    sender_retransmissions: int       # end-to-end retransmissions
    local_retransmissions: int        # base-station retransmissions
    timeouts: int

    @property
    def goodput_bps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.delivered_segments * 8000.0 / self.elapsed  # 1000-byte segs


class _RenoSender:
    """A minimal Reno loop over an abstract send(seq) primitive."""

    def __init__(
        self, sim: EventSim, total: int, config: WTcpConfig, send, on_done,
        *, rto: float | None = None,
    ):
        self._sim = sim
        self._total = total
        self._config = config
        self._rto = rto if rto is not None else config.rto
        self._send = send
        self._on_done = on_done
        self.cwnd = 1.0
        self.ssthresh = float(config.initial_ssthresh)
        self.next_seq = 0          # next new segment to send
        self.acked = 0             # cumulative: all < acked delivered
        self.dup_acks = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.done = False
        self._timer_id = 0

    # -- transmission -------------------------------------------------------------

    def start(self) -> None:
        self._fill_window()
        self._arm_timer()

    def _fill_window(self) -> None:
        while (
            self.next_seq < self._total
            and self.next_seq - self.acked < int(self.cwnd)
        ):
            self._send(self.next_seq)
            self.next_seq += 1

    def _arm_timer(self) -> None:
        self._timer_id += 1
        timer_id = self._timer_id

        def fire():
            if self.done or timer_id != self._timer_id:
                return
            self._on_timeout()

        self._sim.after(self._rto, fire)

    def _on_timeout(self) -> None:
        # coarse RTO: back to slow start, resend the missing segment
        self.timeouts += 1
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = 1.0
        self.dup_acks = 0
        if self.acked < self._total:
            self._send(self.acked)
            self.retransmissions += 1
        self._arm_timer()

    # -- ACK processing ----------------------------------------------------------------

    def on_ack(self, cumulative: int) -> None:
        if self.done:
            return
        if cumulative > self.acked:
            self.acked = cumulative
            self.dup_acks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0                     # slow start
            else:
                self.cwnd += 1.0 / max(1.0, self.cwnd)  # congestion avoidance
            self._arm_timer()
            if self.acked >= self._total:
                self.done = True
                self._on_done()
                return
            self._fill_window()
        else:
            self.dup_acks += 1
            if self.dup_acks == 3:                   # fast retransmit
                self.ssthresh = max(2.0, self.cwnd / 2)
                self.cwnd = self.ssthresh
                self._send(self.acked)
                self.retransmissions += 1


class _Receiver:
    """Cumulative-ACK receiver with out-of-order buffering."""

    def __init__(self):
        self.expected = 0
        self.buffered: set[int] = set()

    def on_segment(self, seq: int) -> int:
        """Returns the cumulative ACK to send."""
        if seq == self.expected:
            self.expected += 1
            while self.expected in self.buffered:
                self.buffered.discard(self.expected)
                self.expected += 1
        elif seq > self.expected:
            self.buffered.add(seq)
        return self.expected


def _run(scheme: str, config: WTcpConfig) -> WTcpResult:
    config.validate()
    sim = EventSim()
    rng = np.random.default_rng(config.seed)
    receiver = _Receiver()
    finished = {"at": None}
    local_retx = {"count": 0}

    def wireless_data_lost() -> bool:
        return config.wireless_loss > 0 and rng.random() < config.wireless_loss

    if scheme == "plain":
        def send(seq: int) -> None:
            def reach_base():
                if wireless_data_lost():
                    return
                sim.after(config.wireless_delay, lambda: deliver(seq))

            sim.after(config.wired_delay, reach_base)

        def deliver(seq: int) -> None:
            ack = receiver.on_segment(seq)
            sim.after(
                config.wireless_delay + config.wired_delay,
                lambda: sender.on_ack(ack),
            )

        sender = _RenoSender(sim, config.segments, config, send, lambda: finished.update(at=sim.now))
        sender.start()
        sim.run()
        return WTcpResult(
            scheme=scheme,
            elapsed=finished["at"] if finished["at"] is not None else sim.now,
            delivered_segments=receiver.expected,
            sender_retransmissions=sender.retransmissions,
            local_retransmissions=0,
            timeouts=sender.timeouts,
        )

    if scheme == "snoop":
        cache: dict[int, bool] = {}           # seq -> still unacked
        highest_acked = {"value": 0}

        def send(seq: int) -> None:
            sim.after(config.wired_delay, lambda: base_got_data(seq))

        def base_got_data(seq: int, *, local: bool = False) -> None:
            cache[seq] = True
            if local:
                local_retx["count"] += 1
            if wireless_data_lost():
                # local timeout guards against a lost retransmission too
                sim.after(
                    config.snoop_local_timeout,
                    lambda: local_timeout(seq),
                )
                return
            sim.after(config.wireless_delay, lambda: deliver(seq))

        def local_timeout(seq: int) -> None:
            if seq >= highest_acked["value"] and cache.get(seq):
                base_got_data(seq, local=True)

        def deliver(seq: int) -> None:
            ack = receiver.on_segment(seq)
            sim.after(config.wireless_delay, lambda: base_got_ack(ack))

        def base_got_ack(ack: int) -> None:
            if ack > highest_acked["value"]:
                highest_acked["value"] = ack
                for seq in [s for s in cache if s < ack]:
                    del cache[seq]
                sim.after(config.wired_delay, lambda: sender.on_ack(ack))
            else:
                # duplicate ACK: suppress it; retransmit locally if cached
                if cache.get(ack):
                    base_got_data(ack, local=True)

        sender = _RenoSender(sim, config.segments, config, send, lambda: finished.update(at=sim.now))
        sender.start()
        sim.run()
        return WTcpResult(
            scheme=scheme,
            elapsed=finished["at"] if finished["at"] is not None else sim.now,
            delivered_segments=receiver.expected,
            sender_retransmissions=sender.retransmissions,
            local_retransmissions=local_retx["count"],
            timeouts=sender.timeouts,
        )

    if scheme == "split":
        # wired half: lossless, so the base station receives segment k at
        # wired_delay + k * epsilon; the wireless half is its own Reno loop
        def wireless_send(seq: int) -> None:
            if wireless_data_lost():
                return
            sim.after(config.wireless_delay, lambda: deliver(seq))

        def deliver(seq: int) -> None:
            ack = receiver.on_segment(seq)
            sim.after(config.wireless_delay, lambda: wireless_sender.on_ack(ack))

        # the split loop adapts its timer to its own (short) wireless RTT —
        # the mechanism behind Indirect TCP's fast loss recovery
        wireless_rto = max(0.1, 8 * config.wireless_delay)
        wireless_sender = _RenoSender(
            sim, config.segments, config, wireless_send,
            lambda: finished.update(at=sim.now),
            rto=wireless_rto,
        )
        sim.after(config.wired_delay, wireless_sender.start)
        sim.run()
        return WTcpResult(
            scheme=scheme,
            elapsed=finished["at"] if finished["at"] is not None else sim.now,
            delivered_segments=receiver.expected,
            sender_retransmissions=0,
            local_retransmissions=wireless_sender.retransmissions,
            timeouts=wireless_sender.timeouts,
        )

    raise NetSimError(f"unknown scheme {scheme!r}; use plain, snoop, or split")


def run_wtcp(scheme: str, config: WTcpConfig | None = None, **overrides) -> WTcpResult:
    """Run one transfer under ``plain``, ``snoop``, or ``split``."""
    cfg = config if config is not None else WTcpConfig()
    for key, value in overrides.items():
        if not hasattr(cfg, key):
            raise NetSimError(f"unknown config field {key!r}")
        setattr(cfg, key, value)
    return _run(scheme, cfg)
