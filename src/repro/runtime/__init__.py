"""The MobiGATE server runtime (thesis chapters 3 and 6).

Two planes, as in Figure 3-2:

* the **Stream Coordination Plane** — :class:`CoordinationManager` deploys
  compiled configuration tables as :class:`RuntimeStream` objects whose
  channels route messages between streamlet ports;
* the **Streamlet Execution Plane** — :class:`StreamletManager` owns the
  streamlet instances, pooling stateless ones (section 3.3.4).

Messages live once in a :class:`MessagePool` and move between streamlets
by identifier (pass-by-reference, section 6.7).  The
:class:`EventManager` multicasts :class:`~repro.events.ContextEvent`
objects to subscribed streams, whose ``when`` handlers the
reconfiguration engine replays without losing queued messages
(section 6.6).
"""

from repro.runtime.message_pool import MessagePool, PassMode
from repro.runtime.message_queue import MessageQueue
from repro.runtime.channel import Channel
from repro.runtime.streamlet import Streamlet, StreamletState, ForwardingStreamlet
from repro.runtime.directory import StreamletDirectory
from repro.runtime.pool import InstancePool
from repro.runtime.streamlet_manager import StreamletManager
from repro.runtime.events import EventManager
from repro.runtime.stream import RuntimeStream
from repro.runtime.reconfig import (
    CommitRecord,
    LastKnownGoodStore,
    ProbationMonitor,
    ReconfigTransaction,
    ShadowTopology,
    TxnState,
)
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.runtime.process_scheduler import ProcessScheduler, ShardWorkerError
from repro.runtime.coordination import CoordinationManager
from repro.runtime.server import MobiGateServer

__all__ = [
    "CommitRecord",
    "LastKnownGoodStore",
    "ProbationMonitor",
    "ReconfigTransaction",
    "ShadowTopology",
    "TxnState",
    "MessagePool",
    "PassMode",
    "MessageQueue",
    "Channel",
    "Streamlet",
    "StreamletState",
    "ForwardingStreamlet",
    "StreamletDirectory",
    "InstancePool",
    "StreamletManager",
    "EventManager",
    "RuntimeStream",
    "InlineScheduler",
    "ThreadedScheduler",
    "ProcessScheduler",
    "ShardWorkerError",
    "CoordinationManager",
    "MobiGateServer",
]
