"""Runtime channels: a MessageQueue plus the section 4.2.2 semantics.

A channel is a reliable, directed, optionally buffered carrier between one
producer port and one consumer port.  Its *category* governs what happens
when an end is detached while units are pending:

=====  ==========================================================
S      never holds pending units (detach requires an empty queue)
BB     detaching either end breaks both; pending units are dropped
BK     detaching the source keeps the sink side (pending drain);
       detaching the sink breaks both and drops pending
KB     mirror image of BK
KK     cannot be detached at either end
=====  ==========================================================

Synchronous channels (``SYNC``) are zero-length buffers; in the inline
scheduler they behave as a one-slot rendezvous (post must be consumed
before the next post), which preserves the ordering guarantee without
real blocking.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.errors import ChannelError
from repro.mcl import astnodes as ast
from repro.runtime.message_queue import MessageQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import NullStreamTelemetry, StreamTelemetry


class Channel:
    """One producer-port → consumer-port carrier."""

    def __init__(
        self,
        name: str,
        definition: ast.ChannelDef,
        *,
        drop_timeout: float = 0.0,
        telemetry: "StreamTelemetry | NullStreamTelemetry | None" = None,
    ):
        self.name = name
        self.definition = definition
        if definition.sync is ast.ChannelSync.SYNC or definition.category is ast.ChannelCategory.S:
            # zero-length buffer, realised as a single rendezvous slot; the
            # S category *guarantees* no pending units, so it gets the same
            # treatment even when declared ASYNC
            capacity = 0
        else:
            capacity = definition.buffer_kb * 1024
        self.queue = MessageQueue(capacity, drop_timeout=drop_timeout)
        # queue-wait observation: enabled streams bind their telemetry so
        # post/fetch can sample how long ids sit in this queue, and the
        # queue itself records every message's wait + depth/watermark
        if telemetry is not None and telemetry.enabled:
            self._tm = telemetry
            self._wait_hist = telemetry.channel_wait_histogram(name)
            self.queue.record_waits = True
            self.queue.depth_gauge = telemetry.queue_depth_gauge(name)
            self.queue.watermark_gauge = telemetry.queue_watermark_gauge(name)
        else:
            self._tm = None
            self._wait_hist = None
        self.source: ast.PortRef | None = None
        self.sink: ast.PortRef | None = None

    # -- wiring -----------------------------------------------------------------

    @property
    def category(self) -> ast.ChannelCategory:
        return self.definition.category

    @property
    def is_sync(self) -> bool:
        return self.definition.sync is ast.ChannelSync.SYNC

    @property
    def drop_timeout(self) -> float:
        """The queue's configured Figure 6-9 wait-before-drop budget.

        Scheduler stall-retries budget against this (not a stream-wide
        constant), so a channel tuned for patience keeps it even when the
        retry happens outside the original blocking post.
        """
        return self.queue.drop_timeout

    def attach_source(self, ref: ast.PortRef) -> None:
        """Bind the producer port (one per channel)."""
        if self.source is not None:
            raise ChannelError(f"channel {self.name} already has source {self.source}")
        self.source = ref
        self.queue.incr_producers()

    def attach_sink(self, ref: ast.PortRef) -> None:
        """Bind the consumer port (one per channel)."""
        if self.sink is not None:
            raise ChannelError(f"channel {self.name} already has sink {self.sink}")
        self.sink = ref
        self.queue.incr_consumers()

    def detach_source(self) -> list[str]:
        """Detach the producer end; returns ids dropped (category-dependent)."""
        if self.source is None:
            raise ChannelError(f"channel {self.name} has no source to detach")
        self._check_detachable()
        self.source = None
        self.queue.decr_producers()
        if self.category in (ast.ChannelCategory.BB, ast.ChannelCategory.KB):
            # the other end breaks too; pending units are lost
            dropped = self.queue.drain()
            if self.sink is not None:
                self.sink = None
                self.queue.decr_consumers()
            return dropped
        # BK / S: sink keeps draining what is pending (S is empty anyway)
        return []

    def detach_sink(self) -> list[str]:
        """Detach the consumer end; returns ids dropped (category-dependent)."""
        if self.sink is None:
            raise ChannelError(f"channel {self.name} has no sink to detach")
        self._check_detachable()
        self.sink = None
        self.queue.decr_consumers()
        if self.category in (ast.ChannelCategory.BB, ast.ChannelCategory.BK):
            dropped = self.queue.drain()
            if self.source is not None:
                self.source = None
                self.queue.decr_producers()
            return dropped
        # KB: source side stays attached (it will block/drop on a full queue)
        return []

    def reattach_source(self, ref: ast.PortRef) -> None:
        """Atomically swap the producer end, keeping pending units.

        Coordinator-internal: used by heal/replace rewiring where the
        channel conceptually survives, so category semantics (which govern
        user-visible disconnects) do not apply.
        """
        if self.source is None:
            self.queue.incr_producers()
        self.source = ref

    def reattach_sink(self, ref: ast.PortRef) -> None:
        """Atomically swap the consumer end, keeping pending units."""
        if self.sink is None:
            self.queue.incr_consumers()
        self.sink = ref

    def _check_detachable(self) -> None:
        if self.category is ast.ChannelCategory.KK:
            raise ChannelError(f"channel {self.name} is KK: ends cannot be detached")
        if self.category is ast.ChannelCategory.S and not self.queue.is_empty():
            raise ChannelError(
                f"channel {self.name} is S-category but holds a pending unit"
            )

    # -- transfer ------------------------------------------------------------------

    def post(self, msg_id: str, size: int, *, timeout: float | None = None) -> bool:
        """Enqueue a message id; False if dropped (Figure 6-9 policy).

        Queue-wait sampling is inlined (no telemetry method call): only ids
        the stream marked as traced get a timestamp, so untraced traffic
        pays a single set lookup here.
        """
        posted = self.queue.post_message(msg_id, size, timeout=timeout)
        if posted:
            tm = self._tm
            if tm is not None and msg_id in tm.traced_ids:
                tm.enqueued[msg_id] = time.perf_counter()
        return posted

    def fetch(self, timeout: float | None = 0.0) -> str | None:
        """Dequeue the oldest message id, or None."""
        msg_id = self.queue.fetch_message(timeout)
        if msg_id is not None:
            tm = self._tm
            if tm is not None and tm.enqueued:
                started = tm.enqueued.pop(msg_id, None)
                if started is not None:
                    self._wait_hist.observe(time.perf_counter() - started)
        return msg_id

    def pending(self) -> int:
        """Messages currently queued."""
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Channel({self.name}, {self.definition.sync.value}/"
            f"{self.category.value}, {self.source} -> {self.sink}, "
            f"{self.pending()} pending)"
        )
