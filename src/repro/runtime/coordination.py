"""The Coordination Manager (section 3.3.1).

Deploys compiled configuration tables as live streams, holds the table per
running stream ("the configuration table acts as the routing table"), and
bridges the Event Manager to the streams: it subscribes each stream to the
categories of the events its handlers mention, so superfluous events never
reach it (section 6.4).
"""

from __future__ import annotations

from repro.errors import CompositionError
from repro.events import ContextEvent, EventCategory
from repro.mcl.config import ConfigurationTable
from repro.mime.registry import TypeRegistry, default_registry
from repro.runtime.events import EventManager
from repro.runtime.message_pool import MessagePool, PassMode
from repro.runtime.stream import RuntimeStream
from repro.runtime.streamlet_manager import StreamletManager
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.util.clock import Clock, WallClock
from repro.util.ids import IdGenerator


class _StreamSubscriber:
    """Adapter presenting a RuntimeStream to the Event Manager."""

    def __init__(self, stream: RuntimeStream, counter=None):
        self.stream = stream
        self._counter = counter

    @property
    def name(self) -> str:
        return self.stream.name

    def on_event(self, event: ContextEvent) -> None:
        if self._counter is not None:
            self._counter.inc()
        self.stream.on_event(event)


class CoordinationManager:
    """Stream deployment and event routing."""

    def __init__(
        self,
        manager: StreamletManager,
        events: EventManager,
        *,
        registry: TypeRegistry | None = None,
        clock: Clock | None = None,
        pass_mode: PassMode = PassMode.REFERENCE,
        drop_timeout: float = 0.0,
        telemetry: Telemetry | None = None,
        fuse: bool = True,
    ):
        self._manager = manager
        self._events = events
        self._registry = registry if registry is not None else default_registry()
        self._clock = clock if clock is not None else WallClock()
        self._pass_mode = pass_mode
        self._drop_timeout = drop_timeout
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._fuse = fuse
        self._streams: dict[str, RuntimeStream] = {}
        self._subscriptions: dict[str, list[tuple[EventCategory, _StreamSubscriber]]] = {}
        self._sessions = IdGenerator("sess")

    # -- deployment -----------------------------------------------------------------

    def deploy(self, table: ConfigurationTable, *, start: bool = True) -> RuntimeStream:
        """Instantiate a stream from its configuration table.

        A unique session id is generated per deployment (section 4.4.3) so
        messages from different streams stay distinguishable even through
        shared streamlet instances.
        """
        if table.stream_name in self._streams:
            raise CompositionError(f"stream {table.stream_name!r} already deployed")
        pool_gauge = (
            self._telemetry.pool_gauge(table.stream_name)
            if self._telemetry.enabled
            else None
        )
        stream = RuntimeStream(
            table,
            self._manager,
            pool=MessagePool(self._pass_mode, gauge=pool_gauge),
            registry=self._registry,
            clock=self._clock,
            session=self._sessions.next(),
            drop_timeout=self._drop_timeout,
            telemetry=self._telemetry,
            fuse=self._fuse,
        )
        self._streams[stream.name] = stream
        self._subscribe_stream(stream)

        def report_fault(instance_id: str, exc: Exception, _name=stream.name) -> None:
            # scoped to the faulting stream so other streams are undisturbed
            self._events.raise_event("STREAMLET_FAULT", source=_name)

        stream.failure_hook = report_fault

        def escalate(kind: str, exc: Exception, _name=stream.name) -> None:
            # a rejected or rolled-back reconfiguration transaction becomes
            # a scoped context event (RECONFIG_REJECTED / RECONFIG_ROLLED_BACK)
            # instead of unwinding the monitor/event thread
            self._events.raise_event(kind, source=_name)

        stream.escalation_hook = escalate
        if start:
            stream.start()
        return stream

    def _subscribe_stream(self, stream: RuntimeStream) -> None:
        """Subscribe to the categories the handlers mention.

        Every stream additionally receives System Commands: PAUSE / RESUME
        / END have built-in runtime behaviour (section 6.4) regardless of
        what the script declares.
        """
        counter = (
            self._telemetry.event_counter(stream.name)
            if self._telemetry.enabled
            else None
        )
        subscriber = _StreamSubscriber(stream, counter)
        categories: set[EventCategory] = {EventCategory.SYSTEM_COMMAND}
        for event_name in stream.table.handlers:
            categories.add(self._events.catalog.category_of(event_name))
        subs: list[tuple[EventCategory, _StreamSubscriber]] = []
        for category in sorted(categories):
            self._events.subscribe(category, subscriber)
            subs.append((category, subscriber))
        self._subscriptions[stream.name] = subs

    def undeploy(self, name: str) -> None:
        """End a stream and release its event subscriptions."""
        stream = self._streams.pop(name, None)
        if stream is None:
            raise CompositionError(f"stream {name!r} is not deployed")
        for category, subscriber in self._subscriptions.pop(name, []):
            self._events.unsubscribe(category, subscriber)
        stream.end()

    # -- queries -----------------------------------------------------------------------

    def stream(self, name: str) -> RuntimeStream:
        """The deployed stream named ``name``; CompositionError if absent."""
        try:
            return self._streams[name]
        except KeyError:
            raise CompositionError(f"stream {name!r} is not deployed") from None

    def deployed(self) -> list[str]:
        """Names of the currently deployed streams."""
        return list(self._streams)

    def __len__(self) -> int:
        return len(self._streams)
