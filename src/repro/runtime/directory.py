"""The Streamlet Directory (section 3.3.7).

Providers advertise a service as *(MCL definition, factory)*: the
definition gives the typed interface MCL compiles against; the factory
builds executable :class:`~repro.runtime.streamlet.Streamlet` objects on
demand.  The Streamlet Manager looks implementations up here at
instantiation time.

A definition whose implementation is another MCL stream never reaches the
directory — the compiler has already flattened recursive compositions.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import DirectoryError
from repro.mcl import astnodes as ast
from repro.runtime.streamlet import ForwardingStreamlet, Streamlet

#: factory signature: (instance_id, definition) -> Streamlet
StreamletFactory = Callable[[str, ast.StreamletDef], Streamlet]


class StreamletDirectory:
    """Name → (definition, factory) registry."""

    def __init__(self):
        self._entries: dict[str, tuple[ast.StreamletDef, StreamletFactory]] = {}

    def advertise(
        self,
        definition: ast.StreamletDef,
        factory: StreamletFactory | None = None,
        *,
        replace: bool = False,
    ) -> None:
        """Register a service.  Default factory: a plain forwarder."""
        if definition.name in self._entries and not replace:
            raise DirectoryError(f"streamlet {definition.name!r} already advertised")
        self._entries[definition.name] = (definition, factory or ForwardingStreamlet)

    def withdraw(self, name: str) -> None:
        """Remove an advertisement; DirectoryError if absent."""
        if name not in self._entries:
            raise DirectoryError(f"streamlet {name!r} is not advertised")
        del self._entries[name]

    def definition(self, name: str) -> ast.StreamletDef:
        """The advertised definition for ``name``; DirectoryError if absent."""
        try:
            return self._entries[name][0]
        except KeyError:
            raise DirectoryError(f"no streamlet {name!r} in the directory") from None

    def create(self, name: str, instance_id: str) -> Streamlet:
        """Instantiate implementation code for a definition."""
        try:
            definition, factory = self._entries[name]
        except KeyError:
            raise DirectoryError(f"no streamlet {name!r} in the directory") from None
        instance = factory(instance_id, definition)
        if not isinstance(instance, Streamlet):
            raise DirectoryError(
                f"factory for {name!r} returned {type(instance).__name__}, not a Streamlet"
            )
        return instance

    def factory_for(self, definition: ast.StreamletDef) -> StreamletFactory:
        """The factory for a definition, falling back to a forwarder.

        Used when a compiled table carries definitions (e.g. script-local
        ones) that were never advertised: they still run, as forwarders.
        """
        entry = self._entries.get(definition.name)
        return entry[1] if entry else ForwardingStreamlet

    def names(self) -> frozenset[str]:
        """Every advertised service name."""
        return frozenset(self._entries)

    def definitions(self) -> dict[str, ast.StreamletDef]:
        """All advertised definitions — feed these to the MCL compiler."""
        return {name: entry[0] for name, entry in self._entries.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)
