"""The Event Manager (section 6.4, Figures 6-6 and 6-7).

Maintains one subscriber list per event category; streams subscribe to the
categories they care about and ignore the rest — "individual stream
applications may subscribe to events of interest ... while ignoring those
events that they consider superfluous."

``multicast_event`` walks the category's subscriber list and invokes each
subscriber's ``on_event``.  Scoped events (``source`` set) reach only the
named stream, mirroring the ``evtSource`` check of the thesis.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import EventError
from repro.events import DEFAULT_CATALOG, ContextEvent, EventCatalog, EventCategory


class EventSubscriber(Protocol):
    """What the Event Manager needs from a stream application."""

    @property
    def name(self) -> str: ...

    def on_event(self, event: ContextEvent) -> None:
        """Deliver one context event to the subscriber."""
        ...


class EventManager:
    """Category-indexed publish/subscribe for context events."""

    def __init__(self, catalog: EventCatalog | None = None, *, contain_errors: bool = False):
        self._catalog = catalog if catalog is not None else DEFAULT_CATALOG
        self._subscribers: dict[EventCategory, list[EventSubscriber]] = {
            category: [] for category in EventCategory
        }
        #: with ``contain_errors``, a subscriber whose ``on_event`` raises
        #: does not stop delivery to the remaining subscribers — the fault
        #: is counted instead (one misbehaving stream must not starve the
        #: others of context events)
        self._contain = contain_errors
        self.delivered = 0
        self.filtered = 0
        self.handler_failures = 0

    @property
    def catalog(self) -> EventCatalog:
        return self._catalog

    # -- subscription ------------------------------------------------------------

    def subscribe(self, category: EventCategory, subscriber: EventSubscriber) -> None:
        """Add a subscriber to one category (EventError on duplicates)."""
        subscribers = self._subscribers[EventCategory(category)]
        if subscriber in subscribers:
            raise EventError(
                f"{getattr(subscriber, 'name', subscriber)!r} already subscribed "
                f"to {EventCategory(category).name}"
            )
        subscribers.append(subscriber)

    def unsubscribe(self, category: EventCategory, subscriber: EventSubscriber) -> None:
        """Remove a subscriber from one category (EventError if absent)."""
        subscribers = self._subscribers[EventCategory(category)]
        try:
            subscribers.remove(subscriber)
        except ValueError:
            raise EventError(
                f"{getattr(subscriber, 'name', subscriber)!r} is not subscribed "
                f"to {EventCategory(category).name}"
            ) from None

    def subscriber_count(self, category: EventCategory) -> int:
        """Subscribers currently registered for a category."""
        return len(self._subscribers[EventCategory(category)])

    # -- publication ----------------------------------------------------------------

    def raise_event(self, name: str, source: str | None = None) -> int:
        """Compose an event from the catalog and multicast it."""
        return self.multicast_event(self._catalog.make(name, source))

    def multicast_event(self, event: ContextEvent) -> int:
        """Deliver to every subscriber of the event's category.

        Returns the number of deliveries.  Scoped events (``source`` set)
        are filtered to the stream with that name — the ``evtSource``
        check of section 6.4.
        """
        count = 0
        for subscriber in list(self._subscribers[event.category]):
            if event.source is not None and subscriber.name != event.source:
                self.filtered += 1
                continue
            if self._contain:
                try:
                    subscriber.on_event(event)
                except Exception:
                    self.handler_failures += 1
                    continue
            else:
                subscriber.on_event(event)
            count += 1
        self.delivered += count
        return count
