"""Centralised message storage — pass-by-reference buffer management.

Section 6.7: "the system maintains all incoming messages by storing them in
a message pool and passing them between different streamlets by their
associated message identifier."  Channels therefore carry small string ids;
the payload is touched only by the streamlet that transforms it.

``PassMode.VALUE`` exists purely as the Figure 7-3 baseline: every
checkout deep-copies the message, reproducing the copying overhead the
thesis measures against.
"""

from __future__ import annotations

import threading
from enum import Enum

from repro.errors import MessagePoolError
from repro.mime.message import MimeMessage
from repro.util.ids import IdGenerator


class PassMode(Enum):
    """Buffer management: pass-by-REFERENCE (section 6.7) or the pass-by-VALUE baseline."""
    REFERENCE = "reference"
    VALUE = "value"


class MessagePool:
    """id → message store with attach/release accounting.

    ``gauge`` (a :class:`repro.telemetry.Gauge`, optional) tracks the
    resident-message count so exports show pool pressure live.
    """

    def __init__(self, mode: PassMode = PassMode.REFERENCE, *, gauge=None):
        self._mode = mode
        self._messages: dict[str, MimeMessage] = {}
        self._ids = IdGenerator("msg")
        self._lock = threading.Lock()
        self._gauge = gauge
        # observability
        self.admitted = 0
        self.released = 0
        self.copies = 0

    @property
    def mode(self) -> PassMode:
        return self._mode

    def admit(self, message: MimeMessage) -> str:
        """Store a new message; returns its pool id."""
        msg_id = self._ids.next()
        with self._lock:
            self._messages[msg_id] = message
            self.admitted += 1
            if self._gauge is not None:
                self._gauge.value = float(len(self._messages))
        return msg_id

    def checkout(self, msg_id: str) -> MimeMessage:
        """The message a streamlet should process for ``msg_id``.

        Reference mode hands out the stored object itself (mutation in
        place is the contract).  Value mode deep-copies — the Figure 7-3
        baseline — and re-binds the id to the copy so downstream hops see
        the transformed payload.
        """
        with self._lock:
            try:
                message = self._messages[msg_id]
            except KeyError:
                raise MessagePoolError(f"unknown message id {msg_id!r}") from None
            if self._mode is PassMode.REFERENCE:
                return message
            copy = message.clone()
            self._messages[msg_id] = copy
            self.copies += 1
            return copy

    def peek(self, msg_id: str) -> MimeMessage:
        """Read-only access without copy (both modes)."""
        with self._lock:
            try:
                return self._messages[msg_id]
            except KeyError:
                raise MessagePoolError(f"unknown message id {msg_id!r}") from None

    def size_of(self, msg_id: str) -> int:
        """Wire size of the stored message (for queue byte accounting)."""
        return self.peek(msg_id).total_size()

    def rebind(self, msg_id: str, message: MimeMessage) -> None:
        """Point an existing id at a replacement message object.

        Used when a streamlet returns a *new* object rather than mutating
        in place — the id (what channels carry) stays stable.
        """
        with self._lock:
            if msg_id not in self._messages:
                raise MessagePoolError(f"unknown message id {msg_id!r}")
            self._messages[msg_id] = message

    def release(self, msg_id: str) -> MimeMessage:
        """Remove a message from the pool (delivery or drop)."""
        with self._lock:
            try:
                message = self._messages.pop(msg_id)
            except KeyError:
                raise MessagePoolError(
                    f"double release or unknown message id {msg_id!r}"
                ) from None
            self.released += 1
            if self._gauge is not None:
                self._gauge.value = float(len(self._messages))
            return message

    def __len__(self) -> int:
        with self._lock:
            return len(self._messages)

    def __contains__(self, msg_id: str) -> bool:
        with self._lock:
            return msg_id in self._messages
