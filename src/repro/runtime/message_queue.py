"""The MessageQueue base class (section 6.2, Figures 6-3 and 6-9).

A bounded FIFO of ``(message_id, size)`` entries guarded by a condition
variable — the Python rendering of the Java ``synchronized`` +
``wait``/``notifyAll`` design.  Capacity is accounted in **bytes** (the
MCL ``buffer`` attribute is in KB); an empty queue always admits one
message so a single oversized message cannot deadlock a stream.

``post_message`` implements the Figure 6-9 policy exactly: when the queue
is full, wait up to ``drop_timeout`` for space; if still full, *drop the
message* — slow downstream streamlets must not stall the whole stream
(section 6.7).  Drops are counted, and the caller learns of them from the
``False`` return so the pool entry can be released.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import QueueClosedError


class MessageQueue:
    """Bounded producer/consumer queue of message ids."""

    def __init__(self, capacity_bytes: int = 100 * 1024, *, drop_timeout: float = 0.0):
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        if drop_timeout < 0:
            raise ValueError(f"drop_timeout must be >= 0, got {drop_timeout}")
        self._capacity = capacity_bytes
        self._drop_timeout = drop_timeout
        self._entries: deque[tuple[str, int]] = deque()
        self._bytes = 0
        self._cond = threading.Condition()
        self._closed = False
        # attachment counters (pCount / cCount of Figure 6-3)
        self.producer_count = 0
        self.consumer_count = 0
        # observability
        self.posted = 0
        self.fetched = 0
        self.dropped = 0

    # -- attachment (setIn / setOut of Figure 6-2) ---------------------------------

    def incr_producers(self) -> None:
        """Attach one producer (pCount of Figure 6-3)."""
        with self._cond:
            self.producer_count += 1

    def decr_producers(self) -> None:
        """Detach one producer (pCount of Figure 6-3)."""
        with self._cond:
            if self.producer_count <= 0:
                raise ValueError("producer count underflow")
            self.producer_count -= 1
            self._cond.notify_all()

    def incr_consumers(self) -> None:
        """Attach one consumer (cCount of Figure 6-3)."""
        with self._cond:
            self.consumer_count += 1

    def decr_consumers(self) -> None:
        """Detach one consumer (cCount of Figure 6-3)."""
        with self._cond:
            if self.consumer_count <= 0:
                raise ValueError("consumer count underflow")
            self.consumer_count -= 1

    # -- queue state -------------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._entries)

    @property
    def pending_bytes(self) -> int:
        with self._cond:
            return self._bytes

    def is_empty(self) -> bool:
        """True when nothing is queued."""
        with self._cond:
            return not self._entries

    def _has_room(self, size: int) -> bool:
        return not self._entries or self._bytes + size <= self._capacity

    # -- the paper's postMessage / fetchMessage ----------------------------------------------

    def post_message(self, msg_id: str, size: int, *, timeout: float | None = None) -> bool:
        """Enqueue; returns False if the message had to be dropped.

        Implements Figure 6-9: wait up to ``timeout`` (default: the
        queue's ``drop_timeout``) for room, then drop rather than block a
        fast upstream streamlet forever.  Pass ``timeout=0`` for the
        non-blocking form schedulers use while holding the topology lock.
        """
        wait_for = self._drop_timeout if timeout is None else timeout
        with self._cond:
            if self._closed:
                raise QueueClosedError("post on closed queue")
            if not self._has_room(size):
                # wait on a monotonic deadline: a notify that freed too
                # little room (or a spurious wakeup) must not burn the
                # whole budget, so keep waiting for the time that remains
                if wait_for > 0:
                    deadline = time.monotonic() + wait_for
                    while not self._has_room(size) and not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                if self._closed:
                    raise QueueClosedError("queue closed while waiting to post")
                if not self._has_room(size):
                    self.dropped += 1
                    return False
            self._entries.append((msg_id, size))
            self._bytes += size
            self.posted += 1
            self._cond.notify_all()
            return True

    def fetch_message(self, timeout: float | None = 0.0) -> str | None:
        """Dequeue the oldest id; None on timeout/empty.

        ``timeout=None`` blocks until a message arrives or the queue
        closes; ``0.0`` polls.
        """
        with self._cond:
            if timeout is None:
                while not self._entries and not self._closed:
                    self._cond.wait()
            elif timeout > 0 and not self._entries and not self._closed:
                self._cond.wait(timeout)
            if not self._entries:
                if self._closed:
                    raise QueueClosedError("fetch on closed, drained queue")
                return None
            msg_id, size = self._entries.popleft()
            self._bytes -= size
            self.fetched += 1
            self._cond.notify_all()
            return msg_id

    def drain(self) -> list[str]:
        """Remove and return every queued id (used by BB/KB teardown)."""
        with self._cond:
            ids = [msg_id for msg_id, _ in self._entries]
            self._entries.clear()
            self._bytes = 0
            self._cond.notify_all()
            return ids

    def close(self) -> None:
        """No further posts; fetch drains what remains, then raises."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- transactional snapshot/restore (repro.runtime.reconfig) -------------------

    def snapshot_state(self) -> tuple[tuple[tuple[str, int], ...], bool, int, int]:
        """Freeze ``(entries, closed, producers, consumers)`` for an undo log.

        Counters (posted/fetched/dropped) are observability, not state, and
        are deliberately left out: a rolled-back transaction still happened.
        """
        with self._cond:
            return (
                tuple(self._entries),
                self._closed,
                self.producer_count,
                self.consumer_count,
            )

    def restore_state(
        self,
        state: tuple[tuple[tuple[str, int], ...], bool, int, int],
        *,
        with_entries: bool = True,
    ) -> None:
        """Reinstate a :meth:`snapshot_state` capture (rollback path).

        ``with_entries=False`` restores wiring counts and the closed flag
        but leaves the queue empty — used when the snapshot's entries are
        stale (probation rollback long after the capture).
        """
        entries, closed, producers, consumers = state
        with self._cond:
            self._entries.clear()
            self._bytes = 0
            if with_entries:
                self._entries.extend(entries)
                self._bytes = sum(size for _id, size in entries)
            self._closed = closed
            self.producer_count = producers
            self.consumer_count = consumers
            self._cond.notify_all()
