"""The MessageQueue base class (section 6.2, Figures 6-3 and 6-9).

A bounded FIFO of ``(message_id, size)`` entries guarded by a pair of
condition variables over one lock — the Python rendering of the Java
``synchronized`` + ``wait``/``notify`` design, split so producers and
consumers stop waking each other: posts signal ``not_empty`` (consumer
side), fetches signal ``not_full`` (producer side).  Capacity is
accounted in **bytes** (the MCL ``buffer`` attribute is in KB); an empty
queue always admits one message so a single oversized message cannot
deadlock a stream.

``post_message`` implements the Figure 6-9 policy.  The timeout contract
is explicit:

``timeout=None``
    Wait up to the queue's configured ``drop_timeout`` for room, then
    drop: slow downstream streamlets must not stall the whole stream
    (section 6.7).  A failed post counts in ``dropped``.
``timeout > 0``
    Same, with an explicit budget overriding the configured one.  A
    failed post counts in ``dropped``.
``timeout=0``
    A pure non-blocking *probe*: never waits and never counts
    ``dropped`` — the caller owns the message's accounting.  This is the
    form schedulers use mid-step and mid-stall-retry, where the retry
    loop (not the queue) decides when the Figure 6-9 budget is spent and
    books the drop exactly once.

Consumers that cannot block on a single queue (a scheduler worker
multiplexing several input channels) register a ``threading.Event`` via
:meth:`add_waiter`; every successful post sets it, giving the worker an
edge-triggered "one of your inputs has traffic" signal without polling.

Producers that must never block at all — an asyncio event loop posting
from the gateway's data plane while scheduler workers hold the lock —
use :meth:`try_post`, which acquires the lock non-blockingly and reports
contention as a distinct outcome instead of waiting it out.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import QueueClosedError


class MessageQueue:
    """Bounded producer/consumer queue of message ids."""

    def __init__(self, capacity_bytes: int = 100 * 1024, *, drop_timeout: float = 0.0):
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        if drop_timeout < 0:
            raise ValueError(f"drop_timeout must be >= 0, got {drop_timeout}")
        self._capacity = capacity_bytes
        self._drop_timeout = drop_timeout
        self._entries: deque[tuple[str, int]] = deque()
        self._bytes = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        #: compat alias: blocked *producers* wait here (tools and tests
        #: that poke the queue wake them through this name)
        self._cond = self._not_full
        #: consumer-side wakeup events (see :meth:`add_waiter`)
        self._waiters: list[threading.Event] = []
        self._closed = False
        # attachment counters (pCount / cCount of Figure 6-3)
        self.producer_count = 0
        self.consumer_count = 0
        # observability
        self.posted = 0
        self.fetched = 0
        self.dropped = 0
        #: deepest the queue has ever been, in entries (always maintained;
        #: an int compare per post is within the no-telemetry budget)
        self.watermark = 0
        #: when True, post times ride in a parallel deque so every fetch
        #: can report its queue wait (set by telemetry-enabled channels;
        #: the entry tuples stay ``(msg_id, size)`` for snapshot/restore)
        self.record_waits = False
        self._post_times: deque[float] = deque()
        #: raw ``perf_counter`` post time of the most recent fetch (None
        #: when waits are not recorded); single-consumer channels read it
        #: post-fetch and subtract it from their own clock sample, so the
        #: queue never pays a second ``perf_counter`` call on the claim
        self.last_post_at: float | None = None
        #: optional pre-bound gauges (plain stores under the queue lock)
        self.depth_gauge = None
        self.watermark_gauge = None

    # -- attachment (setIn / setOut of Figure 6-2) ---------------------------------

    def incr_producers(self) -> None:
        """Attach one producer (pCount of Figure 6-3)."""
        with self._lock:
            self.producer_count += 1

    def decr_producers(self) -> None:
        """Detach one producer (pCount of Figure 6-3)."""
        with self._lock:
            if self.producer_count <= 0:
                raise ValueError("producer count underflow")
            self.producer_count -= 1
            self._not_empty.notify_all()

    def incr_consumers(self) -> None:
        """Attach one consumer (cCount of Figure 6-3)."""
        with self._lock:
            self.consumer_count += 1

    def decr_consumers(self) -> None:
        """Detach one consumer (cCount of Figure 6-3)."""
        with self._lock:
            if self.consumer_count <= 0:
                raise ValueError("consumer count underflow")
            self.consumer_count -= 1

    # -- queue state -------------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def drop_timeout(self) -> float:
        """The configured Figure 6-9 wait-before-drop budget, seconds."""
        return self._drop_timeout

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def pending_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def is_empty(self) -> bool:
        """True when nothing is queued.

        Deliberately lock-free (a deque truthiness read is atomic under
        the GIL), so it may be stale by one racing post/fetch.  Callers
        use it only to *skip optional work* — the schedulers probe it
        before paying the mutex round-trip of a speculative batched
        claim — never as a correctness guarantee.
        """
        return not self._entries

    def _has_room(self, size: int) -> bool:
        return not self._entries or self._bytes + size <= self._capacity

    # -- consumer wakeup events --------------------------------------------------------

    def add_waiter(self, event: threading.Event) -> None:
        """Register a consumer wakeup: set on every post (and on close).

        If the queue already holds entries (or is closed) the event is set
        immediately, so a consumer registering after traffic arrived never
        sleeps through it.
        """
        with self._lock:
            if event not in self._waiters:
                self._waiters.append(event)
            if self._entries or self._closed:
                event.set()

    def remove_waiter(self, event: threading.Event) -> None:
        """Deregister a consumer wakeup event (idempotent)."""
        with self._lock:
            try:
                self._waiters.remove(event)
            except ValueError:
                pass

    def _signal_waiters(self) -> None:
        # caller holds self._lock
        for event in self._waiters:
            event.set()

    # -- the paper's postMessage / fetchMessage ----------------------------------------------

    def post_message(self, msg_id: str, size: int, *, timeout: float | None = None) -> bool:
        """Enqueue; returns False if the message had to be dropped.

        Implements Figure 6-9 under the module-level timeout contract:
        ``None`` waits the configured ``drop_timeout``, a positive value
        waits that long instead, and ``0`` is a non-blocking probe that
        leaves the ``dropped`` counter to the caller.
        """
        probe = timeout is not None and timeout <= 0
        wait_for = self._drop_timeout if timeout is None else timeout
        with self._lock:
            if self._closed:
                raise QueueClosedError("post on closed queue")
            if not self._has_room(size):
                # wait on a monotonic deadline: a notify that freed too
                # little room (or a spurious wakeup) must not burn the
                # whole budget, so keep waiting for the time that remains
                if wait_for > 0:
                    deadline = time.monotonic() + wait_for
                    while not self._has_room(size) and not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._not_full.wait(remaining)
                if self._closed:
                    raise QueueClosedError("queue closed while waiting to post")
                if not self._has_room(size):
                    if not probe:
                        self.dropped += 1
                    return False
            self._entries.append((msg_id, size))
            self._bytes += size
            self.posted += 1
            # attribution bookkeeping, inlined: this is the hottest lock
            # region in the runtime, so no helper-call overhead
            depth = len(self._entries)
            if depth > self.watermark:
                self.watermark = depth
                if self.watermark_gauge is not None:
                    self.watermark_gauge.value = float(depth)
            if self.record_waits:
                self._post_times.append(time.perf_counter())
            if self.depth_gauge is not None:
                self.depth_gauge.value = float(depth)
            # one consumer per channel end: a targeted notify suffices
            self._not_empty.notify()
            self._signal_waiters()
            return True

    def try_post(self, msg_id: str, size: int) -> bool | None:
        """Lock-contention-free probe post for event-loop callers.

        ``post_message(timeout=0)`` never waits on a *condition*, but it
        does block on the queue lock — and a scheduler worker holds that
        lock across notify storms on the wakeup conditions, which is an
        unbounded stall from an asyncio event loop's point of view.  This
        fast path refuses to block at all:

        * ``True`` — enqueued (waiters signalled as usual);
        * ``False`` — no room; ``dropped`` is **not** counted (the probe
          contract: the caller owns the message's accounting);
        * ``None`` — the lock was contended; the caller should retry on a
          later loop tick.  Nothing happened.

        Raises :class:`QueueClosedError` on a closed queue, like
        ``post_message``.
        """
        if not self._lock.acquire(blocking=False):
            return None
        try:
            if self._closed:
                raise QueueClosedError("post on closed queue")
            if not self._has_room(size):
                return False
            self._entries.append((msg_id, size))
            self._bytes += size
            self.posted += 1
            depth = len(self._entries)
            if depth > self.watermark:
                self.watermark = depth
                if self.watermark_gauge is not None:
                    self.watermark_gauge.value = float(depth)
            if self.record_waits:
                self._post_times.append(time.perf_counter())
            if self.depth_gauge is not None:
                self.depth_gauge.value = float(depth)
            self._not_empty.notify()
            self._signal_waiters()
            return True
        finally:
            self._lock.release()

    def fetch_message(self, timeout: float | None = 0.0) -> str | None:
        """Dequeue the oldest id; None on timeout/empty.

        ``timeout=None`` blocks until a message arrives or the queue
        closes; ``0.0`` polls.
        """
        with self._lock:
            if timeout is None:
                while not self._entries and not self._closed:
                    self._not_empty.wait()
            elif timeout > 0 and not self._entries and not self._closed:
                self._not_empty.wait(timeout)
            if not self._entries:
                if self._closed:
                    raise QueueClosedError("fetch on closed, drained queue")
                return None
            msg_id, size = self._entries.popleft()
            self._bytes -= size
            self.fetched += 1
            if self.record_waits:
                times = self._post_times
                self.last_post_at = times.popleft() if times else None
            if self.depth_gauge is not None:
                self.depth_gauge.value = float(len(self._entries))
            # room freed: wake every blocked producer — sizes vary, so the
            # space one post cannot use may fit another's message
            self._not_full.notify_all()
            return msg_id

    def wait_for_room(self, size: int, timeout: float) -> bool:
        """Block until a ``size``-byte post *might* succeed (or timeout).

        One bounded wait on the producer condition; returns True when room
        is available at wakeup.  Purely advisory — the caller must still
        post (room can vanish between the wakeup and the post), which is
        why the stall-retry loop pairs this with ``timeout=0`` probes.
        """
        with self._lock:
            if self._closed:
                return False
            if self._has_room(size):
                return True
            self._not_full.wait(timeout)
            return not self._closed and self._has_room(size)

    def drain(self) -> list[str]:
        """Remove and return every queued id (used by BB/KB teardown)."""
        with self._lock:
            ids = [msg_id for msg_id, _ in self._entries]
            self._entries.clear()
            self._bytes = 0
            self._post_times.clear()
            if self.depth_gauge is not None:
                self.depth_gauge.value = 0.0
            self._not_full.notify_all()
            return ids

    def close(self) -> None:
        """No further posts; fetch drains what remains, then raises."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
            self._signal_waiters()

    # -- transactional snapshot/restore (repro.runtime.reconfig) -------------------

    def snapshot_state(self) -> tuple[tuple[tuple[str, int], ...], bool, int, int]:
        """Freeze ``(entries, closed, producers, consumers)`` for an undo log.

        Counters (posted/fetched/dropped) are observability, not state, and
        are deliberately left out: a rolled-back transaction still happened.
        """
        with self._lock:
            return (
                tuple(self._entries),
                self._closed,
                self.producer_count,
                self.consumer_count,
            )

    def restore_state(
        self,
        state: tuple[tuple[tuple[str, int], ...], bool, int, int],
        *,
        with_entries: bool = True,
    ) -> None:
        """Reinstate a :meth:`snapshot_state` capture (rollback path).

        ``with_entries=False`` restores wiring counts and the closed flag
        but leaves the queue empty — used when the snapshot's entries are
        stale (probation rollback long after the capture).
        """
        entries, closed, producers, consumers = state
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            # restored entries carry no usable post times: drop the stale
            # ones rather than attribute a transaction's span to a wait
            self._post_times.clear()
            if with_entries:
                self._entries.extend(entries)
                self._bytes = sum(size for _id, size in entries)
            if self.depth_gauge is not None:
                self.depth_gauge.value = float(len(self._entries))
            self._closed = closed
            self.producer_count = producers
            self.consumer_count = consumers
            self._not_empty.notify_all()
            self._not_full.notify_all()
            if self._entries or self._closed:
                self._signal_waiters()
