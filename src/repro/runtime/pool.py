"""Streamlet pooling (section 3.3.4).

Stateless streamlets are never bound to a particular stream, so the
Streamlet Manager keeps a bounded pool per definition and reuses instances
across requests instead of constructing and discarding them — the same
economics as database-connection pooling, which the thesis cites.  The
pooling ablation benchmark quantifies the saving.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.runtime.streamlet import Streamlet


class InstancePool:
    """A bounded free-list of reusable streamlet instances."""

    def __init__(self, factory: Callable[[str], Streamlet], *, max_idle: int = 32):
        if max_idle < 0:
            raise ValueError(f"max_idle must be >= 0, got {max_idle}")
        self._factory = factory
        self._max_idle = max_idle
        self._idle: list[Streamlet] = []
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.discarded = 0

    def acquire(self, instance_id: str) -> Streamlet:
        """A pooled instance rebound to ``instance_id``, or a fresh one."""
        with self._lock:
            if self._idle:
                instance = self._idle.pop()
                self.hits += 1
                instance.rebind(instance_id)
                return instance
            self.misses += 1
        return self._factory(instance_id)

    def release(self, instance: Streamlet) -> None:
        """Reset an instance and return it to the free list (or discard)."""
        instance.reset()
        with self._lock:
            if len(self._idle) < self._max_idle:
                self._idle.append(instance)
            else:
                self.discarded += 1

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)
