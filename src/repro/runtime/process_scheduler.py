"""Sharded multi-process execution plane — streamlets escape the GIL.

:class:`ProcessScheduler` is the third engine next to the inline and
threaded schedulers: it partitions a stream's topology into **shards**
(:func:`repro.semantics.shards.plan_shards` cuts only at asynchronous
channel boundaries — a synchronous rendezvous can never straddle a
process) and runs each shard's streamlet chain inside a forked worker
process, so CPU-bound streamlets on distinct shards execute truly in
parallel.  Workers are always created from an explicit ``fork``
multiprocessing context (children inherit shared-memory views, pipe
fds, and live streamlet objects that can never cross a ``spawn`` or
``forkserver`` boundary); on platforms without ``fork``, ``start()``
refuses with an error naming the threaded/inline fallbacks.

Topology custody stays entirely in the parent: the authoritative
:class:`~repro.runtime.message_pool.MessagePool`, every
:class:`~repro.runtime.channel.Channel`, the conservation ledger, fault
handlers and supervisors all live here.  A shard child is nothing but a
chain executor — it receives serialized messages over a shared-memory
ring (:class:`~repro.runtime.shm.ShardSegment`), walks them through its
member streamlets in memory, and ships every *terminal* (an emission
leaving the shard, an absorption, an open circuit, a failure) back over
the reverse ring where the parent applies the exact same accounting the
in-process engines use.  Because the parent keeps pool custody of each
dispatched id until its terminal arrives, killing a worker with SIGKILL
loses nothing: the custody table is re-injected when the shard respawns
and the conservation invariant balances throughout.

Reconfiguration protocol (quiesce → version bump → resume):

* the stream's write section retires the RCU snapshot and fires the
  scheduler's *quiesce listener*; dispatchers stop issuing work the
  moment ``stream._snapshot`` is ``None`` and the listener waits until
  every already-dispatched message has returned — without ever touching
  the topology lock, so it cannot deadlock against the writer;
* streamlet states, params, and the new topology version/epoch are
  broadcast **in-band** as control descriptors through the same ring
  that carries dispatches, so a pause always reaches the child before
  any message dispatched after it;
* when the write changed the wiring, the wakeup listener rebuilds the
  per-shard routing layout (and restarts children when the structure —
  not just states — changed), then resumes dispatch against the
  republished snapshot.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import select
import signal
import struct
import threading
import time
from collections import deque

from repro.errors import MessagePoolError, QueueClosedError, RuntimeFault
from repro.mime.wire import parse_message, serialize_message
from repro.runtime.scheduler import _drop, _retry_stalled
from repro.runtime.shm import Doorbell, ShardSegment, sweep_stale_segments
from repro.runtime.stream import RuntimeStream
from repro.runtime.streamlet import StreamletState
from repro.semantics.fusion import is_synchronous
from repro.semantics.shards import ShardPlan, plan_shards

__all__ = [
    "ProcessScheduler", "ShardWorkerError",
    "register_child_cleanup", "unregister_child_cleanup",
]


def _require_fork_context():
    """The explicit ``fork`` multiprocessing context this engine requires.

    Shard children inherit unpicklable state by design — shared-memory
    memoryviews, doorbell pipe fds, live streamlet/ctx objects — which
    only works under ``fork``, never under the ``spawn`` default of
    macOS or the ``forkserver`` default of newer CPython on Linux.
    Pinning the context here keeps the engine correct whatever the
    interpreter's default; where fork itself is unavailable the caller
    gets an actionable error instead of a pickling crash or dead fd
    numbers in the child.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RuntimeError(
            "ProcessScheduler requires the 'fork' start method, which this "
            "platform does not provide; deploy with the 'threaded' or "
            "'inline' scheduler instead"
        )
    return multiprocessing.get_context("fork")


#: callables run inside every freshly forked shard worker before it does
#: anything else.  The gateway registers one that closes its inherited
#: listening sockets, so a shard child can never keep the port bound
#: after the parent dies; anything else forked across (caches, fds,
#: locks) can be repaired the same way.
_CHILD_CLEANUPS: list = []


def register_child_cleanup(fn):
    """Run ``fn()`` inside every shard worker right after fork."""
    _CHILD_CLEANUPS.append(fn)
    return fn


def unregister_child_cleanup(fn) -> None:
    """Remove a cleanup previously registered; missing is a no-op."""
    try:
        _CHILD_CLEANUPS.remove(fn)
    except ValueError:
        pass

# -- wire protocol over the shard rings ---------------------------------------
# parent → child
K_DISPATCH = 1  #: run a message: a = entry index, payload = wire frame
K_STATE = 2     #: pickled control update: states / params / version / epoch
# child → parent
K_EXIT = 3      #: emission leaving the shard: a = channel index
K_ABSORB = 4    #: a lineage terminated without emission: a = member index
K_OC = 5        #: open-circuit drop inside the shard: a = member index
K_FAIL = 6      #: process() raised: a = member index, b = input-port index
K_DONE = 7      #: dispatch fully resolved — parent custody of the id ends

F_ORIG = 1      #: descriptor settles the dispatched (original) pool id

_LEN = struct.Struct("<I")

#: truncation bound for failure text shipped across the ring
_ERR_BYTES = 2048


class ShardWorkerError(RuntimeFault):
    """A streamlet raised inside a shard worker process.

    The original traceback died with the child's stack frame; the
    message carries the member name plus the remote ``type: text`` so
    fault handlers and flight-recorder dumps stay attributable.
    """


# -- parent-side routing layout ------------------------------------------------


class _Layout:
    """One shard's routing view — and the blueprint its child is forked from.

    Built under the topology lock by a *deterministic* walk (members in
    plan order, ports sorted by name, channels indexed in first-encounter
    order), so the channel indices the parent routes child returns by
    always agree with the indices baked into the forked worker.  The
    ``signature`` captures the structural part; when a rebuild produces a
    different signature the child is stale and must be respawned.
    """

    __slots__ = (
        "members", "streamlets", "ctxs", "entries", "entry_index",
        "channels", "intra", "out_ports", "in_ports", "signature", "gen",
    )


def _build_layout(nodes: dict, names, gen: int) -> _Layout:
    members = tuple(name for name in names if name in nodes)
    member_set = set(members)
    channels: list = []
    seen: dict[int, int] = {}

    def index_of(channel) -> int:
        key = id(channel)
        idx = seen.get(key)
        if idx is None:
            idx = len(channels)
            seen[key] = idx
            channels.append(channel)
        return idx

    streamlets: dict = {}
    ctxs: dict = {}
    entries: list = []
    intra: dict[int, tuple[str, str]] = {}
    out_ports: dict[str, dict[str, int]] = {}
    in_ports: dict[str, tuple[str, ...]] = {}
    signature: list = []
    for name in members:
        node = nodes[name]
        streamlets[name] = node.streamlet
        ctxs[name] = node.ctx
        ins = sorted(node.inputs.items())
        outs = sorted(node.outputs.items())
        in_ports[name] = tuple(port for port, _channel in ins)
        for port, channel in ins:
            entries.append((channel, name, port, index_of(channel)))
        ports: dict[str, int] = {}
        for port, channel in outs:
            idx = index_of(channel)
            ports[port] = idx
            sink = channel.sink
            if sink is not None and sink.instance in member_set:
                intra[idx] = (sink.instance, sink.port)
        out_ports[name] = ports
        signature.append((
            name,
            tuple((port, channel.name) for port, channel in ins),
            tuple((port, channel.name, str(channel.sink)) for port, channel in outs),
        ))

    layout = _Layout()
    layout.members = members
    layout.streamlets = streamlets
    layout.ctxs = ctxs
    layout.entries = entries
    layout.entry_index = {
        (name, port): (position, channel)
        for position, (channel, name, port, _idx) in enumerate(entries)
    }
    layout.channels = channels
    layout.intra = intra
    layout.out_ports = out_ports
    layout.in_ports = in_ports
    layout.signature = tuple(signature)
    layout.gen = gen
    return layout


# -- the forked worker ---------------------------------------------------------


class _ChildMember:
    __slots__ = ("index", "streamlet", "ctx", "in_ports", "out_ports")

    def __init__(self, index, streamlet, ctx, in_ports, out_ports):
        self.index = index
        self.streamlet = streamlet
        self.ctx = ctx
        self.in_ports = in_ports
        self.out_ports = out_ports


class _ChildSpec:
    """Everything a shard worker needs, inherited across ``fork``."""

    __slots__ = (
        "index", "parent_pid", "entries", "members", "intra",
        "tx", "rx", "bell_in", "bell_out", "conn", "parent_conn", "control",
    )


def _child_apply_control(spec: _ChildSpec, states: dict, control: dict) -> None:
    states.clear()
    states.update(control.get("states", {}))
    for name, params in (control.get("params") or {}).items():
        member = spec.members.get(name)
        if member is not None:
            member.ctx.params.clear()
            member.ctx.params.update(params)


def _child_post(spec: _ChildSpec, results: list) -> None:
    """Ship a dispatch's result descriptors, waiting out a full ring.

    The parent drains the return ring continuously, so a full ring or
    arena is transient backpressure — except when the parent died, which
    the periodic ``getppid`` probe turns into a clean worker exit.
    """
    rx = spec.rx
    for msg_id, kind, flags, a, b, payload in results:
        if payload and not rx.fits(len(payload)):
            # can never fit the arena: degrade to an in-shard drop the
            # parent can still account (the original id, when this
            # lineage carried it, is released against open_circuit)
            kind, payload = K_OC, b""
        spins = 0
        while not rx.send(msg_id, kind, flags, a, b, payload):
            spec.bell_out.ring()
            time.sleep(0.0005)
            spins += 1
            if spins % 200 == 0 and os.getppid() != spec.parent_pid:
                raise SystemExit(1)
    spec.bell_out.ring()


def _child_run(spec: _ChildSpec, states: dict, stats: dict,
               msg_id: str, entry_idx: int, frame: bytes, results: list) -> None:
    """Walk one dispatched message through the shard's member chain.

    Exactly one ``F_ORIG``-flagged terminal is emitted per dispatch (the
    first emission at every hop inherits the original lineage), so the
    parent can settle pool custody of the dispatched id unambiguously;
    ``K_DONE`` always closes the dispatch.
    """
    try:
        name, port, park_idx = spec.entries[entry_idx]
        message = parse_message(frame)
    except Exception:
        results.append((msg_id, K_DONE, 0, 0, 0, b""))
        return
    worklist = [(name, port, message, True, park_idx)]
    while worklist:
        name, port, message, original, via = worklist.pop(0)
        member = spec.members.get(name)
        if member is None or not states.get(name, False):
            # paused (or stale-spec) member: park the unit back on the
            # channel it arrived by; the parent re-posts it there and
            # re-dispatches after the next state broadcast
            results.append((
                msg_id, K_EXIT, F_ORIG if original else 0, via, 0,
                serialize_message(message),
            ))
            continue
        member.ctx.session = message.session
        try:
            emissions = member.streamlet.process(port, message, member.ctx)
        except Exception as exc:
            wire = serialize_message(message)
            text = f"{type(exc).__name__}: {exc}".encode("utf-8", "replace")
            try:
                port_idx = member.in_ports.index(port)
            except ValueError:
                port_idx = 0
            results.append((
                msg_id, K_FAIL, F_ORIG if original else 0, member.index,
                port_idx, _LEN.pack(len(wire)) + wire + text[:_ERR_BYTES],
            ))
            continue
        member.streamlet.processed += 1
        counts = stats["processed"]
        counts[name] = counts.get(name, 0) + 1
        stats["steps"] += 1
        if not emissions:
            if original:
                results.append((msg_id, K_ABSORB, F_ORIG, member.index, 0, b""))
            else:
                results.append((
                    msg_id, K_ABSORB, 0, member.index, 0,
                    serialize_message(message),
                ))
            continue
        peer = member.streamlet.peer_id
        lineage = original
        for out_port, out_msg in emissions:
            mine = lineage
            lineage = False  # only the first emission keeps the original id
            if peer is not None:
                out_msg.headers.push_peer(peer)
            chan = member.out_ports.get(out_port)
            if chan is None:
                # open circuit: secondary lineages ship the message so the
                # parent can mirror the admit-then-drop accounting exactly
                results.append((
                    msg_id, K_OC, F_ORIG if mine else 0, member.index, 0,
                    b"" if mine else serialize_message(out_msg),
                ))
                continue
            target = spec.intra.get(chan)
            if target is not None:
                worklist.append((target[0], target[1], out_msg, mine, chan))
            else:
                results.append((
                    msg_id, K_EXIT, F_ORIG if mine else 0, chan, 0,
                    serialize_message(out_msg),
                ))
    results.append((msg_id, K_DONE, 0, 0, 0, b""))


def _child_flush_stats(conn, stats: dict) -> None:
    if not stats["steps"] and not stats["busy"]:
        return
    conn.send(("stats", {
        "processed": stats["processed"],
        "busy": stats["busy"],
        "steps": stats["steps"],
    }))
    stats["processed"] = {}
    stats["busy"] = 0.0
    stats["steps"] = 0


def _child_drain(spec: _ChildSpec, states: dict, stats: dict) -> int:
    moved = 0
    while True:
        batch = spec.tx.receive(32)
        if not batch:
            return moved
        started = time.perf_counter()
        results: list = []
        for msg_id, kind, flags, a, _b, payload in batch:
            if kind == K_STATE:
                try:
                    _child_apply_control(spec, states, pickle.loads(payload))
                except Exception:
                    pass
            elif kind == K_DISPATCH:
                _child_run(spec, states, stats, msg_id, a, payload, results)
        if results:
            _child_post(spec, results)
        stats["busy"] += time.perf_counter() - started
        moved += len(batch)


def _reinit_forked_child() -> None:
    """Repair state a fork from a live multi-threaded gateway corrupts.

    The fork happens while the parent's event loop, other sessions'
    scheduler threads, and telemetry may each hold a lock, so the
    child's image can contain locks that will never be released.  Every
    module-level lock code in this process can reach is re-created
    fresh, logging's handler locks are re-initialised (CPython's own
    at-fork hook does this too; repeating it is harmless), and the
    registered cleanups drop inherited parent-only resources such as
    the gateway's listening sockets.
    """
    from repro.mime import wire as _wire
    from repro.runtime import shm as _shm
    from repro.util.ids import IdGenerator as _IdGenerator
    _wire._BOUNDARY_IDS = _IdGenerator("mgbd")
    _shm._SEGMENTS_LOCK = threading.Lock()
    ProcessScheduler._SEGMENT_LOCK = threading.Lock()
    reinit_logging = getattr(logging, "_after_at_fork_child_reinit_locks", None)
    if reinit_logging is not None:
        try:
            reinit_logging()
        except Exception:
            pass
    for cleanup in list(_CHILD_CLEANUPS):
        try:
            cleanup()
        except Exception:
            pass


def _shard_worker(spec: _ChildSpec) -> None:
    """Main loop of one forked shard worker."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _reinit_forked_child()
    try:
        spec.parent_conn.close()  # our copy of the parent's end: EOF detection
    except OSError:
        pass
    conn = spec.conn
    states: dict[str, bool] = {}
    _child_apply_control(spec, states, spec.control)
    stats: dict = {"processed": {}, "busy": 0.0, "steps": 0}
    last_flush = time.monotonic()
    running = True
    try:
        while True:
            try:
                ready, _, _ = select.select(
                    [spec.bell_in.read_fd, conn], [], [], 0.05)
            except (OSError, ValueError):
                break
            if spec.bell_in.read_fd in ready:
                spec.bell_in.drain()
            if conn in ready:
                try:
                    note = conn.recv()
                except (EOFError, OSError):
                    break  # parent is gone
                if note == ("stop",):
                    running = False
            _child_drain(spec, states, stats)
            if not running:
                _child_drain(spec, states, stats)  # finish what is queued
                break
            now = time.monotonic()
            if now - last_flush >= 0.2:
                try:
                    _child_flush_stats(conn, stats)
                except (OSError, BrokenPipeError):
                    break
                last_flush = now
    finally:
        try:
            _child_flush_stats(conn, stats)
        except Exception:
            pass
        try:
            conn.close()
        except Exception:
            pass
        spec.tx.close()
        spec.rx.close()


# -- parent-side shard state ---------------------------------------------------


class _Shard:
    __slots__ = (
        "index", "names", "layout", "tx", "rx", "bell_in", "bell_out",
        "conn", "proc", "reader", "wake", "dead", "lock",
        "in_flight", "settled", "backlog", "sent_control", "util", "started_at",
        "sent", "returned", "ring_gauge_tx", "ring_gauge_rx", "util_gauge",
    )

    def __init__(self, index: int, layout: _Layout):
        self.index = index
        self.names = layout.members
        self.layout = layout
        self.tx = None
        self.rx = None
        self.bell_in = None
        self.bell_out = None
        self.conn = None
        self.proc = None
        self.reader = None
        self.wake = threading.Event()
        self.dead = False
        #: serialises segment I/O between the dispatcher and respawn paths
        self.lock = threading.Lock()
        #: msg_id → (node, port): dispatched, terminal not yet returned
        self.in_flight: dict[str, tuple[str, str]] = {}
        #: ids whose F_ORIG terminal was applied but whose K_DONE has not
        #: arrived yet — already accounted, must never be re-injected
        self.settled: set[str] = set()
        #: (node, port, msg_id): claimed but not yet dispatched (full ring
        #: or arena), and the re-injection vehicle after a worker kill
        self.backlog: deque = deque()
        self.sent_control: dict | None = None
        self.util: dict = {"busy": 0.0, "steps": 0}
        self.started_at = time.monotonic()
        self.sent = 0
        self.returned = 0
        self.ring_gauge_tx = None
        self.ring_gauge_rx = None
        self.util_gauge = None


class ProcessScheduler:
    """Run a stream's shards in worker processes (one child per shard).

    API-compatible with :class:`~repro.runtime.scheduler.ThreadedScheduler`
    (``start``/``stop``/``drain``/``kill_worker``/``ensure_workers``/
    ``worker_states``), with one semantic shift the fault plane relies
    on: a *worker* is a shard process, so ``kill_worker(name)`` SIGKILLs
    the child owning ``name`` and ``ensure_workers`` re-forks it and
    re-injects every message the dead worker held custody of.
    """

    #: idle heartbeat — covers direct streamlet pause/activate calls that
    #: fire no wakeup, exactly like the threaded engine's backstop
    _IDLE_WAIT = 0.05

    _SEGMENT_IDS = 0
    _SEGMENT_LOCK = threading.Lock()

    def __init__(
        self, stream: RuntimeStream, *,
        shards: int | None = None, window: int = 64,
        ring_slots: int = 256, arena_bytes: int = 1 << 22,
        quiesce_timeout: float = 10.0,
    ):
        self._stream = stream
        self._max_shards = shards if shards is not None else (os.cpu_count() or 1)
        self._window = max(1, window)
        self._ring_slots = max(4, ring_slots)
        self._arena_bytes = arena_bytes
        self._quiesce_timeout = quiesce_timeout
        self._mp_ctx = None
        self._shards: list[_Shard] = []
        self._threads: list[threading.Thread] = []
        self._run_stop = threading.Event()
        self._mgmt = threading.RLock()
        self._started = False
        self._stopping = False
        self._plan = ShardPlan(shards=(), sync_edges=())
        self._gen = 0
        self.workers_killed = 0

    # -- introspection ---------------------------------------------------------

    @property
    def shard_plan(self) -> ShardPlan:
        return self._plan

    @property
    def dispatches(self) -> int:
        return sum(shard.sent for shard in self._shards)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Plan the shards, create the segments, and spawn the workers."""
        if self._started:
            raise RuntimeError("scheduler already started")
        self._mp_ctx = _require_fork_context()  # fail fast before any state
        # reap segments a SIGKILLed predecessor could not unlink — the
        # crash-recovery boot is exactly when such leftovers exist
        sweep_stale_segments()
        self._started = True
        self._stopping = False
        self._stream.add_wakeup_listener(self._on_topology_wakeup)
        self._stream.add_quiesce_listener(self._on_quiesce)
        with self._mgmt:
            self._boot()

    def stop(self, *, timeout: float = 2.0) -> None:
        """Stop the workers and unlink every shared-memory segment.

        Idempotent; in-flight loans are reclaimed into the parent pool
        before the segments go away, so nothing is lost.
        """
        if not self._started:
            return
        self._stopping = True
        self._stream.remove_wakeup_listener(self._on_topology_wakeup)
        self._stream.remove_quiesce_listener(self._on_quiesce)
        with self._mgmt:
            self._teardown(timeout=timeout)
            self._started = False

    def _boot(self) -> None:
        stream = self._stream
        self._run_stop = threading.Event()
        with stream.topology_lock:
            plan = self._compute_plan()
            layouts = [self._new_layout(members) for members in plan.shards]
        self._plan = plan
        self._shards = [
            _Shard(index, layout) for index, layout in enumerate(layouts)
        ]
        self._threads = []
        run_stop = self._run_stop
        for shard in self._shards:
            self._attach_telemetry(shard)
            self._fork_child(shard)
        # children are forked before any parent thread below exists, so
        # the fresh images never inherit a mid-acquire dispatcher lock
        for shard in self._shards:
            self._start_reader(shard, run_stop)
            thread = threading.Thread(
                target=self._dispatch_loop, args=(shard, run_stop),
                name=f"shard-dispatch-{shard.index}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _teardown(self, *, timeout: float = 2.0) -> None:
        self._run_stop.set()
        for shard in self._shards:
            shard.wake.set()
        for thread in self._threads:
            thread.join(timeout)
        for shard in self._shards:
            self._stop_child(shard, timeout=timeout)
        for shard in self._shards:
            if shard.reader is not None:
                shard.reader.join(timeout)
            # the reader exits on run_stop, possibly before the child's
            # final stats flush arrived — drain the pipe here so the
            # processed/busy mirror is complete at stop
            if shard.conn is not None:
                try:
                    while shard.conn.poll(0):
                        note = shard.conn.recv()
                        if isinstance(note, tuple) and note and note[0] == "stats":
                            self._apply_stats(shard, note[1])
                except (EOFError, OSError):
                    pass
            # settle the terminals the child flushed on its way out so
            # custody (and the ledger) close as far as possible
            try:
                self._pump_returns(shard)
            except Exception:
                pass
            self._destroy_shard_io(shard)
        self._shards = []
        self._threads = []

    def _stop_child(self, shard: _Shard, *, timeout: float = 2.0) -> None:
        proc = shard.proc
        if proc is None:
            return
        if proc.is_alive():
            try:
                shard.conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
            shard.bell_in.ring()
            proc.join(timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(1.0)
        shard.dead = True

    def _destroy_shard_io(self, shard: _Shard) -> None:
        for segment in (shard.tx, shard.rx):
            if segment is not None:
                segment.destroy()
        for bell in (shard.bell_in, shard.bell_out):
            if bell is not None:
                bell.close()
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass

    # -- planning and layouts --------------------------------------------------

    def _compute_plan(self) -> ShardPlan:
        """Plan shards over the live wiring (topology lock held)."""
        nodes = self._stream._nodes
        order = [name for name in self._stream.processing_order() if name in nodes]
        edges = []
        for name, node in nodes.items():
            for channel in node.outputs.values():
                sink = channel.sink
                if sink is not None and sink.instance in nodes:
                    edges.append(
                        (name, sink.instance, is_synchronous(channel.definition))
                    )
        return plan_shards(order, edges, self._max_shards)

    def _new_layout(self, members) -> _Layout:
        self._gen += 1
        return _build_layout(self._stream._nodes, members, self._gen)

    # -- child process management ----------------------------------------------

    @classmethod
    def _segment_name(cls) -> str:
        with cls._SEGMENT_LOCK:
            cls._SEGMENT_IDS += 1
            serial = cls._SEGMENT_IDS
        return f"mgps_{os.getpid()}_{serial}"

    def _attach_telemetry(self, shard: _Shard) -> None:
        tm = self._stream.tm
        if not tm.enabled:
            return
        label = f"shard-{shard.index}"
        shard.ring_gauge_tx = tm.shard_ring_gauge(label, "tx")
        shard.ring_gauge_rx = tm.shard_ring_gauge(label, "rx")
        shard.util_gauge = tm.shard_utilization_gauge(label)

    def _control_payload(self, layout: _Layout) -> dict:
        stream = self._stream
        states = {}
        params = {}
        for name in layout.members:
            states[name] = layout.streamlets[name].state is StreamletState.ACTIVE
            params[name] = dict(layout.ctxs[name].params)
        return {
            "states": states, "params": params,
            "version": stream.snapshot_version, "epoch": stream.epoch,
        }

    def _fork_child(self, shard: _Shard) -> None:
        layout = shard.layout
        shard.tx = ShardSegment(
            self._segment_name(),
            slots=self._ring_slots, arena_bytes=self._arena_bytes,
        )
        shard.rx = ShardSegment(
            self._segment_name(),
            slots=self._ring_slots, arena_bytes=self._arena_bytes,
        )
        shard.bell_in = Doorbell()
        shard.bell_out = Doorbell()
        parent_conn, child_conn = self._mp_ctx.Pipe(duplex=True)
        shard.conn = parent_conn
        control = self._control_payload(layout)
        shard.sent_control = control

        spec = _ChildSpec()
        spec.index = shard.index
        spec.parent_pid = os.getpid()
        spec.entries = tuple(
            (name, port, idx) for _channel, name, port, idx in layout.entries
        )
        spec.members = {
            name: _ChildMember(
                position, layout.streamlets[name], layout.ctxs[name],
                layout.in_ports[name], layout.out_ports[name],
            )
            for position, name in enumerate(layout.members)
        }
        spec.intra = dict(layout.intra)
        spec.tx = shard.tx
        spec.rx = shard.rx
        spec.bell_in = shard.bell_in
        spec.bell_out = shard.bell_out
        spec.conn = child_conn
        spec.parent_conn = parent_conn
        spec.control = control

        proc = self._mp_ctx.Process(
            target=_shard_worker, args=(spec,),
            name=f"mobigate-shard-{shard.index}", daemon=True,
        )
        proc.start()
        child_conn.close()  # our copy of the child's end: EOF detection
        shard.proc = proc
        shard.dead = False
        shard.started_at = time.monotonic()
        tm = self._stream.tm
        if tm.enabled:
            tm.recorder.record(
                "worker_spawn", stream=self._stream.name,
                worker=f"shard-{shard.index}", pid=proc.pid,
            )

    def _start_reader(self, shard: _Shard, run_stop: threading.Event) -> None:
        shard.reader = threading.Thread(
            target=self._reader_loop, args=(shard, run_stop),
            name=f"shard-reader-{shard.index}", daemon=True,
        )
        shard.reader.start()

    # -- reader thread: doorbells, stats, child-death detection ----------------

    def _reader_loop(self, shard: _Shard, run_stop: threading.Event) -> None:
        conn = shard.conn
        bell = shard.bell_out
        while not run_stop.is_set():
            try:
                ready, _, _ = select.select([bell.read_fd, conn], [], [], 0.1)
            except (OSError, ValueError):
                return  # respawn/teardown closed our fds
            if bell.read_fd in ready:
                bell.drain()
                shard.wake.set()
            if conn in ready:
                try:
                    note = conn.recv()
                except (EOFError, OSError):
                    # only the reader of the *current* child may declare
                    # the shard dead — a stale reader that lost this
                    # race to a respawn merely exits
                    if (shard.conn is conn and not run_stop.is_set()
                            and not self._stopping):
                        shard.dead = True
                    shard.wake.set()
                    return
                if isinstance(note, tuple) and note and note[0] == "stats":
                    self._apply_stats(shard, note[1])

    def _apply_stats(self, shard: _Shard, payload: dict) -> None:
        stream = self._stream
        counts = payload.get("processed") or {}
        total = sum(counts.values())
        if total:
            stream.stats.inc("processed", total)
            streamlets = shard.layout.streamlets
            for name, n in counts.items():
                streamlet = streamlets.get(name)
                if streamlet is not None:
                    streamlet.processed += n
        shard.util["busy"] += payload.get("busy", 0.0)
        shard.util["steps"] += payload.get("steps", 0)
        if shard.util_gauge is not None:
            uptime = time.monotonic() - shard.started_at
            if uptime > 0:
                shard.util_gauge.value = shard.util["busy"] / uptime

    # -- dispatcher thread ------------------------------------------------------

    def _dispatch_loop(self, shard: _Shard, run_stop: threading.Event) -> None:
        wake = shard.wake
        registered: list = []
        layout_gen = -1
        while not run_stop.is_set():
            # edge-triggered: clear BEFORE working so a signal that lands
            # mid-iteration re-arms the next one
            wake.clear()
            worked = 0
            sent = 0
            with shard.lock:
                if not shard.dead:
                    worked = self._pump_returns(shard)
                    layout = shard.layout
                    if layout.gen != layout_gen:
                        queues = [
                            channel.queue
                            for channel, _n, _p, _i in layout.entries
                        ]
                        for queue in registered:
                            if not any(queue is q for q in queues):
                                queue.remove_waiter(wake)
                        for queue in queues:
                            if not any(queue is q for q in registered):
                                queue.add_waiter(wake)
                        registered = queues
                        layout_gen = layout.gen
                    # dispatch only against a published snapshot: a writer
                    # retired it, and new work must wait out the quiesce.
                    # The control broadcast goes FIRST and gates dispatch,
                    # so a pause always precedes the next message in-band.
                    if (
                        self._published_snapshot() is not None
                        and self._sync_control(shard, layout)
                    ):
                        sent += self._dispatch_backlog(shard, layout)
                        sent += self._dispatch_entries(shard, layout)
                    if sent:
                        shard.bell_in.ring()
                    if shard.ring_gauge_tx is not None:
                        shard.ring_gauge_tx.value = float(len(shard.tx.ring))
                        shard.ring_gauge_rx.value = float(len(shard.rx.ring))
            if worked or sent:
                continue
            wake.wait(self._IDLE_WAIT)
        for queue in registered:
            queue.remove_waiter(wake)

    def _published_snapshot(self):
        """The published topology view, republishing a stale one if safe.

        Snapshot rebuilds are lazy: after boot or a completed write the
        published slot can legitimately be empty with no writer active.
        Republish it with a *non-blocking* lock attempt — blocking here
        would deadlock against a writer whose quiesce callback waits for
        this very dispatcher to drain its in-flight work.
        """
        stream = self._stream
        snap = stream._snapshot
        if snap is not None:
            return snap
        if stream.topology_lock.acquire(blocking=False):
            try:
                if stream._write_depth == 0:
                    snap = stream.topology_snapshot()
            finally:
                stream.topology_lock.release()
        return snap

    def _sync_control(self, shard: _Shard, layout: _Layout) -> bool:
        """Broadcast state/param/version changes in-band; False when full."""
        control = self._control_payload(layout)
        if control == shard.sent_control:
            return True
        try:
            blob = pickle.dumps(control, pickle.HIGHEST_PROTOCOL)
        except Exception:
            # unpicklable params: ship states/version so pause/resume and
            # epoch bumps still land (params stay at their fork values)
            fallback = dict(control, params={})
            blob = pickle.dumps(fallback, pickle.HIGHEST_PROTOCOL)
        if shard.tx.send("", K_STATE, 0, 0, 0, blob):
            shard.sent_control = control
            shard.bell_in.ring()
            return True
        return False  # full ring: dispatch must wait so ordering holds

    def _dispatch_entries(self, shard: _Shard, layout: _Layout) -> int:
        budget = self._window - len(shard.in_flight) - len(shard.backlog)
        sent = 0
        for channel, node, port, _idx in layout.entries:
            if budget <= 0:
                break
            if layout.streamlets[node].state is not StreamletState.ACTIVE:
                continue  # parent-side gate: paused members keep queueing
            position = layout.entry_index[(node, port)][0]
            while budget > 0:
                if shard.tx.ring.free_slots() == 0:
                    return sent
                if channel.queue.is_empty():
                    break
                try:
                    msg_id = channel.fetch(0.0)
                except QueueClosedError:
                    break
                if msg_id is None:
                    break
                # re-sync control *after* the fetch: a pause/param change
                # that happened-before this message's post is visible now,
                # so its K_STATE lands on the ring ahead of the dispatch
                if not self._sync_control(shard, layout):
                    shard.backlog.append((node, port, msg_id))
                    return sent
                outcome = self._send_dispatch(shard, node, port, position, msg_id)
                if outcome is None:
                    continue  # dropped or vanished: no custody taken
                if not outcome:
                    shard.backlog.append((node, port, msg_id))
                    return sent
                budget -= 1
                sent += 1
        return sent

    def _dispatch_backlog(self, shard: _Shard, layout: _Layout) -> int:
        sent = 0
        while shard.backlog:
            node, port, msg_id = shard.backlog[0]
            entry = layout.entry_index.get((node, port))
            if entry is None:
                # the member (or its wiring) is gone: account the drop
                shard.backlog.popleft()
                _drop(self._stream, msg_id)
                continue
            streamlet = layout.streamlets.get(node)
            if streamlet is None or streamlet.state is not StreamletState.ACTIVE:
                break  # hold (FIFO) until the member can accept again
            outcome = self._send_dispatch(shard, node, port, entry[0], msg_id)
            if outcome is False:
                break
            shard.backlog.popleft()
            if outcome:
                sent += 1
        return sent

    def _send_dispatch(self, shard: _Shard, node: str, port: str,
                       position: int, msg_id: str) -> bool | None:
        """True = dispatched, False = ring/arena full, None = no custody."""
        stream = self._stream
        try:
            message = stream.pool.peek(msg_id)
        except MessagePoolError:
            return None
        frame = serialize_message(message)
        if not shard.tx.fits(len(frame)):
            _drop(stream, msg_id)  # larger than the arena can ever hold
            return None
        if not shard.tx.send(msg_id, K_DISPATCH, 0, position, 0, frame):
            return False
        shard.in_flight[msg_id] = (node, port)
        shard.sent += 1
        return True

    # -- return path: terminal accounting (parent-authoritative) ---------------

    def _pump_returns(self, shard: _Shard) -> int:
        handled = 0
        while True:
            batch = shard.rx.receive(64)
            if not batch:
                return handled
            for msg_id, kind, flags, a, b, payload in batch:
                self._handle_return(shard, msg_id, kind, flags, a, b, payload)
            handled += len(batch)
            shard.returned += len(batch)

    def _handle_return(self, shard: _Shard, msg_id: str, kind: int,
                       flags: int, a: int, b: int, payload: bytes) -> None:
        stream = self._stream
        pool = stream.pool
        stats = stream.stats
        timed = stream.tm.enabled
        layout = shard.layout

        if kind == K_DONE:
            shard.in_flight.pop(msg_id, None)
            shard.settled.discard(msg_id)
            return

        if flags & F_ORIG and msg_id in shard.in_flight:
            # the F_ORIG terminal is what actually rebinds/posts or
            # releases the dispatched pool id; K_DONE merely closes the
            # dispatch.  Mark the id settled NOW so a worker death in
            # the window between the two cannot re-inject an id whose
            # message is already queued downstream — that would process
            # one message twice and admit a duplicate into the pool.
            shard.settled.add(msg_id)

        if kind == K_EXIT:
            try:
                message = parse_message(payload)
            except Exception:
                if flags & F_ORIG:
                    _drop(stream, msg_id)
                return
            if flags & F_ORIG and msg_id in pool:
                out_id = msg_id
                pool.rebind(msg_id, message)
            else:
                out_id = pool.admit(message)
            channel = layout.channels[a] if a < len(layout.channels) else None
            if channel is None:
                _drop(stream, out_id)
                return
            size = message.total_size()
            try:
                posted = channel.post(out_id, size, timeout=0)
            except QueueClosedError:
                _drop(stream, out_id)
                return
            if not posted:
                _retry_stalled(stream, [(channel, out_id, size)],
                               (self._run_stop,))
            return

        if kind in (K_ABSORB, K_OC):
            stat = "absorbed" if kind == K_ABSORB else "open_circuit_drops"
            if flags & F_ORIG:
                if msg_id in pool:
                    pool.release(msg_id)
                    if timed:
                        stream.tm.forget(msg_id)
                stats.inc(stat)
            elif payload:
                # a secondary emission that terminated inside the shard:
                # admit-then-release mirrors the in-process engines, so
                # the conservation ledger sees the same traffic shape
                try:
                    pool.release(pool.admit(parse_message(payload)))
                except Exception:
                    return
                stats.inc(stat)
            return

        if kind == K_FAIL:
            try:
                (frame_len,) = _LEN.unpack_from(payload)
                frame = payload[_LEN.size:_LEN.size + frame_len]
                text = payload[_LEN.size + frame_len:].decode("utf-8", "replace")
                message = parse_message(frame)
            except Exception:
                if flags & F_ORIG:
                    _drop(stream, msg_id)
                return
            members = layout.members
            name = members[a] if a < len(members) else "?"
            ports = layout.in_ports.get(name, ())
            port = ports[b] if b < len(ports) else ""
            if flags & F_ORIG and msg_id in pool:
                fid = msg_id
                pool.rebind(fid, message)
            else:
                fid = pool.admit(message)
            stats.inc("processing_failures")
            exc = ShardWorkerError(f"{name}: {text}")
            handler = stream.fault_handler
            retained = handler is not None and handler(name, port, fid, exc)
            if not retained:
                pool.release(fid)
                stats.inc("failure_drops")
                if timed:
                    stream.tm.forget(fid)
            if stream.failure_hook is not None:
                stream.failure_hook(name, exc)
            return

    # -- quiesce / wakeup listeners (reconfiguration protocol) -----------------

    def _on_quiesce(self) -> None:
        """Wait out every dispatched message; called with the snapshot retired.

        Dispatchers stop issuing new work the instant ``stream._snapshot``
        goes ``None`` and keep pumping returns, so the wait converges
        without this thread ever taking the topology lock.  Dead shards
        are excluded — their custody is frozen parent-side (resident in
        the pool) and re-injected on respawn, which is exactly the state
        a transactional rollback can restore around.
        """
        if self._stopping:
            return
        shards = self._shards
        for shard in shards:
            shard.wake.set()
        deadline = time.monotonic() + self._quiesce_timeout
        while time.monotonic() < deadline:
            if all(shard.dead or not shard.in_flight for shard in shards):
                return
            time.sleep(0.002)

    def _on_topology_wakeup(self) -> None:
        """React to a committed write: re-plan, re-layout, resume dispatch."""
        if self._stopping or not self._started:
            return
        with self._mgmt:
            if self._stopping:
                return
            stream = self._stream
            stream.topology_snapshot()  # republish for the dispatch gate
            with stream.topology_lock:
                plan = self._compute_plan()
                layouts = (
                    [self._new_layout(members) for members in plan.shards]
                    if plan.shards == self._plan.shards else None
                )
            if layouts is None:
                # the partition itself changed (instances added/removed):
                # rebuild the whole plane — quiescence guarantees no
                # in-flight work on live shards, and dead shards carry
                # their custody into the new backlogs
                self._restart_all()
                return
            for shard, layout in zip(self._shards, layouts):
                if layout.signature != shard.layout.signature:
                    # structure changed inside the shard: the forked child
                    # routes by stale indices, so respawn it in place
                    self._respawn_shard(shard, layout)
                else:
                    shard.layout = layout  # fresh gen: waiters re-register
                shard.wake.set()

    def _restart_all(self) -> None:
        old_shards = self._shards
        self._teardown()
        # collect custody only AFTER teardown: its final return pump may
        # have settled in-flight entries, and re-injecting a settled id
        # would double-process it
        custody: list[tuple[str, str, str]] = []
        for shard in old_shards:
            custody.extend(
                (node, port, msg_id)
                for msg_id, (node, port) in shard.in_flight.items()
                if msg_id not in shard.settled
            )
            custody.extend(shard.backlog)
        self._boot()
        if custody:
            shard_of = self._plan.shard_of
            for node, port, msg_id in custody:
                index = shard_of.get(node)
                if index is None or index >= len(self._shards):
                    _drop(self._stream, msg_id)
                else:
                    self._shards[index].backlog.append((node, port, msg_id))
            self._stream.stats.inc("retries", len(custody))
            for shard in self._shards:
                shard.wake.set()

    # -- fault plane: kill / respawn -------------------------------------------

    def kill_worker(self, name: str, *, join_timeout: float = 2.0) -> bool:
        """SIGKILL the shard process owning ``name`` (fault injection).

        The shard's custody table survives in the parent; messages the
        worker held die with it and are re-injected by
        :meth:`ensure_workers`, so the conservation ledger stays
        balanced across the kill.
        """
        with self._mgmt:
            index = self._plan.shard_of.get(name)
            if index is None or index >= len(self._shards):
                return False
            shard = self._shards[index]
            proc = shard.proc
            if shard.dead or proc is None or not proc.is_alive():
                return False
            shard.dead = True  # dispatcher stops touching the segments now
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):  # pragma: no cover - race
                pass
            proc.join(join_timeout)
            self.workers_killed += 1
            tm = self._stream.tm
            if tm.enabled:
                tm.recorder.record(
                    "worker_kill", stream=self._stream.name,
                    worker=f"shard-{shard.index}",
                )
            return True

    def ensure_workers(self) -> None:
        """Respawn dead shard processes and re-inject their custody."""
        with self._mgmt:
            if self._stopping or not self._started:
                return
            for shard in self._shards:
                proc = shard.proc
                if shard.dead or proc is None or not proc.is_alive():
                    self._respawn_shard(shard)
                    shard.wake.set()

    def _respawn_shard(self, shard: _Shard, layout: _Layout | None = None) -> None:
        stream = self._stream
        with shard.lock:
            shard.dead = True
        self._stop_child(shard, timeout=1.0)
        if shard.reader is not None:
            shard.reader.join(1.0)
        with shard.lock:
            # settle anything the old child managed to flush, then carry
            # the unresolved custody over as the new child's backlog
            try:
                self._pump_returns(shard)
            except Exception:
                pass
            custody = [
                (node, port, msg_id)
                for msg_id, (node, port) in shard.in_flight.items()
                if msg_id not in shard.settled
            ]
            shard.in_flight.clear()
            shard.settled.clear()
            custody.extend(shard.backlog)
            shard.backlog.clear()
            self._destroy_shard_io(shard)
            if layout is None:
                with stream.topology_lock:
                    layout = self._new_layout(shard.names)
            shard.layout = layout
            shard.names = layout.members
            self._fork_child(shard)
            for item in custody:
                shard.backlog.append(item)
            if custody:
                stream.stats.inc("retries", len(custody))
        # the new child ALWAYS gets a fresh reader wired to its conn and
        # doorbell; the old thread — if join(1.0) above timed out — is
        # looping on fds that were just destroyed and exits on its next
        # select without ever touching the new child's state
        self._start_reader(shard, self._run_stop)
        shard.wake.set()

    # -- quiescence / introspection --------------------------------------------

    def drain(self, *, timeout: float = 5.0, settle: float = 0.01) -> bool:
        """Wait until every queue, backlog, and in-flight table is empty."""
        deadline = time.monotonic() + timeout
        while True:
            if self._quiescent():
                time.sleep(settle)
                if self._quiescent():
                    return True
            if time.monotonic() >= deadline:
                return False
            for shard in self._shards:
                shard.wake.set()
            time.sleep(0.005)

    def _quiescent(self) -> bool:
        for shard in self._shards:
            if shard.in_flight or shard.backlog:
                return False
        snap = self._stream.topology_snapshot()
        for queue in snap.input_queues:
            if not queue.is_empty():
                return False
        return True

    def worker_states(self) -> dict[str, dict]:
        """Per-instance liveness plus the owning shard's time accounting."""
        states: dict[str, dict] = {}
        for shard in self._shards:
            proc = shard.proc
            alive = proc is not None and proc.is_alive() and not shard.dead
            busy = shard.util["busy"]
            uptime = time.monotonic() - shard.started_at
            base = {
                "alive": alive,
                "busy": bool(shard.in_flight),
                "shard": shard.index,
                "pid": proc.pid if proc is not None else None,
                "busy_seconds": busy,
                "steps": shard.util["steps"],
                "utilization": busy / uptime if uptime > 0 else 0.0,
            }
            for name in shard.names:
                states[name] = dict(base)
        return states
