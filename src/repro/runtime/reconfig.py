"""Transactional reconfiguration: validated, rollback-safe epoch commits.

The thesis claims reconfiguration "without message loss" (§6.6, Eq 7-1),
but the raw composition primitives apply handler actions one by one: an
action that raises mid-sequence leaves the live stream half-rewired.
This module makes a reconfiguration a *transaction*:

1. **stage** — collect a batch of rewiring actions (the compiled body of
   an MCL ``when`` handler, or programmatic AST actions);
2. **validate** — dry-run the batch against a :class:`ShadowTopology`
   (an in-memory model of the live wiring), re-checking 4.4.1 port-type
   compatibility on every new link and the chapter-5 semantic analyses
   (feedback loops, open circuits, relations) on the resulting table —
   all *before* touching the live stream;
3. **commit** — under quiescence (topology lock held, every streamlet
   suspended) apply the actions; any failure restores the exact prior
   topology, channel wiring, queue contents, and instance params from a
   captured :class:`_StructuralSnapshot` undo log and raises
   :class:`~repro.errors.ReconfigAbortedError`.

Every successful commit bumps the stream's monotonically increasing
**epoch**, which rides in-band on ``Content-Session`` (see
:meth:`repro.mime.headers.HeaderMap.set_epoch`) so the MobiGATE client
swaps its peer-streamlet chain at exactly the right message boundary.

A :class:`ProbationMonitor` keeps the undo log of the newest commit as a
**last-known-good record** for a probation window: a freshly committed
composition that faults repeatedly during warmup is rolled back to the
previous epoch and a ``RECONFIG_ROLLED_BACK`` context event escalates
the decision (the rollback itself bumps the epoch — it is a transition
too).

Message conservation holds across every path: drops that happen while a
transaction is applying are *deferred* (a rollback puts the ids back on
their queues; a commit releases and counts them), and a probation
rollback re-posts swept in-flight ids onto the restored channels, dropping
(with accounting) only those whose channel did not survive the epoch.

Reconfiguration composes with chain **fusion** without special cases:
fusion groups live only in the RCU execution snapshot (see
:meth:`repro.runtime.stream.RuntimeStream._fusion_chains`), never in the
configuration table a transaction rewires.  A commit that splices a
streamlet into the middle of a fused region simply rebuilds the snapshot
— the new async auto-channel splits the region into two smaller groups,
and a later commit that restores a synchronous link re-fuses them.
Residual messages left on an interior channel by a split are drained
downstream-first before the head claims new work, so FIFO order survives
the fuse/split/re-fuse transitions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum, auto

from repro.errors import (
    ChannelError,
    CompositionError,
    MobiGateError,
    ReconfigAbortedError,
    ReconfigurationError,
    ReconfigValidationError,
    SemanticError,
)
from repro.mcl import astnodes as ast
from repro.mcl.compiler import DEFAULT_CHANNEL_DEF
from repro.mcl.config import ChannelEntry, ConfigurationTable, Link
from repro.mcl.typecheck import check_connection
from repro.runtime.stream import (
    _EGRESS,
    _INGRESS,
    ReconfigTiming,
    RuntimeStream,
    _Node,
)
from repro.runtime.streamlet import StreamletState
from repro.semantics import analyze
from repro.semantics.analyzer import ViolationKind

__all__ = [
    "CommitRecord",
    "LastKnownGoodStore",
    "ProbationMonitor",
    "ReconfigTransaction",
    "ShadowTopology",
    "TxnState",
]


def flow_open_circuits(
    table: ConfigurationTable, terminal_definitions=frozenset()
) -> list[str]:
    """Open circuits (§5.2.2) on the *live flow* of a runtime table.

    The deployment compiler exposes every unbound port, so a compiled
    table can never fail the exposed-ports-bound open-circuit analysis;
    a *runtime* snapshot keeps only the edge channels attached at deploy
    time, and a blanket re-analysis would reject dormant islands (a pair
    of spares wired to each other but fed by nothing) that the runtime
    legitimately tolerates.  Messages are only *lost* where messages
    *go*: this check flags dangling, unexposed output ports on instances
    reachable from the stream's ingress.
    """
    bound: set[tuple[str, str]] = set()
    succ: dict[str, set[str]] = {}
    for link in table.links:
        bound.add((link.source.instance, link.source.port))
        bound.add((link.sink.instance, link.sink.port))
        succ.setdefault(link.source.instance, set()).add(link.sink.instance)
    for ref in table.exposed_in + table.exposed_out:
        bound.add((ref.instance, ref.port))
    connected = table.connected_instances()
    reachable: set[str] = set()
    stack = [ref.instance for ref in table.exposed_in if ref.instance in connected]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        stack.extend(succ.get(name, ()))
    violations: list[str] = []
    for name in sorted(reachable):
        definition = table.instances.get(name)
        if definition is None or definition.name in terminal_definitions:
            continue
        outputs = definition.outputs()
        if not outputs:
            continue
        unbound = [p.name for p in outputs if (name, p.name) not in bound]
        if len(unbound) == len(outputs):
            violations.append(
                f"open circuit: {name} ({definition.name}) has no outgoing "
                "connection on the live flow; incoming messages would be lost"
            )
        elif unbound:
            violations.append(
                f"open circuit: {name} ({definition.name}) leaves output "
                f"port(s) {', '.join(unbound)} unconnected on the live flow"
            )
    return violations


def default_terminals(stream: RuntimeStream) -> frozenset[str]:
    """Definitions that legitimately terminate a flow: those with no outputs.

    Mirrors the server's open-circuit exemption so a transaction validated
    against a deployed stream accepts the same topologies the deployment
    did.
    """
    defs = dict(stream.table.streamlet_defs)
    for node in stream._nodes.values():
        defs.setdefault(node.definition.name, node.definition)
    return frozenset(name for name, d in defs.items() if not d.outputs())


# ---------------------------------------------------------------------------
# The undo log
# ---------------------------------------------------------------------------


def _restore_streamlet_state(streamlet, target: StreamletState) -> None:
    """Drive a streamlet back to (the closest legal equivalent of) ``target``."""
    current = streamlet.state
    if current is target:
        return
    if target is StreamletState.ACTIVE:
        if current in (StreamletState.CREATED, StreamletState.PAUSED):
            streamlet.activate()
    elif target is StreamletState.PAUSED:
        if current is StreamletState.ACTIVE:
            streamlet.pause()
    elif target is StreamletState.CREATED:
        # activation cannot be unwound; PAUSED is the closest dormant state
        if current is StreamletState.ACTIVE:
            streamlet.pause()


@dataclass
class _NodeRecord:
    """One node's captured wiring, params, and lifecycle state."""

    node: _Node
    inputs: dict
    outputs: dict
    params: dict
    state: StreamletState


class _StructuralSnapshot:
    """A full structural capture of a stream: the transaction's undo log.

    Channels and nodes are recorded *by object*, with their mutable facets
    (port maps, source/sink refs, queue entries, params) copied — so a
    restore rebinds the very same instances and no pool id changes hands.
    Capture and restore must both run with the topology lock held and the
    stream quiescent.
    """

    __slots__ = (
        "epoch",
        "nodes",
        "channels",
        "channel_refs",
        "channel_states",
        "ingress",
        "egress",
        "auto_counter",
    )

    @classmethod
    def capture(cls, stream: RuntimeStream) -> "_StructuralSnapshot":
        snap = cls()
        snap.epoch = stream.epoch
        snap.nodes = {
            name: _NodeRecord(
                node=node,
                inputs=dict(node.inputs),
                outputs=dict(node.outputs),
                params=dict(node.ctx.params),
                state=node.streamlet.state,
            )
            for name, node in stream._nodes.items()
        }
        snap.channels = dict(stream._channels)
        snap.ingress = dict(stream.ingress)
        snap.egress = list(stream.egress)
        snap.auto_counter = stream._auto_counter
        refs: dict[int, object] = {}
        for ch in snap.channels.values():
            refs[id(ch)] = ch
        for ch in snap.ingress.values():
            refs[id(ch)] = ch
        for _ref, ch in snap.egress:
            refs[id(ch)] = ch
        for rec in snap.nodes.values():
            for ch in rec.inputs.values():
                refs[id(ch)] = ch
            for ch in rec.outputs.values():
                refs[id(ch)] = ch
        snap.channel_refs = refs
        snap.channel_states = {
            cid: (ch.source, ch.sink, ch.queue.snapshot_state())
            for cid, ch in refs.items()
        }
        return snap

    def restore(self, stream: RuntimeStream, *, with_queues: bool = True) -> None:
        """Reinstate the captured structure on ``stream``.

        ``with_queues=False`` restores wiring but leaves every queue empty
        — the probation-rollback path, where the captured entries are long
        gone and the *current* in-flight ids are re-posted by the caller.
        """
        stream._nodes = {name: rec.node for name, rec in self.nodes.items()}
        for rec in self.nodes.values():
            node = rec.node
            node.inputs.clear()
            node.inputs.update(rec.inputs)
            node.outputs.clear()
            node.outputs.update(rec.outputs)
            node.ctx.params.clear()
            node.ctx.params.update(rec.params)
            _restore_streamlet_state(node.streamlet, rec.state)
        stream._channels = dict(self.channels)
        for cid, (source, sink, qstate) in self.channel_states.items():
            channel = self.channel_refs[cid]
            channel.source = source
            channel.sink = sink
            channel.queue.restore_state(qstate, with_entries=with_queues)
        stream.ingress = dict(self.ingress)
        stream.egress = list(self.egress)
        stream._auto_counter = self.auto_counter
        stream._invalidate_topology()


# ---------------------------------------------------------------------------
# Shadow topology: the validation dry-run
# ---------------------------------------------------------------------------


class _ShadowChannel:
    """A channel's validation-relevant facets: wiring, category, pending."""

    __slots__ = ("name", "definition", "source", "sink", "pending")

    def __init__(self, name, definition, source=None, sink=None, pending=0):
        self.name = name
        self.definition = definition
        self.source = source
        self.sink = sink
        self.pending = pending

    @property
    def category(self):
        return self.definition.category


class _ShadowNode:
    __slots__ = ("name", "definition", "inputs", "outputs")

    def __init__(self, name, definition):
        self.name = name
        self.definition = definition
        self.inputs: dict[str, _ShadowChannel] = {}
        self.outputs: dict[str, _ShadowChannel] = {}


class ShadowTopology:
    """An in-memory model of a stream's live wiring for dry-running actions.

    :meth:`apply` mirrors every check the runtime primitives perform —
    name resolution, port occupancy, channel-category detach legality
    (using the *live* pending counts captured at build time), 4.4.1
    type compatibility — without touching the stream.  :meth:`to_table`
    renders the post-batch topology as a configuration table for the
    chapter-5 semantic analyses.
    """

    def __init__(self, stream: RuntimeStream):
        self._registry = stream._registry
        self._table = stream.table
        self._auto_counter = stream._auto_counter
        self.nodes: dict[str, _ShadowNode] = {}
        self.channels: dict[str, _ShadowChannel] = {}
        shadows: dict[int, _ShadowChannel] = {}

        def shadow_of(channel) -> _ShadowChannel:
            existing = shadows.get(id(channel))
            if existing is None:
                existing = _ShadowChannel(
                    channel.name,
                    channel.definition,
                    source=channel.source,
                    sink=channel.sink,
                    pending=channel.pending(),
                )
                shadows[id(channel)] = existing
            return existing

        for name, channel in stream._channels.items():
            self.channels[name] = shadow_of(channel)
        for name, node in stream._nodes.items():
            shadow = _ShadowNode(name, node.definition)
            for port, channel in node.inputs.items():
                shadow.inputs[port] = shadow_of(channel)
            for port, channel in node.outputs.items():
                shadow.outputs[port] = shadow_of(channel)
            self.nodes[name] = shadow

    # -- helpers -----------------------------------------------------------------

    def _node(self, name: str) -> _ShadowNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise CompositionError(f"no streamlet instance {name!r}") from None

    def _channel(self, name: str) -> _ShadowChannel:
        try:
            return self.channels[name]
        except KeyError:
            raise CompositionError(f"no channel instance {name!r}") from None

    @staticmethod
    def _check_detachable(channel: _ShadowChannel) -> None:
        if channel.category is ast.ChannelCategory.KK:
            raise ChannelError(f"channel {channel.name} is KK: ends cannot be detached")
        if channel.category is ast.ChannelCategory.S and channel.pending:
            raise ChannelError(
                f"channel {channel.name} is S-category but holds a pending unit"
            )

    def _auto_channel(self) -> _ShadowChannel:
        name = f"__rt_auto{self._auto_counter}"
        self._auto_counter += 1
        channel = _ShadowChannel(name, DEFAULT_CHANNEL_DEF)
        self.channels[name] = channel
        return channel

    def _forget(self, channel: _ShadowChannel) -> None:
        channel.source = None
        channel.sink = None
        channel.pending = 0
        if channel.name.startswith("__"):
            self.channels.pop(channel.name, None)

    # -- action dispatch ------------------------------------------------------------

    def apply(self, action) -> None:
        """Dry-run one handler action, raising exactly where the runtime would."""
        if isinstance(action, ast.NewInstances):
            for name in action.names:
                if action.kind == "channel":
                    self._new_channel(name, action.definition)
                else:
                    self._new_streamlet(name, action.definition)
        elif isinstance(action, ast.Connect):
            self._connect(action.source, action.sink, action.channel)
        elif isinstance(action, ast.Disconnect):
            self._disconnect(action.source, action.sink)
        elif isinstance(action, ast.DisconnectAll):
            self._disconnect_all(action.instance)
        elif isinstance(action, ast.Insert):
            self._insert(action.source, action.sink, action.instance)
        elif isinstance(action, ast.Replace):
            self._replace(action.old, action.new)
        elif isinstance(action, ast.RemoveInstance):
            if action.kind == "channel":
                self._remove_channel(action.name)
            else:
                self._remove(action.name, extract=action.kind == "extract")
        else:
            raise ReconfigurationError(f"illegal handler action {action!r}")

    # -- primitives (mirrors of RuntimeStream's, side-effect free) -------------------

    def _new_streamlet(self, name: str, definition_name: str) -> None:
        if name in self.nodes or name in self.channels:
            raise CompositionError(f"instance name {name!r} already in use")
        definition = self._table.streamlet_defs.get(definition_name)
        if definition is None:
            raise CompositionError(f"unknown streamlet definition {definition_name!r}")
        self.nodes[name] = _ShadowNode(name, definition)

    def _new_channel(self, name: str, definition_name: str) -> None:
        if name in self.channels or name in self.nodes:
            raise CompositionError(f"instance name {name!r} already in use")
        definition = self._table.channel_defs.get(definition_name)
        if definition is None:
            raise CompositionError(f"unknown channel definition {definition_name!r}")
        self.channels[name] = _ShadowChannel(name, definition)

    def _connect(self, source: ast.PortRef, sink: ast.PortRef, channel_name) -> None:
        src = self._node(source.instance)
        dst = self._node(sink.instance)
        if channel_name is not None:
            channel = self._channel(channel_name)
            if channel.source is not None or channel.sink is not None:
                raise CompositionError(
                    f"channel {channel_name!r} already carries a connection"
                )
        else:
            channel = self._auto_channel()
        check_connection(
            self._registry, src.definition, source, dst.definition, sink,
            channel.definition,
        )
        if source.port in src.outputs:
            raise CompositionError(f"port {source} is already connected")
        if sink.port in dst.inputs:
            raise CompositionError(f"port {sink} is already connected")
        channel.source = source
        channel.sink = sink
        src.outputs[source.port] = channel
        dst.inputs[sink.port] = channel

    def _disconnect(self, source: ast.PortRef, sink: ast.PortRef) -> None:
        src = self._node(source.instance)
        dst = self._node(sink.instance)
        channel = src.outputs.get(source.port)
        if channel is None or channel.sink != sink:
            raise CompositionError(f"no connection between {source} and {sink}")
        self._check_detachable(channel)
        del src.outputs[source.port]
        dst.inputs.pop(sink.port, None)
        self._forget(channel)

    def _disconnect_all(self, instance: str) -> None:
        node = self._node(instance)
        for port, channel in list(node.outputs.items()):
            if channel.sink is not None and channel.sink.instance != _EGRESS:
                self._disconnect(ast.PortRef(instance, port), channel.sink)
        for port, channel in list(node.inputs.items()):
            if channel.source is not None and channel.source.instance != _INGRESS:
                self._disconnect(channel.source, ast.PortRef(instance, port))

    def _insert(self, source: ast.PortRef, sink: ast.PortRef, instance: str) -> None:
        src = self._node(source.instance)
        dst = self._node(sink.instance)
        new = self._node(instance)
        ins = new.definition.inputs()
        outs = new.definition.outputs()
        if len(ins) != 1 or len(outs) != 1:
            raise ReconfigurationError(
                f"insert target {instance} must have exactly one in and one out port"
            )
        channel = src.outputs.get(source.port)
        if channel is None or channel.sink != sink:
            raise ReconfigurationError(f"no connection between {source} and {sink}")
        if new.inputs or new.outputs:
            raise ReconfigurationError(f"insert target {instance} is already wired")
        self._check_detachable(channel)
        new_out = ast.PortRef(instance, outs[0].name)
        check_connection(
            self._registry, new.definition, new_out, dst.definition, sink,
            channel.definition,
        )
        new_in = ast.PortRef(instance, ins[0].name)
        fresh = self._auto_channel()
        check_connection(
            self._registry, src.definition, source, new.definition, new_in,
            fresh.definition,
        )
        if channel.category in (ast.ChannelCategory.BB, ast.ChannelCategory.KB):
            channel.pending = 0  # the live detach_source drops these
        channel.source = new_out
        new.outputs[outs[0].name] = channel
        fresh.source = source
        fresh.sink = new_in
        src.outputs[source.port] = fresh
        new.inputs[ins[0].name] = fresh

    def _heal(self, node: _ShadowNode) -> bool:
        in_links = [
            (p, c) for p, c in node.inputs.items()
            if c.source is not None and c.source.instance != _INGRESS
        ]
        out_links = [
            (p, c) for p, c in node.outputs.items()
            if c.sink is not None and c.sink.instance != _EGRESS
        ]
        if len(in_links) != 1 or len(out_links) != 1:
            return False
        (_, upstream), (_, downstream) = in_links[0], out_links[0]
        predecessor = upstream.source
        pred = self._node(predecessor.instance)
        downstream.pending += upstream.pending
        downstream.source = predecessor
        pred.outputs[predecessor.port] = downstream
        self._forget(upstream)
        node.inputs.clear()
        node.outputs.clear()
        return True

    def _remove(self, name: str, *, extract: bool) -> None:
        node = self._node(name)
        waiting = [ch.name for ch in node.inputs.values() if ch.pending]
        if waiting:
            verb = "extract" if extract else "remove"
            raise ReconfigurationError(
                f"cannot {verb} {name}: input channel(s) {waiting} still hold "
                "messages (drain the stream first or pass force=True)"
            )
        if not self._heal(node):
            self._disconnect_all(name)
        if not extract:
            node.inputs.clear()
            node.outputs.clear()
            del self.nodes[name]

    def _remove_channel(self, name: str) -> None:
        channel = self._channel(name)
        if channel.source is not None or channel.sink is not None:
            raise CompositionError(f"channel {name!r} still carries a connection")
        del self.channels[name]

    def _replace(self, old: str, new: str) -> None:
        old_node = self._node(old)
        new_node = self._node(new)
        if new_node.inputs or new_node.outputs:
            raise ReconfigurationError(f"replacement {new!r} is already wired")
        for port in old_node.inputs:
            decl = new_node.definition.port(port)
            if decl is None or decl.direction is not ast.PortDirection.IN:
                raise ReconfigurationError(
                    f"replacement {new!r} lacks input port {port!r} of {old!r}"
                )
        for port in old_node.outputs:
            decl = new_node.definition.port(port)
            if decl is None or decl.direction is not ast.PortDirection.OUT:
                raise ReconfigurationError(
                    f"replacement {new!r} lacks output port {port!r} of {old!r}"
                )
        for port, channel in old_node.inputs.items():
            channel.sink = ast.PortRef(new, port)
            new_node.inputs[port] = channel
        for port, channel in old_node.outputs.items():
            channel.source = ast.PortRef(new, port)
            new_node.outputs[port] = channel
        old_node.inputs.clear()
        old_node.outputs.clear()
        del self.nodes[old]

    # -- the post-batch configuration table ------------------------------------------

    def to_table(self) -> ConfigurationTable:
        """Render the shadow wiring the way ``snapshot_table`` renders the live one."""
        channels: dict[str, ChannelEntry] = {}
        links: list[Link] = []
        exposed_in: list[ast.PortRef] = []
        exposed_out: list[ast.PortRef] = []
        for name, node in self.nodes.items():
            for port, channel in node.outputs.items():
                if channel.sink is None:
                    continue
                if channel.sink.instance == _EGRESS:
                    exposed_out.append(ast.PortRef(name, port))
                    continue
                channels[channel.name] = ChannelEntry(
                    name=channel.name, definition=channel.definition,
                    auto=channel.name.startswith("__"),
                )
                decl = node.definition.port(port)
                links.append(Link(
                    source=ast.PortRef(name, port),
                    sink=channel.sink,
                    channel=channel.name,
                    mediatype=decl.mediatype if decl else None,  # type: ignore[arg-type]
                ))
            for port, channel in node.inputs.items():
                if channel.source is not None and channel.source.instance == _INGRESS:
                    exposed_in.append(ast.PortRef(name, port))
        return ConfigurationTable(
            stream_name=self._table.stream_name,
            instances={name: node.definition for name, node in self.nodes.items()},
            channels=channels,
            links=links,
            handlers=dict(self._table.handlers),
            exposed_in=tuple(exposed_in),
            exposed_out=tuple(exposed_out),
            streamlet_defs=dict(self._table.streamlet_defs),
            channel_defs=dict(self._table.channel_defs),
        )


# ---------------------------------------------------------------------------
# The transaction
# ---------------------------------------------------------------------------


class TxnState(Enum):
    """Lifecycle of a :class:`ReconfigTransaction` (staged → terminal)."""

    STAGED = auto()
    VALIDATED = auto()
    COMMITTED = auto()
    ROLLED_BACK = auto()


class ReconfigTransaction:
    """One atomic reconfiguration: stage → validate → commit (or roll back).

    The transaction registers itself as ``stream._txn`` for the duration
    of the apply phase so the composition primitives defer irreversible
    effects: message drops are buffered (``defer_drops``) and removed
    nodes are parked unfinalised (``defer_removal``).  A successful
    commit realises both and bumps the stream epoch; a failed apply
    restores the undo log — topology, wiring, params, queue contents —
    and raises :class:`ReconfigAbortedError` carrying the index of the
    action that failed.
    """

    def __init__(
        self,
        stream: RuntimeStream,
        actions=None,
        *,
        label: str = "reconfig",
        terminal_definitions=None,
    ):
        self._stream = stream
        self._actions: list = list(actions) if actions is not None else []
        self.label = label
        self._terminals = terminal_definitions
        self.state = TxnState.STAGED
        self._dropped: list[str] = []
        self._limbo: list[_Node] = []
        #: the undo log of a committed transaction (adopted by a
        #: LastKnownGoodStore when a ProbationMonitor is armed)
        self.undo: _StructuralSnapshot | None = None
        #: the epoch this transaction committed as, once committed
        self.epoch: int | None = None
        self.error: Exception | None = None
        self.timing: ReconfigTiming | None = None

    @property
    def actions(self) -> tuple:
        return tuple(self._actions)

    def stage(self, *actions) -> "ReconfigTransaction":
        """Append actions to the batch (invalidates a prior validation)."""
        if self.state in (TxnState.COMMITTED, TxnState.ROLLED_BACK):
            raise ReconfigurationError(
                f"transaction {self.label!r} already {self.state.name.lower()}"
            )
        self._actions.extend(actions)
        self.state = TxnState.STAGED
        return self

    # -- hooks called by RuntimeStream primitives mid-apply -------------------------

    def defer_drops(self, msg_ids) -> None:
        """Buffer would-be drops; realised on commit, forgotten on rollback."""
        self._dropped.extend(msg_ids)

    def defer_removal(self, node: _Node) -> None:
        """Park a removed node unfinalised until the commit is decided."""
        self._limbo.append(node)

    def take_limbo(self) -> list[_Node]:
        """Hand over the removed-but-unfinalised nodes (LKG adoption)."""
        nodes, self._limbo = self._limbo, []
        return nodes

    # -- validate --------------------------------------------------------------------

    def validate(self) -> ConfigurationTable:
        """Dry-run the batch; returns the post-batch configuration table.

        Raises :class:`ReconfigValidationError` if any action would fail
        against the current topology or the resulting shape flunks the
        chapter-5 analyses.  The live stream is never touched.
        """
        stream = self._stream
        try:
            with stream.topology_lock:
                shadow = ShadowTopology(stream)
                for index, action in enumerate(self._actions):
                    try:
                        shadow.apply(action)
                    except MobiGateError as exc:
                        raise ReconfigValidationError(
                            f"{self.label}: action {index} "
                            f"({type(action).__name__}) rejected: {exc}"
                        ) from exc
                table = shadow.to_table()
                terminals = (
                    self._terminals if self._terminals is not None
                    else default_terminals(stream)
                )
                report = analyze(table, terminal_definitions=terminals)
                structural = [
                    v for v in report.violations
                    if v.kind is not ViolationKind.OPEN_CIRCUIT
                ]
                # the blanket open-circuit analysis would reject dormant
                # islands the runtime tolerates; check the live flow instead
                open_circuits = flow_open_circuits(
                    table, terminal_definitions=terminals
                )
                if structural or open_circuits:
                    first = (
                        structural[0].message if structural else open_circuits[0]
                    )
                    exc = ReconfigValidationError(
                        f"{self.label}: post-reconfiguration topology "
                        f"inconsistent: {first}"
                    )
                    if structural:
                        try:
                            structural[0].raise_()
                        except SemanticError as cause:
                            raise exc from cause
                    raise exc
        except ReconfigValidationError:
            if stream.tm.enabled:
                stream.tm.reconfig_outcome("validation_failed")
                stream.tm.recorder.record(
                    "reconfig_validation_failed",
                    stream=stream.name, label=self.label,
                )
            raise
        self.state = TxnState.VALIDATED
        return table

    # -- commit / rollback ---------------------------------------------------------

    def execute(self) -> ReconfigTiming:
        """Validate then commit, holding the write section across both."""
        with self._stream._write_access():
            if self.state is TxnState.STAGED:
                self.validate()
            return self.commit(validate=False)

    def commit(self, *, validate: bool = True) -> ReconfigTiming:
        """Apply the batch under quiescence; roll back on any failure."""
        stream = self._stream
        if self.state in (TxnState.COMMITTED, TxnState.ROLLED_BACK):
            raise ReconfigurationError(
                f"transaction {self.label!r} already {self.state.name.lower()}"
            )
        clock = stream._clock
        # the RCU write side: retires the published topology snapshot and
        # waits out every in-flight scheduler step before the undo log is
        # captured, so the capture (and the commit it guards) is exact
        with stream._write_access():
            if stream._txn is not None:
                raise ReconfigurationError(
                    f"stream {stream.name} already has a transaction mid-apply"
                )
            if validate and self.state is not TxnState.VALIDATED:
                self.validate()
            t_commit = time.perf_counter()
            snapshot = _StructuralSnapshot.capture(stream)
            timing = ReconfigTiming()
            t0 = clock.now()
            quiesced = [
                node for node in stream._nodes.values() if node.streamlet.is_active
            ]
            for node in quiesced:
                node.streamlet.pause()
            timing.suspend += clock.now() - t0
            stream._txn = self
            index = -1
            try:
                for index, action in enumerate(self._actions):
                    timing.merge(stream._execute_actions([action]))
            except Exception as exc:
                stream._txn = None
                t_rollback = time.perf_counter()
                self._rollback(snapshot)
                rollback_seconds = time.perf_counter() - t_rollback
                self.state = TxnState.ROLLED_BACK
                self.error = exc
                if stream.tm.enabled:
                    stream.tm.reconfig_outcome("rolled_back")
                    stream.tm.reconfig_latency("rollback", rollback_seconds)
                    stream.tm.recorder.record(
                        "reconfig_rollback", stream=stream.name,
                        label=self.label, action_index=index, error=str(exc),
                    )
                raise ReconfigAbortedError(
                    f"{self.label}: action {index} "
                    f"({type(action).__name__}) failed mid-apply; "
                    f"prior topology restored: {exc}",
                    cause=exc,
                    failed_action=index,
                ) from exc
            stream._txn = None
            self._finalize_drops()
            stream.epoch += 1
            self.epoch = stream.epoch
            t0 = clock.now()
            for node in quiesced:
                name = node.ctx.instance_id
                if (
                    stream._nodes.get(name) is node
                    and node.streamlet.state is StreamletState.PAUSED
                    and (node.inputs or node.outputs)
                ):
                    node.streamlet.activate()
            timing.activate += clock.now() - t0
            self.undo = snapshot
            self.timing = timing
            self.state = TxnState.COMMITTED
            adopter = stream.lkg_adopter
            if adopter is not None:
                adopter(self)
            else:
                self._finalize_limbo()
            if stream.tm.enabled:
                stream.tm.reconfig_outcome("committed")
                stream.tm.reconfig_latency("commit", time.perf_counter() - t_commit)
                stream.tm.epoch(stream.epoch)
                stream.tm.recorder.record(
                    "reconfig_commit", stream=stream.name,
                    label=self.label, epoch=stream.epoch,
                )
        return timing

    def _rollback(self, snapshot: _StructuralSnapshot) -> None:
        stream = self._stream
        created = [
            node for name, node in stream._nodes.items()
            if name not in snapshot.nodes
        ]
        snapshot.restore(stream, with_queues=True)
        # deferred drops: the ids are back on their captured queues
        self._dropped.clear()
        # nodes created by the failed apply never reach the topology
        for node in created:
            _finalize_node(stream, node)
        # limbo nodes that pre-existed are revived by the restore; ones
        # created *and* removed inside the failed apply must still die
        limbo, self._limbo = self._limbo, []
        for node in limbo:
            if node.ctx.instance_id not in snapshot.nodes:
                _finalize_node(stream, node)

    def _finalize_drops(self) -> None:
        ids, self._dropped = self._dropped, []
        if ids:
            self._stream._release_dropped(ids)

    def _finalize_limbo(self) -> None:
        nodes, self._limbo = self._limbo, []
        for node in nodes:
            _finalize_node(self._stream, node)


def _finalize_node(stream: RuntimeStream, node: _Node) -> None:
    """End and release a node that is permanently out of the topology."""
    if node.streamlet.state is not StreamletState.ENDED:
        node.streamlet.end()
        node.streamlet.on_end(node.ctx)
    stream._manager.release(node.streamlet)


# ---------------------------------------------------------------------------
# Last-known-good store + probation
# ---------------------------------------------------------------------------


@dataclass
class CommitRecord:
    """The retained undo log of one committed epoch."""

    epoch: int
    snapshot: _StructuralSnapshot
    limbo: list[_Node] = field(default_factory=list)
    committed_at: float = 0.0


class LastKnownGoodStore:
    """Holds the newest commit's undo log until probation retires it.

    At most one record is held: adopting a new commit finalises the
    previous one (its limbo nodes are ended and released — the prior
    epoch is now two transitions old and unreachable).

    The undo log itself is live object state and cannot be persisted,
    but its *transitions* can: with a ``ledger``
    (:class:`repro.store.ledger.Ledger`) every adopt / retire / take is
    recorded under ``scope``, so after a crash the recovery plane knows
    which epoch was last known good for the session.
    """

    def __init__(self, stream: RuntimeStream, *, ledger=None, scope: str | None = None):
        self._stream = stream
        self.record: CommitRecord | None = None
        self._ledger = ledger
        self._scope = scope if scope is not None else stream.name

    def adopt(self, txn: ReconfigTransaction) -> CommitRecord:
        """Retain a freshly committed transaction's undo log."""
        self.finalize()
        self.record = CommitRecord(
            epoch=txn.epoch,
            snapshot=txn.undo,
            limbo=txn.take_limbo(),
            committed_at=self._stream._clock.now(),
        )
        if self._ledger is not None and self._ledger.enabled:
            self._ledger.lkg(self._scope, "adopted", epoch=txn.epoch)
        return self.record

    def finalize(self) -> None:
        """Retire the held record: finalise its limbo nodes, drop the log."""
        record, self.record = self.record, None
        if record is None:
            return
        for node in record.limbo:
            _finalize_node(self._stream, node)
        if self._ledger is not None and self._ledger.enabled:
            self._ledger.lkg(self._scope, "retired", epoch=record.epoch)

    def take(self) -> CommitRecord | None:
        """Remove and return the record *without* finalising (rollback path)."""
        record, self.record = self.record, None
        if record is not None and self._ledger is not None and self._ledger.enabled:
            self._ledger.lkg(self._scope, "taken", epoch=record.epoch)
        return record


class ProbationMonitor:
    """Rolls back a freshly committed epoch that faults during warmup.

    Armed on a stream (optionally hooked into a
    :class:`repro.faults.Supervisor`), the monitor adopts every commit's
    undo log as the last-known-good record.  If ``fault_threshold``
    streamlet faults land inside the ``window`` (in stream-clock seconds)
    after the commit, :meth:`rollback_to_lkg` restores the previous
    composition, re-posts the swept in-flight ids onto the restored
    channels, bumps the epoch (a rollback is a transition too), and
    escalates ``RECONFIG_ROLLED_BACK``.  A quiet window retires the
    record and the new epoch graduates.
    """

    def __init__(
        self,
        stream: RuntimeStream,
        *,
        window: float = 5.0,
        fault_threshold: int = 3,
        events=None,
        ledger=None,
        scope: str | None = None,
    ):
        if window <= 0:
            raise ReconfigurationError(f"probation window must be > 0, got {window}")
        if fault_threshold < 1:
            raise ReconfigurationError(
                f"fault threshold must be >= 1, got {fault_threshold}"
            )
        self._stream = stream
        self.window = window
        self.fault_threshold = fault_threshold
        self._events = events
        self.store = LastKnownGoodStore(stream, ledger=ledger, scope=scope)
        self._faults = 0
        self._armed = False
        self._supervisor = None
        self._prev_failure_hook = None
        self.rollbacks = 0

    # -- arming -----------------------------------------------------------------

    def arm(self, *, supervisor=None) -> "ProbationMonitor":
        """Start adopting commits; watch faults via ``supervisor`` or the
        stream's ``failure_hook`` (chained, not replaced)."""
        if self._armed:
            raise ReconfigurationError("probation monitor already armed")
        stream = self._stream
        if stream.lkg_adopter is not None:
            raise ReconfigurationError(
                f"stream {stream.name} already has a last-known-good adopter"
            )
        stream.lkg_adopter = self._adopt
        if supervisor is not None:
            self._supervisor = supervisor
            supervisor.probation = self
        else:
            previous = stream.failure_hook
            self._prev_failure_hook = previous

            def chained(instance_id, exc):
                if previous is not None:
                    previous(instance_id, exc)
                self.note_fault(instance_id)

            stream.failure_hook = chained
        self._armed = True
        return self

    def disarm(self) -> None:
        """Stop watching; the held record (if any) is retired as good."""
        if not self._armed:
            return
        stream = self._stream
        stream.lkg_adopter = None
        if self._supervisor is not None:
            self._supervisor.probation = None
            self._supervisor = None
        else:
            stream.failure_hook = self._prev_failure_hook
            self._prev_failure_hook = None
        self.store.finalize()
        self._faults = 0
        self._armed = False

    @property
    def on_probation(self) -> bool:
        return self.store.record is not None

    # -- the probation clock ------------------------------------------------------

    def _adopt(self, txn: ReconfigTransaction) -> None:
        self.store.adopt(txn)
        self._faults = 0

    def tick(self, now: float | None = None) -> None:
        """Advance the probation clock; a survived window retires the record."""
        record = self.store.record
        if record is None:
            return
        if now is None:
            now = self._stream._clock.now()
        if now - record.committed_at >= self.window:
            self.store.finalize()
            self._faults = 0

    def note_fault(self, instance: str | None = None) -> None:
        """Count one streamlet fault against the epoch on probation."""
        self.tick()
        if self.store.record is None:
            return
        self._faults += 1
        if self._faults >= self.fault_threshold:
            self.rollback_to_lkg()

    # -- the rollback ------------------------------------------------------------

    def rollback_to_lkg(self) -> None:
        """Restore the last-known-good composition, conserving in-flight ids."""
        stream = self._stream
        record = self.store.take()
        if record is None:
            raise ReconfigurationError(
                f"stream {stream.name} has no last-known-good record"
            )
        with stream._write_access():
            for node in stream._nodes.values():
                if node.streamlet.is_active:
                    node.streamlet.pause()
            # sweep every in-flight id of the faulting epoch, remembering
            # which channel carried it so survivors keep their position
            drained: list[tuple[int, str]] = []
            seen: set[int] = set()

            def sweep(channel) -> None:
                if id(channel) in seen:
                    return
                seen.add(id(channel))
                for msg_id in channel.queue.drain():
                    drained.append((id(channel), msg_id))

            for channel in stream._channels.values():
                sweep(channel)
            for channel in stream.ingress.values():
                sweep(channel)
            for _ref, channel in stream.egress:
                sweep(channel)
            for node in stream._nodes.values():
                for channel in node.inputs.values():
                    sweep(channel)
                for channel in node.outputs.values():
                    sweep(channel)
            created = [
                node for name, node in stream._nodes.items()
                if name not in record.snapshot.nodes
            ]
            record.snapshot.restore(stream, with_queues=False)
            for node in created:
                _finalize_node(stream, node)
            for node in record.limbo:
                if node.ctx.instance_id not in record.snapshot.nodes:
                    _finalize_node(stream, node)
            # re-post survivors onto the restored channels; ids whose
            # channel did not survive the epoch are dropped with accounting
            refs = record.snapshot.channel_refs
            for cid, msg_id in drained:
                channel = refs.get(cid)
                if (
                    channel is None
                    or channel.queue.closed
                    or msg_id not in stream.pool
                    or not channel.post(msg_id, stream.pool.size_of(msg_id))
                ):
                    stream._release_dropped([msg_id])
            stream.epoch += 1  # the rollback is itself an epoch transition
            self._faults = 0
        self.rollbacks += 1
        if stream.tm.enabled:
            stream.tm.reconfig_outcome("rolled_back")
            stream.tm.epoch(stream.epoch)
            stream.tm.recorder.record(
                "probation_rollback", stream=stream.name, epoch=stream.epoch
            )
        if self._events is not None:
            self._events.raise_event("RECONFIG_ROLLED_BACK", source=stream.name)
        elif stream.escalation_hook is not None:
            stream.escalation_hook(
                "RECONFIG_ROLLED_BACK",
                ReconfigurationError(
                    f"epoch {record.epoch} flunked probation; "
                    f"rolled back to last known good"
                ),
            )
