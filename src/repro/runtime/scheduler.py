"""Execution engines for the Streamlet Execution Plane (section 3.3.4).

Two engines drive the same :class:`~repro.runtime.stream.RuntimeStream`:

* :class:`InlineScheduler` — deterministic, single-threaded: drives a
  dirty-node worklist in (topological) processing order, moving one
  message per input port per visit.  Used by tests and by the virtual-
  time experiments, where reproducibility matters more than parallelism.
* :class:`ThreadedScheduler` — one worker thread per streamlet instance,
  faithful to the Java design ("extensive use of multi-threading",
  section 7.4).  Workers read an immutable RCU-style
  :class:`~repro.runtime.stream.TopologySnapshot` lock-free and block on
  per-worker wakeup events signalled by their input queues, so steps on
  distinct streamlets genuinely overlap and an idle stream costs no CPU.
  Reconfiguration retires the snapshot under the stream's write section
  (:meth:`RuntimeStream._write_access`), waits out in-flight steps, and
  workers pick up the republished view at their next step — see
  ``docs/performance.md`` for the full protocol.

Both engines implement the same message step: fetch an id, check the
message out of the pool, call ``process``, push the peer id when the
streamlet has one, and post the results — dropping (and counting) any
emission aimed at an unconnected port, which is exactly the open-circuit
hazard the chapter-5 analysis exists to prevent.
"""

from __future__ import annotations

import threading
import time

from repro.errors import QueueClosedError
from repro.mime.headers import CONTENT_TRACE
from repro.runtime.channel import Channel
from repro.runtime.stream import RuntimeStream, TopologySnapshot, _NodeView
from repro.runtime.streamlet import StreamletState

#: canonical HeaderMap key for Content-Trace — probed directly against the
#: header dict on the hot path, sparing a method call + lower() per hop
_TRACE_KEY = CONTENT_TRACE.lower()


#: a post that found its queue full mid-step; retried after the step (and
#: outside the read gate's critical work) so consumers can drain meanwhile.
#: The size rides along so stalled retries never recompute total_size().
_Stalled = tuple["Channel", str, int]


def _bump(stats, acc: dict[str, int] | None, name: str) -> None:
    """Count into the step accumulator when one is live, else directly.

    Batched steps collect their counter bumps in a plain dict and flush
    them through :meth:`StreamStats.inc_many` once per dispatch, so a
    batch of N messages pays one stats lock instead of N.
    """
    if acc is None:
        stats.inc(name)
    else:
        acc[name] = acc.get(name, 0) + 1


def _has_headroom(outputs: dict[str, Channel]) -> bool:
    """True while every output queue can absorb another batched emission.

    The batching stop rule: a rendezvous queue (capacity 0) holding any
    pending unit vetoes further claims — its single slot is the
    synchronisation point, and racing past it would turn backpressure
    into drops — and a bounded queue stops the batch at half capacity so
    a concurrent producer still fits.  The *first* claim of a visit never
    consults this, preserving the one-message-per-visit contract exactly.
    """
    for channel in outputs.values():
        queue = channel.queue
        capacity = queue.capacity_bytes
        if capacity == 0:
            if len(queue):
                return False
        elif queue.pending_bytes * 2 > capacity:
            return False
    return True


def _step_node(
    stream: RuntimeStream, name: str, view: _NodeView,
    stalled: list[_Stalled] | None = None,
    batch: int = 1,
    acc: dict[str, int] | None = None,
) -> int:
    """Move up to ``batch`` messages through each of the node's input ports.

    The first claim per port is unconditional (the historical one-message
    step); further claims in the same visit happen only while no emission
    has stalled and every output queue keeps headroom, so batching can
    never convert a backpressure signal into drops.  Fused views dispatch
    to :func:`_step_fused`, which runs the whole member chain per claim.
    """
    if view.fused:
        return _step_fused(stream, view, stalled, batch=batch, acc=acc)
    if view.streamlet.state is not StreamletState.ACTIVE:
        return 0
    moved = 0
    queue_wait_hist = view.queue_wait_hist
    for port, channel in view.inputs:  # frozen tuple: no per-step copy
        for claim in range(batch):
            # extra claims first probe the queue lock-free: a fetch miss
            # costs a mutex round-trip, and on latency-bound traffic
            # (one message in flight) every claim after the first misses
            if claim and (
                stalled or channel.queue.is_empty()
                or not _has_headroom(view.outputs)
            ):
                break
            try:
                msg_id = channel.fetch(0.0)
            except QueueClosedError:
                break
            if msg_id is None:
                break
            if queue_wait_hist is not None:
                # post-to-claim delay: the queue stored the raw post time;
                # one clock sample here is both the claim stamp and the
                # service start, so attribution costs a single
                # perf_counter per hop
                claimed_at = time.perf_counter()
                posted_at = channel.queue.last_post_at
                if posted_at is not None:
                    queue_wait_hist.observe(claimed_at - posted_at)
                moved += _process_message(
                    stream, name, view, port, msg_id, stalled,
                    t0=claimed_at, acc=acc,
                )
            else:
                moved += _process_message(
                    stream, name, view, port, msg_id, stalled, acc=acc
                )
    return moved


def _process_one(
    stream: RuntimeStream, name: str, view, port: str, msg_id: str,
    acc: dict[str, int] | None = None,
    t0: float | None = None,
):
    """Checkout → process → account for one message at one streamlet.

    Returns the id-assigned emissions as ``(out_port, out_id, out_msg)``
    triples ready for routing — to output channels for an ordinary node
    (:func:`_route_emissions`), or to the next member of a fused chain
    (:func:`_run_chain`) — or None when the message terminated here
    (failure or absorption).
    """
    pool = stream.pool
    stats = stream.stats
    tm = stream.tm
    timed = tm.enabled
    if timed and t0 is None:
        t0 = time.perf_counter()
    message = pool.checkout(msg_id)
    view.ctx.session = message.session
    try:
        emissions = view.streamlet.process(port, message, view.ctx)
    except Exception as exc:  # fault containment: one bad message must not
        if timed:
            duration = time.perf_counter() - t0
            view.hop_hist.observe(duration)
            entry = message.headers._fields.get(_TRACE_KEY)
            if entry is not None:
                tm.hop_span(name, entry[1], message, None, duration, failed=True)
        _bump(stats, acc, "processing_failures")  # (section 3.3.5)
        handler = stream.fault_handler
        retained = handler is not None and handler(name, port, msg_id, exc)
        if not retained:  # no supervisor claimed the id: release and count
            pool.release(msg_id)
            _bump(stats, acc, "failure_drops")
            if timed:
                tm.forget(msg_id)
        if stream.failure_hook is not None:
            stream.failure_hook(name, exc)
        return None
    view.streamlet.processed += 1
    _bump(stats, acc, "processed")
    if timed:
        # span before any routing: once an emission is enqueued (or handed
        # to the next fused member) a concurrent consumer may read its
        # headers, so the trace context (the parent advance) must be in
        # place first
        duration = time.perf_counter() - t0
        view.hop_hist.observe(duration)
        entry = message.headers._fields.get(_TRACE_KEY)
        if entry is not None:
            tm.hop_span(name, entry[1], message, emissions, duration)
    if not emissions:
        pool.release(msg_id)  # absorbed (cache hit, filter, ...)
        _bump(stats, acc, "absorbed")
        if timed:
            tm.forget(msg_id)
        return None
    peer = view.streamlet.peer_id
    routed = []
    reused_id = False
    for out_port, out_msg in emissions:
        if peer is not None:
            out_msg.headers.push_peer(peer)
        if not reused_id:
            out_id = msg_id
            if out_msg is not message:
                pool.rebind(msg_id, out_msg)
            reused_id = True
        else:
            out_id = pool.admit(out_msg)
        routed.append((out_port, out_id, out_msg))
    return routed


def _route_emissions(
    stream: RuntimeStream, view, routed,
    stalled: list[_Stalled] | None = None,
    acc: dict[str, int] | None = None,
) -> None:
    """Post id-assigned emissions to the view's output channels."""
    stats = stream.stats
    timed = stream.tm.enabled
    outputs = view.outputs
    for out_port, out_id, out_msg in routed:
        out_channel: Channel | None = outputs.get(out_port)
        if out_channel is None:
            # open circuit at runtime: the message has nowhere to go
            stream.pool.release(out_id)
            _bump(stats, acc, "open_circuit_drops")
            if timed:
                stream.tm.forget(out_id)
            continue
        # never block mid-step: a waiting producer would starve the
        # consumer that could free the space.  Once a channel has a
        # stalled message, later emissions to it queue behind (FIFO order
        # must survive the retry path).
        size = out_msg.total_size()  # computed once: retries reuse it
        already_stalled = stalled is not None and any(
            ch is out_channel for ch, _, _ in stalled
        )
        posted = False
        if not already_stalled:
            try:
                posted = out_channel.post(out_id, size, timeout=0)
            except QueueClosedError:
                # a closed channel can never accept — drop now, never retry
                _drop(stream, out_id)
                continue
        if not posted:
            if stalled is not None:
                stalled.append((out_channel, out_id, size))
            else:
                _drop(stream, out_id)


def _process_message(
    stream: RuntimeStream, name: str, view: _NodeView, port: str, msg_id: str,
    stalled: list[_Stalled] | None = None,
    t0: float | None = None,
    acc: dict[str, int] | None = None,
) -> int:
    routed = _process_one(stream, name, view, port, msg_id, acc, t0)
    if routed is not None:
        _route_emissions(stream, view, routed, stalled, acc)
    return 1


def _run_chain(
    stream: RuntimeStream, view, index: int, port: str, msg_id: str,
    stalled: list[_Stalled] | None = None,
    acc: dict[str, int] | None = None,
    t0: float | None = None,
) -> int:
    """Run one claimed message through fused members ``index`` onward.

    Interior emissions hop member-to-member in memory (the elided
    channels are never posted); only the tail's emissions go through the
    normal channel-post path with the stalled-retry machinery.  Each
    member still gets its own pool checkout (VALUE-mode copy semantics
    survive fusion), service-time observation, and failure containment —
    a supervisor that retains a failed id can re-post it to the member's
    still-wired input channel, where the residual drain picks it up.
    """
    members = view.members
    last = len(members) - 1
    i = index
    pending: list | None = None  # lazily built: only multi-emission needs it
    while True:
        member = members[i]
        routed = _process_one(stream, member.name, member, port, msg_id, acc, t0)
        advanced = False
        if routed is not None:
            if i == last:
                _route_emissions(stream, member, routed, stalled, acc)
            elif len(routed) == 1 and routed[0][0] in member.outputs:
                # the common shape — one emission on the wired port — hops
                # straight to the next member, no worklist traffic
                msg_id = routed[0][1]
                port = members[i + 1].inputs[0][0]
                i += 1
                t0 = None
                advanced = True
            else:
                next_port = members[i + 1].inputs[0][0]
                outputs = member.outputs
                for out_port, out_id, out_msg in routed:
                    if out_port not in outputs:
                        # open circuit mid-chain: identical to the unfused drop
                        stream.pool.release(out_id)
                        _bump(stream.stats, acc, "open_circuit_drops")
                        if stream.tm.enabled:
                            stream.tm.forget(out_id)
                        continue
                    if pending is None:
                        pending = []
                    pending.append((i + 1, next_port, out_id))
        if advanced:
            continue
        if not pending:
            return 1
        i, port, msg_id = pending.pop(0)
        t0 = None


def _step_fused(
    stream: RuntimeStream, view,
    stalled: list[_Stalled] | None = None,
    *, batch: int = 1,
    acc: dict[str, int] | None = None,
) -> int:
    """Step a fused chain: claim at the head, run every member per dispatch.

    Residual units parked on an interior channel — traffic admitted
    before the chain fused (or re-posted by a supervisor retry) — drain
    first, downstream-first, so end-to-end FIFO order survives fuse/split
    transitions.  A single paused member parks the whole chain: one
    dispatch cannot honour a suspension boundary mid-run, so messages
    wait at the head until every member is active again.
    """
    members = view.members
    for member in members:
        if member.streamlet.state is not StreamletState.ACTIVE:
            return 0
    moved = 0
    interior = view.interior
    for idx in range(len(interior) - 1, -1, -1):
        channel = interior[idx]
        if channel.queue.is_empty():
            # lock-free probe: interior queues hold traffic only across a
            # fuse/split transition, so skip the fetch-miss mutex cost
            continue
        entry = members[idx + 1]
        entry_port = entry.inputs[0][0]
        wait_hist = entry.queue_wait_hist
        while not stalled:
            try:
                msg_id = channel.fetch(0.0)
            except QueueClosedError:
                break
            if msg_id is None:
                break
            t0 = None
            if wait_hist is not None:
                t0 = time.perf_counter()
                posted_at = channel.queue.last_post_at
                if posted_at is not None:
                    wait_hist.observe(t0 - posted_at)
            moved += _run_chain(stream, view, idx + 1, entry_port, msg_id,
                                stalled, acc, t0)
    head = members[0]
    tail_outputs = members[-1].outputs
    wait_hist = head.queue_wait_hist
    for port, channel in head.inputs:
        for claim in range(batch):
            if stalled or (
                claim and (
                    channel.queue.is_empty()
                    or not _has_headroom(tail_outputs)
                )
            ):
                break
            try:
                msg_id = channel.fetch(0.0)
            except QueueClosedError:
                break
            if msg_id is None:
                break
            t0 = None
            if wait_hist is not None:
                t0 = time.perf_counter()
                posted_at = channel.queue.last_post_at
                if posted_at is not None:
                    wait_hist.observe(t0 - posted_at)
            moved += _run_chain(stream, view, 0, port, msg_id, stalled, acc, t0)
    return moved


def _drop(stream: RuntimeStream, msg_id: str) -> None:
    """Release a dropped id, fire the drop signal, count, forget the trace."""
    if msg_id in stream.pool:
        message = stream.pool.release(msg_id)
        if stream.drop_hook is not None:
            stream.drop_hook(msg_id, message)
    stream.stats.inc("queue_drops")
    if stream.tm.enabled:
        stream.tm.forget(msg_id)


def _retry_stalled(
    stream: RuntimeStream, stalled: list[_Stalled],
    abort: tuple[threading.Event, ...] = (),
) -> None:
    """Re-post full-queue emissions under the Figure 6-9 budget, then drop.

    The retry is a non-blocking probe plus a bounded wait on the queue's
    producer condition (``wait_for_room``) — no topology lock, no polling
    slices — and the budget is the *channel's* configured ``drop_timeout``,
    so a stall-retry honours the same contract an ordinary blocking post
    would.  Exactly one drop is booked per abandoned id.
    """
    for channel, msg_id, size in stalled:
        deadline = time.monotonic() + channel.drop_timeout
        posted = False
        while not any(event.is_set() for event in abort):
            try:
                if channel.post(msg_id, size, timeout=0):
                    posted = True
                    break
            except QueueClosedError:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            channel.queue.wait_for_room(size, min(0.05, remaining))
        if not posted:
            _drop(stream, msg_id)


class InlineScheduler:
    """Deterministic cooperative pump driven by a dirty-node worklist.

    Rather than re-walking every instance per round, each round visits
    only nodes with a reason to run — seeded from pending input traffic,
    extended by the consumers of every node that moved — always in the
    snapshot's deterministic processing order.
    """

    #: messages claimed per input port per visit; the headroom rule in
    #: :func:`_step_node` keeps batching invisible to bounded channels
    def __init__(self, stream: RuntimeStream, *, batch: int = 8):
        self._stream = stream
        self._batch = max(1, batch)

    def _seed(self, snap: TopologySnapshot) -> set[str]:
        """Nodes worth visiting: active with pending input traffic."""
        dirty: set[str] = set()
        for name in snap.order:
            view = snap.nodes[name]
            if view.streamlet.state is not StreamletState.ACTIVE:
                continue
            for _port, channel in view.inputs:
                if not channel.queue.is_empty():
                    dirty.add(name)
                    break
        return dirty

    def pump(self, *, max_rounds: int | None = None) -> int:
        """Process until quiescent (or ``max_rounds``); returns moves made."""
        stream = self._stream
        gate = stream._read_gate
        batch = self._batch
        acc: dict[str, int] = {}  # flushed once per round (one stats lock)
        total = 0
        rounds = 0
        snap = stream.topology_snapshot()
        dirty = self._seed(snap)
        while True:
            moved_round = 0
            restart = False
            for name in snap.order:
                if name not in dirty:
                    continue
                gate.enter()
                current = stream._snapshot
                if current is not snap:
                    # a concurrent (or in-step) reconfiguration republished
                    # the topology: re-resolve and reseed the worklist
                    gate.exit()
                    snap = stream.topology_snapshot()
                    dirty = self._seed(snap)
                    restart = True
                    break
                dirty.discard(name)
                view = snap.nodes[name]
                try:
                    moved = _step_node(stream, name, view, None, batch, acc)
                finally:
                    gate.exit()
                if moved:
                    moved_round += moved
                    dirty.update(view.consumers)
                    for _port, channel in view.inputs:
                        if not channel.queue.is_empty():
                            dirty.add(name)
                            break
            if acc:
                stream.stats.inc_many(acc)
                acc.clear()
            if restart:
                continue  # an interrupted walk is not a round
            total += moved_round
            rounds += 1
            if moved_round == 0:
                return total
            if max_rounds is not None and rounds >= max_rounds:
                return total

    def run_to_completion(self, messages, port=0) -> list:
        """Post each message, pump, and return everything collected."""
        out = []
        for message in messages:
            self._stream.post(message, port)
            self.pump()
            out.extend(self._stream.collect())
        self.pump()
        out.extend(self._stream.collect())
        return out


class ThreadedScheduler:
    """One worker thread per streamlet instance (the Java model).

    Workers are event-driven: each registers a wakeup event on its input
    queues (set by every post), steps lock-free against the published
    topology snapshot, and blocks on the event when idle.  ``idle_spins``
    counts heartbeat timeouts (the residual polling a busy-wait design
    would rack up constantly); ``event_wakeups`` counts real signals.
    """

    #: idle heartbeat: a blocked worker re-examines the world this often
    #: even without a signal (covers paused-with-traffic and lost-wakeup
    #: corners); it is NOT the scheduling latency, which is event-driven
    _IDLE_WAIT = 0.05

    def __init__(
        self, stream: RuntimeStream, *,
        poll_interval: float = 0.001, batch: int = 8,
    ):
        self._stream = stream
        #: retained for API compatibility; used only as the drain()
        #: re-check cadence floor, never as a busy-poll period
        self._poll = poll_interval
        #: messages claimed per input port per step (see _step_node)
        self._batch = max(1, batch)
        self._threads: dict[str, threading.Thread] = {}
        self._stop = threading.Event()
        self._kills: dict[str, threading.Event] = {}   # per-worker kill switch
        self._wakes: dict[str, threading.Event] = {}   # per-worker input signal
        self._busy: dict[str, bool] = {}               # name -> mid-step/retry
        self._counter_lock = threading.Lock()
        #: activity condition: workers notify after every step / idle
        #: transition so drain() blocks instead of polling queues
        self._activity = threading.Condition()
        self.workers_killed = 0
        #: heartbeat timeouts while idle (≈0 under event-driven operation)
        self.idle_spins = 0
        #: wakeups delivered by queue posts / reconfig / stop signals
        self.event_wakeups = 0
        #: per-worker time accounting (busy / blocked / snapshot-refresh
        #: seconds + steps), maintained only when telemetry is enabled;
        #: each dict has a single writer (its worker), so plain stores
        self._utilization: dict[str, dict] = {}

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn one worker thread per current instance."""
        if self._threads:
            raise RuntimeError("scheduler already started")
        self._stop.clear()
        self._stream.add_wakeup_listener(self._on_topology_wakeup)
        for name in self._stream.topology_snapshot().order:
            self._spawn(name)

    def _spawn(self, name: str) -> None:
        kill = threading.Event()
        wake = threading.Event()
        self._kills[name] = kill
        self._wakes[name] = wake
        thread = threading.Thread(
            target=self._worker, args=(name, kill, wake),
            name=f"streamlet-{name}", daemon=True,
        )
        self._threads[name] = thread
        tm = self._stream.tm
        if tm.enabled:
            tm.recorder.record("worker_spawn", stream=self._stream.name, worker=name)
        thread.start()

    def _on_topology_wakeup(self) -> None:
        # a write section closed (or RESUME fired): every sleeping worker
        # must re-resolve the snapshot / re-check its streamlet state
        for wake in tuple(self._wakes.values()):
            wake.set()
        with self._activity:
            self._activity.notify_all()

    def _count(self, attr: str) -> None:
        with self._counter_lock:
            setattr(self, attr, getattr(self, attr) + 1)

    # -- the worker loop ---------------------------------------------------------

    def _worker(self, name: str, kill: threading.Event, wake: threading.Event) -> None:
        stream = self._stream
        gate = stream._read_gate
        stop = self._stop
        snap: TopologySnapshot | None = None
        view: _NodeView | None = None
        registered: list = []   # queues currently carrying our wake event
        # per-worker utilization: this worker is the dict's only writer,
        # so plain float adds need no lock; skipped entirely when disabled
        timed = stream.tm.enabled
        util = {"busy": 0.0, "blocked": 0.0, "refresh": 0.0, "steps": 0}
        if timed:
            self._utilization[name] = util
        batch = self._batch
        acc: dict[str, int] = {}  # flushed after every step (one stats lock)
        try:
            while not stop.is_set() and not kill.is_set():
                # RCU read side: register in the gate FIRST, then check the
                # published pointer.  If a writer retired it (None) or
                # republished (a different object), leave the gate and
                # resolve outside — a registered reader must never block
                # on the topology lock.
                gate.enter()
                current = stream._snapshot
                if current is not snap or view is None:
                    gate.exit()
                    if timed:
                        r0 = time.perf_counter()
                    current = stream.topology_snapshot()  # may wait out a writer
                    snap = current
                    view = current.nodes.get(name)
                    queues = (
                        [channel.queue for _port, channel in view.inputs]
                        if view is not None else []
                    )
                    for queue in registered:
                        if not any(queue is q for q in queues):
                            queue.remove_waiter(wake)
                    for queue in queues:
                        if not any(queue is q for q in registered):
                            queue.add_waiter(wake)
                    registered = queues
                    if timed:
                        util["refresh"] += time.perf_counter() - r0
                    if view is None:
                        return  # instance was removed by a reconfiguration
                    continue
                # fast path: a known snapshot, read entirely lock-free.
                # Clear the wakeup BEFORE fetching so a post that lands
                # mid-step re-arms it (edge-triggered, no lost signals).
                wake.clear()
                self._busy[name] = True
                if timed:
                    b0 = time.perf_counter()
                stalled: list[_Stalled] = []
                try:
                    moved = _step_node(stream, name, view, stalled, batch, acc)
                finally:
                    gate.exit()
                if acc:
                    stream.stats.inc_many(acc)
                    acc.clear()
                # full-queue posts retry OUTSIDE the read gate so a writer
                # is never blocked behind a backpressure stall; the busy
                # flag spans the retry so drain() cannot observe a fake
                # quiescence while a message is parked here
                if stalled:
                    _retry_stalled(stream, stalled, (stop, kill))
                self._busy[name] = False
                if timed:
                    util["busy"] += time.perf_counter() - b0
                    util["steps"] += moved
                with self._activity:
                    self._activity.notify_all()
                if moved or stalled:
                    continue
                # idle: block until an input posts, a reconfiguration
                # commits, stop/kill — or the heartbeat as a backstop
                if timed:
                    w0 = time.perf_counter()
                    signalled = wake.wait(self._IDLE_WAIT)
                    util["blocked"] += time.perf_counter() - w0
                else:
                    signalled = wake.wait(self._IDLE_WAIT)
                if signalled:
                    self._count("event_wakeups")
                else:
                    self._count("idle_spins")
        finally:
            for queue in registered:
                queue.remove_waiter(wake)
            self._busy.pop(name, None)
            with self._activity:
                self._activity.notify_all()

    # -- worker management (fault injection / reconfiguration) --------------------

    def ensure_workers(self) -> None:
        """Spawn threads for instances added by reconfiguration.

        Also respawns workers that died or were killed (fault injection):
        any instance without a live thread gets a fresh one.
        """
        for name in self._stream.topology_snapshot().order:
            existing = self._threads.get(name)
            if existing is None or not existing.is_alive():
                self._spawn(name)

    def kill_worker(self, name: str, *, join_timeout: float = 2.0) -> bool:
        """Terminate one worker thread (the fault-injection kill switch).

        The instance and its channels survive — messages simply stop
        moving through it until :meth:`ensure_workers` respawns the
        worker.  Returns False when no live worker exists for ``name``.
        """
        thread = self._threads.get(name)
        kill = self._kills.get(name)
        if thread is None or kill is None or not thread.is_alive():
            return False
        kill.set()
        wake = self._wakes.get(name)
        if wake is not None:
            wake.set()  # a sleeping worker must notice the kill now
        thread.join(join_timeout)
        self.workers_killed += 1
        tm = self._stream.tm
        if tm.enabled:
            tm.recorder.record("worker_kill", stream=self._stream.name, worker=name)
        return True

    def worker_states(self) -> dict[str, dict]:
        """Per-worker liveness plus time accounting (when telemetry is on).

        ``utilization`` is busy time over accounted time (busy + blocked
        + snapshot-refresh); accounting fields appear only for workers of
        a telemetry-enabled stream.  Served by the gateway's
        ``introspect`` control verb.
        """
        states: dict[str, dict] = {}
        for name, thread in self._threads.items():
            entry: dict = {
                "alive": thread.is_alive(),
                "busy": bool(self._busy.get(name)),
            }
            util = self._utilization.get(name)
            if util is not None:
                busy = util["busy"]
                total = busy + util["blocked"] + util["refresh"]
                entry.update(
                    busy_seconds=busy,
                    blocked_seconds=util["blocked"],
                    refresh_seconds=util["refresh"],
                    steps=util["steps"],
                    utilization=busy / total if total else 0.0,
                )
            states[name] = entry
        return states

    # -- quiescence ---------------------------------------------------------------

    def drain(self, *, timeout: float = 5.0, settle: float = 0.01) -> bool:
        """Wait until every channel is empty for ``settle`` seconds straight.

        Event-based: between checks the caller blocks on the workers'
        activity condition (notified after every step), not on a poll of
        every queue.
        """
        deadline = time.monotonic() + timeout
        while True:
            if self._quiescent():
                time.sleep(settle)
                if self._quiescent():
                    return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            with self._activity:
                # bounded wait: guards the race where the last step's
                # notify fired between our check and this wait
                self._activity.wait(min(max(self._poll, 0.01), remaining))

    def _quiescent(self) -> bool:
        if any(self._busy.values()):
            return False  # a worker is mid-step or holds a stalled message
        snap = self._stream.topology_snapshot()
        for queue in snap.input_queues:
            if not queue.is_empty():
                return False
        return True

    def stop(self, *, timeout: float = 2.0) -> None:
        """Signal workers to exit and join them."""
        self._stop.set()
        for wake in tuple(self._wakes.values()):
            wake.set()
        for thread in self._threads.values():
            thread.join(timeout)
        self._stream.remove_wakeup_listener(self._on_topology_wakeup)
        self._threads.clear()
        self._kills.clear()
        self._wakes.clear()
