"""Execution engines for the Streamlet Execution Plane (section 3.3.4).

Two engines drive the same :class:`~repro.runtime.stream.RuntimeStream`:

* :class:`InlineScheduler` — deterministic, single-threaded: repeatedly
  walks the instances in (topological) processing order, moving one
  message per input port per round.  Used by tests and by the virtual-time
  experiments, where reproducibility matters more than parallelism.
* :class:`ThreadedScheduler` — one worker thread per streamlet instance,
  condition-variable queues, faithful to the Java design ("extensive use
  of multi-threading", section 7.4).  Reconfiguration takes the stream's
  topology lock, so wiring never changes under a worker's feet.

Both engines implement the same message step: fetch an id, check the
message out of the pool, call ``process``, push the peer id when the
streamlet has one, and post the results — dropping (and counting) any
emission aimed at an unconnected port, which is exactly the open-circuit
hazard the chapter-5 analysis exists to prevent.
"""

from __future__ import annotations

import threading
import time

from repro.errors import QueueClosedError
from repro.mime.headers import CONTENT_TRACE
from repro.runtime.channel import Channel
from repro.runtime.stream import RuntimeStream, _Node
from repro.runtime.streamlet import StreamletState

#: canonical HeaderMap key for Content-Trace — probed directly against the
#: header dict on the hot path, sparing a method call + lower() per hop
_TRACE_KEY = CONTENT_TRACE.lower()


#: a post that found its queue full while the topology lock was held;
#: retried outside the lock so consumers can drain in the meantime
_Stalled = tuple["Channel", str, int]


def _step_node(
    stream: RuntimeStream, name: str, node: _Node,
    stalled: list[_Stalled] | None = None,
) -> int:
    """Move at most one message through each of the node's input ports."""
    if node.streamlet.state is not StreamletState.ACTIVE:
        return 0
    moved = 0
    for port, channel in list(node.inputs.items()):
        try:
            msg_id = channel.fetch(0.0)
        except QueueClosedError:
            continue
        if msg_id is None:
            continue
        moved += _process_message(stream, name, node, port, msg_id, stalled)
    return moved


def _process_message(
    stream: RuntimeStream, name: str, node: _Node, port: str, msg_id: str,
    stalled: list[_Stalled] | None = None,
) -> int:
    tm = stream.tm
    timed = tm.enabled
    if timed:
        t0 = time.perf_counter()
    message = stream.pool.checkout(msg_id)
    node.ctx.session = message.session
    try:
        emissions = node.streamlet.process(port, message, node.ctx)
    except Exception as exc:  # fault containment: one bad message must not
        if timed:
            duration = time.perf_counter() - t0
            node.hop_hist.observe(duration)
            entry = message.headers._fields.get(_TRACE_KEY)
            if entry is not None:
                tm.hop_span(name, entry[1], message, None, duration, failed=True)
        stream.stats.processing_failures += 1  # (section 3.3.5)
        handler = stream.fault_handler
        retained = handler is not None and handler(name, port, msg_id, exc)
        if not retained:  # no supervisor claimed the id: release and count
            stream.pool.release(msg_id)
            stream.stats.failure_drops += 1
            if timed:
                tm.forget(msg_id)
        if stream.failure_hook is not None:
            stream.failure_hook(name, exc)
        return 1
    node.streamlet.processed += 1
    stream.stats.processed += 1
    if timed:
        # span before any post: once an emission is enqueued a concurrent
        # consumer may read its headers, so the trace context (the parent
        # advance) must be in place first
        duration = time.perf_counter() - t0
        node.hop_hist.observe(duration)
        entry = message.headers._fields.get(_TRACE_KEY)
        if entry is not None:
            tm.hop_span(name, entry[1], message, emissions, duration)
    if not emissions:
        stream.pool.release(msg_id)  # absorbed (cache hit, filter, ...)
        stream.stats.absorbed += 1
        if timed:
            tm.forget(msg_id)
        return 1
    peer = node.streamlet.peer_id
    reused_id = False
    for out_port, out_msg in emissions:
        if peer is not None:
            out_msg.headers.push_peer(peer)
        if not reused_id:
            out_id = msg_id
            if out_msg is not message:
                stream.pool.rebind(msg_id, out_msg)
            reused_id = True
        else:
            out_id = stream.pool.admit(out_msg)
        out_channel: Channel | None = node.outputs.get(out_port)
        if out_channel is None:
            # open circuit at runtime: the message has nowhere to go
            stream.pool.release(out_id)
            stream.stats.open_circuit_drops += 1
            if timed:
                tm.forget(out_id)
            continue
        # never block while (possibly) holding the topology lock: a waiting
        # producer would starve the consumer that could free the space.
        # Once a channel has a stalled message, later emissions to it queue
        # behind (FIFO order must survive the retry path).
        already_stalled = stalled is not None and any(
            ch is out_channel for ch, _, _ in stalled
        )
        posted = False
        if not already_stalled:
            try:
                posted = out_channel.post(out_id, out_msg.total_size(), timeout=0)
            except QueueClosedError:
                # a closed channel can never accept — drop now, never retry
                _drop(stream, out_id)
                continue
        if not posted:
            if stalled is not None:
                stalled.append((out_channel, out_id, out_msg.total_size()))
            else:
                _drop(stream, out_id)
    return 1


def _drop(stream: RuntimeStream, msg_id: str) -> None:
    """Release a dropped id, fire the drop signal, count, forget the trace."""
    if msg_id in stream.pool:
        message = stream.pool.release(msg_id)
        if stream.drop_hook is not None:
            stream.drop_hook(msg_id, message)
    stream.stats.queue_drops += 1
    if stream.tm.enabled:
        stream.tm.forget(msg_id)


class InlineScheduler:
    """Deterministic cooperative pump."""

    def __init__(self, stream: RuntimeStream):
        self._stream = stream

    def pump(self, *, max_rounds: int | None = None) -> int:
        """Process until quiescent (or ``max_rounds``); returns moves made."""
        stream = self._stream
        total = 0
        rounds = 0
        while True:
            moved = 0
            with stream.topology_lock:
                for name in stream.processing_order():
                    node = stream._nodes.get(name)
                    if node is not None:
                        moved += _step_node(stream, name, node)
            total += moved
            rounds += 1
            if moved == 0:
                return total
            if max_rounds is not None and rounds >= max_rounds:
                return total

    def run_to_completion(self, messages, port=0) -> list:
        """Post each message, pump, and return everything collected."""
        out = []
        for message in messages:
            self._stream.post(message, port)
            self.pump()
            out.extend(self._stream.collect())
        self.pump()
        out.extend(self._stream.collect())
        return out


class ThreadedScheduler:
    """One worker thread per streamlet instance (the Java model)."""

    def __init__(self, stream: RuntimeStream, *, poll_interval: float = 0.001):
        self._stream = stream
        self._poll = poll_interval
        self._threads: dict[str, threading.Thread] = {}
        self._stop = threading.Event()
        self._kills: dict[str, threading.Event] = {}   # per-worker kill switch
        self._in_retry = 0                 # workers currently retrying a stall
        self._retry_lock = threading.Lock()
        self.workers_killed = 0

    def start(self) -> None:
        """Spawn one worker thread per current instance."""
        if self._threads:
            raise RuntimeError("scheduler already started")
        self._stop.clear()
        with self._stream.topology_lock:
            names = self._stream.instance_names()
        for name in names:
            self._spawn(name)

    def _spawn(self, name: str) -> None:
        kill = threading.Event()
        self._kills[name] = kill
        thread = threading.Thread(
            target=self._worker, args=(name, kill),
            name=f"streamlet-{name}", daemon=True,
        )
        self._threads[name] = thread
        thread.start()

    def _worker(self, name: str, kill: threading.Event) -> None:
        stream = self._stream
        while not self._stop.is_set() and not kill.is_set():
            stalled: list[_Stalled] = []
            with stream.topology_lock:
                node = stream._nodes.get(name)
                if node is None:
                    return  # instance was removed by a reconfiguration
                moved = _step_node(stream, name, node, stalled)
            # full-queue posts retry OUTSIDE the topology lock so the
            # downstream consumer can drain; deadline = the Figure 6-9
            # drop timeout, after which the message is dropped
            if stalled:
                with self._retry_lock:
                    self._in_retry += 1
            for channel, msg_id, size in stalled:
                deadline = time.monotonic() + stream._drop_timeout
                posted = False
                while not self._stop.is_set() and not kill.is_set():
                    try:
                        remaining = deadline - time.monotonic()
                        if channel.post(msg_id, size, timeout=max(0.0, min(0.05, remaining))):
                            posted = True
                            break
                    except QueueClosedError:
                        break
                    if time.monotonic() >= deadline:
                        break
                if not posted:
                    _drop(stream, msg_id)
            if stalled:
                with self._retry_lock:
                    self._in_retry -= 1
            if moved == 0:
                time.sleep(self._poll)

    def ensure_workers(self) -> None:
        """Spawn threads for instances added by reconfiguration.

        Also respawns workers that died or were killed (fault injection):
        any instance without a live thread gets a fresh one.
        """
        with self._stream.topology_lock:
            names = self._stream.instance_names()
        for name in names:
            existing = self._threads.get(name)
            if existing is None or not existing.is_alive():
                self._spawn(name)

    def kill_worker(self, name: str, *, join_timeout: float = 2.0) -> bool:
        """Terminate one worker thread (the fault-injection kill switch).

        The instance and its channels survive — messages simply stop
        moving through it until :meth:`ensure_workers` respawns the
        worker.  Returns False when no live worker exists for ``name``.
        """
        thread = self._threads.get(name)
        kill = self._kills.get(name)
        if thread is None or kill is None or not thread.is_alive():
            return False
        kill.set()
        thread.join(join_timeout)
        self.workers_killed += 1
        return True

    def drain(self, *, timeout: float = 5.0, settle: float = 0.01) -> bool:
        """Wait until every channel is empty for ``settle`` seconds straight."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._quiescent():
                time.sleep(settle)
                if self._quiescent():
                    return True
            time.sleep(self._poll)
        return False

    def _quiescent(self) -> bool:
        with self._retry_lock:
            if self._in_retry:
                return False  # a worker still holds a stalled message
        stream = self._stream
        with stream.topology_lock:
            for node in stream._nodes.values():
                for channel in node.inputs.values():
                    if not channel.queue.is_empty():
                        return False
        return True

    def stop(self, *, timeout: float = 2.0) -> None:
        """Signal workers to exit and join them."""
        self._stop.set()
        for thread in self._threads.values():
            thread.join(timeout)
        self._threads.clear()
        self._kills.clear()
