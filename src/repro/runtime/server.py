"""The MobiGATE server facade (Figure 3-2, all components assembled).

``MobiGateServer`` wires the whole server side together: the Streamlet
Directory, the Streamlet Manager (with pooling), the Event Manager, the
MCL compiler (fed with the directory's definitions), the chapter-5
semantic verifier, and the Coordination Manager.  A typical session::

    server = MobiGateServer()
    register_builtin_streamlets(server.directory)   # repro.streamlets
    stream = server.deploy_script(MCL_SOURCE)
    scheduler = InlineScheduler(stream)
    stream.post(message)
    scheduler.pump()
    delivered = stream.collect()
    server.events.raise_event("LOW_BANDWIDTH")      # triggers when-blocks
"""

from __future__ import annotations

from repro.errors import MobiGateError
from repro.events import DEFAULT_CATALOG, EventCatalog
from repro.mcl.compiler import MclCompiler
from repro.mcl.config import CompiledScript, ConfigurationTable
from repro.mime.registry import TypeRegistry, default_registry
from repro.runtime.coordination import CoordinationManager
from repro.runtime.directory import StreamletDirectory
from repro.runtime.events import EventManager
from repro.runtime.message_pool import PassMode
from repro.runtime.stream import RuntimeStream
from repro.runtime.streamlet_manager import StreamletManager
from repro.semantics import verify
from repro.telemetry import Telemetry
from repro.util.clock import Clock, WallClock


class MobiGateServer:
    """Everything in Figure 3-2, behind one object.

    Telemetry is **default-on**: unless a facade is passed, a fresh
    :class:`~repro.telemetry.Telemetry` (backed by the process-wide metric
    registry) observes every stream the server deploys.  Pass
    ``telemetry=NULL_TELEMETRY`` to run unobserved (the benchmark
    baseline).
    """

    def __init__(
        self,
        *,
        registry: TypeRegistry | None = None,
        catalog: EventCatalog | None = None,
        clock: Clock | None = None,
        pooling: bool = True,
        pass_mode: PassMode = PassMode.REFERENCE,
        drop_timeout: float = 0.0,
        verify_semantics: bool = True,
        terminal_definitions: frozenset[str] | set[str] = frozenset(),
        telemetry: Telemetry | None = None,
        fuse: bool = True,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.catalog = catalog if catalog is not None else DEFAULT_CATALOG
        self.clock = clock if clock is not None else WallClock()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.directory = StreamletDirectory()
        self.manager = StreamletManager(
            self.directory, pooling=pooling, telemetry=self.telemetry
        )
        self.events = EventManager(self.catalog)
        self.coordination = CoordinationManager(
            self.manager,
            self.events,
            registry=self.registry,
            clock=self.clock,
            pass_mode=pass_mode,
            drop_timeout=drop_timeout,
            telemetry=self.telemetry,
            fuse=fuse,
        )
        self._verify = verify_semantics
        self._terminals = frozenset(terminal_definitions)

    # -- compilation ---------------------------------------------------------------

    def compile(self, source: str) -> CompiledScript:
        """Compile MCL against the directory's advertised definitions."""
        compiler = MclCompiler(
            registry=self.registry,
            catalog=self.catalog,
            extra_streamlets=self.directory.definitions(),
        )
        return compiler.compile(source)

    # -- deployment -----------------------------------------------------------------

    def deploy_table(self, table: ConfigurationTable, *, start: bool = True) -> RuntimeStream:
        """Verify (chapter 5) and deploy one configuration table."""
        if self._verify:
            verify(table, terminal_definitions=self._terminals | self._default_terminals())
        return self.coordination.deploy(table, start=start)

    def deploy_script(self, source: str, *, stream: str | None = None, start: bool = True) -> RuntimeStream:
        """Compile, verify, and deploy one stream from MCL source.

        ``stream`` selects a stream by name; default is the script's main
        stream.
        """
        compiled = self.compile(source)
        if stream is not None:
            try:
                table = compiled.tables[stream]
            except KeyError:
                raise MobiGateError(f"script defines no stream {stream!r}") from None
        else:
            table = compiled.main_table()
        return self.deploy_table(table, start=start)

    def undeploy(self, name: str) -> None:
        """End a deployed stream and release its subscriptions."""
        self.coordination.undeploy(name)

    def _default_terminals(self) -> frozenset[str]:
        """Definitions flagged terminal by their interface: no output ports."""
        return frozenset(
            name
            for name, definition in self.directory.definitions().items()
            if not definition.outputs()
        )
