"""Shared-memory primitives for the multi-process execution plane.

The :class:`~repro.runtime.process_scheduler.ProcessScheduler` moves
messages between the parent gateway process and its shard workers through
plain shared memory — no pickling channel, no socket round-trip per hop.
Each direction of each shard gets one segment laid out as::

    [ ring header | ring slots ... | arena header | arena bytes ... ]

* :class:`SpscRing` — a single-producer/single-consumer descriptor ring.
  The producer owns the ``head`` counter, the consumer owns ``tail``;
  both are 8-byte-aligned unsigned monotonic counts written with single
  ``struct.pack_into`` stores.  Publication does **not** ride on
  ``head`` alone (that would assume x86-TSO store ordering): every slot
  carries a *sequence word* the producer writes strictly after the slot
  contents, and the consumer admits a slot only once its sequence
  matches the position being claimed — a slot whose stores have not yet
  become visible is simply retried on the next poll.  Slots are
  fixed-size descriptors (id, kind, flags, two operand words, an arena
  offset/length pair, and a payload checksum).
* :class:`ByteArena` — a circular bump allocator for the variable-size
  payloads the descriptors point at.  Allocation order equals descriptor
  order, and the consumer copies a payload out *at claim time*, so
  freeing is a single monotonic ``tail`` advance (FIFO reclaim — the
  free list degenerates to one counter).
* :class:`ShardSegment` — one ``multiprocessing.shared_memory`` block
  holding a ring + arena pair, with ``send``/``receive`` conveniences
  and the unlink bookkeeping the shutdown path (and an ``atexit``
  backstop) relies on so test runs never leak ``/dev/shm`` segments.

Both ring and arena operate on any writable buffer, so the property
tests drive them over a plain ``bytearray`` with no shared memory (and
no cleanup) involved.
"""

from __future__ import annotations

import atexit
import os
import struct
import threading
import zlib
from multiprocessing import shared_memory

_U64 = struct.Struct("<Q")

#: one ring slot's data portion: message id (utf-8, NUL padded), kind,
#: flags, two operand words, the payload's arena offset + length, and a
#: CRC-32 of the payload bytes; an 8-byte sequence word precedes it
_SLOT_DATA = struct.Struct("<32sHHIIQQI")
SLOT_SIZE = 8 + _SLOT_DATA.size  # seq word + data, a multiple of 8
ID_BYTES = 32

#: ring header: head (producer-owned) and tail (consumer-owned) counters,
#: each on its own 8-byte slot so the two writers never share a word
RING_HEADER = 16
ARENA_HEADER = 16

#: a claimed/posted descriptor: (msg_id, kind, flags, a, b, offset, length)
Descriptor = tuple[str, int, int, int, int, int, int]


def _align(n: int) -> int:
    return (n + 7) & ~7


class SpscRing:
    """Single-producer / single-consumer descriptor ring over a buffer.

    ``head`` counts descriptors ever posted, ``tail`` descriptors ever
    claimed; both are monotonic, so ``head - tail`` is the depth and
    wrap-around is plain modulo arithmetic.  The counters alone are
    *accounting*, not publication: on weakly-ordered CPUs (aarch64) a
    consumer could observe an incremented ``head`` before the slot
    stores land.  Publication is therefore per-slot — the producer
    writes a slot's sequence word (``position + 1``) strictly after the
    slot contents, and the consumer admits a slot only when its
    sequence matches the position it is claiming.  A slot whose
    sequence lags is left unclaimed and retried on the next poll, so a
    torn or stale descriptor is never surfaced.  Payload bytes in the
    arena are guarded the same way by the descriptor's CRC-32 (see
    :meth:`ShardSegment.receive`).
    """

    def __init__(self, buf, slots: int, offset: int = 0):
        if slots < 2:
            raise ValueError("ring needs at least 2 slots")
        self._buf = buf
        self._slots = slots
        self._off = offset
        self._slot0 = offset + RING_HEADER

    @staticmethod
    def region_size(slots: int) -> int:
        """Bytes a ring with ``slots`` slots occupies in its buffer."""
        return RING_HEADER + slots * SLOT_SIZE

    # -- counters (each has exactly one writing process) ----------------------

    @property
    def head(self) -> int:
        return _U64.unpack_from(self._buf, self._off)[0]

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self._buf, self._off + 8)[0]

    def _set_head(self, value: int) -> None:
        _U64.pack_into(self._buf, self._off, value)

    def _set_tail(self, value: int) -> None:
        _U64.pack_into(self._buf, self._off + 8, value)

    def __len__(self) -> int:
        return self.head - self.tail

    def free_slots(self) -> int:
        """Slots the producer may still fill before the ring is full."""
        return self._slots - (self.head - self.tail)

    # -- producer side ---------------------------------------------------------

    def post(self, desc: Descriptor, crc: int = 0) -> bool:
        """Publish one descriptor; False when the ring is full."""
        head = self.head
        if head - self.tail >= self._slots:
            return False
        self._write_slot(head, desc, crc)
        self._set_head(head + 1)
        return True

    def post_batch(self, descs) -> int:
        """Publish descriptors until the ring fills; one head store total."""
        head = self.head
        room = self._slots - (head - self.tail)
        posted = 0
        for desc in descs:
            if posted >= room:
                break
            self._write_slot(head + posted, desc)
            posted += 1
        if posted:
            self._set_head(head + posted)
        return posted

    def _write_slot(self, position: int, desc: Descriptor, crc: int = 0) -> None:
        msg_id, kind, flags, a, b, off, length = desc
        raw = msg_id.encode("utf-8")
        if len(raw) > ID_BYTES:
            raise ValueError(f"descriptor id {msg_id!r} exceeds {ID_BYTES} bytes")
        base = self._slot0 + (position % self._slots) * SLOT_SIZE
        _SLOT_DATA.pack_into(self._buf, base + 8, raw, kind, flags, a, b,
                             off, length, crc)
        # publication marker — written strictly after the slot contents;
        # the consumer gates on it, never on ``head`` alone
        _U64.pack_into(self._buf, base, position + 1)

    # -- consumer side ---------------------------------------------------------

    def peek_batch(self, max_n: int) -> list[tuple[Descriptor, int]]:
        """Read up to ``max_n`` published ``(descriptor, crc)`` pairs in FIFO
        order *without* consuming them; stops at the first slot whose
        sequence word has not yet become visible."""
        tail = self.tail
        n = min(max_n, self.head - tail)
        out: list[tuple[Descriptor, int]] = []
        for i in range(n):
            position = tail + i
            base = self._slot0 + (position % self._slots) * SLOT_SIZE
            if _U64.unpack_from(self._buf, base)[0] != position + 1:
                break  # head landed before the slot stores: not published yet
            raw, kind, flags, a, b, off, length, crc = _SLOT_DATA.unpack_from(
                self._buf, base + 8)
            out.append((
                (raw.rstrip(b"\x00").decode("utf-8"), kind, flags, a, b,
                 off, length),
                crc,
            ))
        return out

    def advance(self, n: int) -> None:
        """Consume the first ``n`` peeked descriptors (frees their slots)."""
        if n:
            self._set_tail(self.tail + n)

    def claim_batch(self, max_n: int) -> list[Descriptor]:
        """Claim up to ``max_n`` descriptors in FIFO order (may be empty)."""
        out = [desc for desc, _crc in self.peek_batch(max_n)]
        self.advance(len(out))
        return out


class ByteArena:
    """Circular byte allocator with FIFO reclaim, over any buffer.

    ``alloc`` bump-allocates a contiguous block (skipping the wrap gap
    when the block would straddle the end), returning an *absolute*
    monotonic offset; the consumer reads via the same offset and frees by
    advancing ``tail`` past it.  Because payloads are consumed in
    descriptor order, reclaim needs no free list — one counter suffices.
    """

    def __init__(self, buf, capacity: int, offset: int = 0):
        if capacity < 64:
            raise ValueError("arena capacity too small")
        self._buf = buf
        self._cap = capacity
        self._off = offset
        self._data0 = offset + ARENA_HEADER

    @staticmethod
    def region_size(capacity: int) -> int:
        return ARENA_HEADER + capacity

    @property
    def capacity(self) -> int:
        return self._cap

    @property
    def head(self) -> int:
        return _U64.unpack_from(self._buf, self._off)[0]

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self._buf, self._off + 8)[0]

    def used(self) -> int:
        """Bytes currently allocated (including any skipped wrap gap)."""
        return self.head - self.tail

    def alloc(self, payload: bytes) -> int | None:
        """Copy ``payload`` in; returns its absolute offset, None if full.

        A payload larger than the arena can never fit — callers must
        check :attr:`capacity` for that case rather than retrying.
        """
        size = _align(len(payload))
        head = self.head
        tail = self.tail
        pos = head % self._cap
        if pos + size > self._cap:
            head += self._cap - pos  # skip the wrap gap; freed with the block
            pos = 0
        if head + size - tail > self._cap:
            return None
        self._buf[self._data0 + pos:self._data0 + pos + len(payload)] = payload
        _U64.pack_into(self._buf, self._off, head + size)
        return head

    def read(self, offset: int, length: int) -> bytes:
        """Copy a payload out by its descriptor's (offset, length)."""
        pos = offset % self._cap
        return bytes(self._buf[self._data0 + pos:self._data0 + pos + length])

    def release_to(self, offset: int, length: int) -> None:
        """Free everything up to and including the block at ``offset``."""
        end = offset + _align(length)
        if end > self.tail:
            _U64.pack_into(self._buf, self._off + 8, end)


class Doorbell:
    """A self-pipe wakeup: byte-in-pipe means "look at the ring".

    The writer side is non-blocking — a full pipe already carries the
    signal, so the extra byte is simply dropped.
    """

    def __init__(self):
        self.read_fd, self.write_fd = os.pipe()
        os.set_blocking(self.write_fd, False)
        os.set_blocking(self.read_fd, False)

    def ring(self) -> None:
        """Wake the other side; never blocks, a full pipe already signals."""
        try:
            os.write(self.write_fd, b"\x00")
        except (BlockingIOError, OSError):
            pass

    def drain(self) -> None:
        """Swallow every pending wakeup byte before re-polling the ring."""
        try:
            while os.read(self.read_fd, 4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def close(self) -> None:
        """Close both pipe ends, tolerating an already-closed fd."""
        for fd in (self.read_fd, self.write_fd):
            try:
                os.close(fd)
            except OSError:
                pass


#: segments the owning process must unlink before exit; the atexit hook
#: below is the backstop for paths that skip ProcessScheduler.stop()
_LIVE_SEGMENTS: dict[int, "ShardSegment"] = {}
_SEGMENTS_LOCK = threading.Lock()


def _atexit_unlink_segments() -> None:  # pragma: no cover - exit path
    with _SEGMENTS_LOCK:
        segments = list(_LIVE_SEGMENTS.values())
    for segment in segments:
        segment.destroy()


atexit.register(_atexit_unlink_segments)


def sweep_stale_segments(prefix: str = "mgps_") -> int:
    """Unlink ``/dev/shm`` segments whose creating process is dead.

    A ``SIGKILL`` of a whole gateway skips every ``atexit`` hook, so its
    shard segments outlive it.  Segment names embed the creator's pid
    (``mgps_<pid>_<serial>``); the next process-plane boot sweeps any
    whose owner no longer exists.  Best-effort: unreadable directories,
    foreign names, and permission errors are skipped silently.
    """
    count = 0
    try:
        names = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-tmpfs platforms
        return 0
    for name in names:
        if not name.startswith(prefix):
            continue
        try:
            pid = int(name.split("_")[1])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue  # the owner is alive: not ours to reap
        except ProcessLookupError:
            pass
        except PermissionError:  # pragma: no cover - alive, other user
            continue
        try:
            os.unlink(os.path.join("/dev/shm", name))
            count += 1
        except OSError:  # pragma: no cover - concurrent sweep
            pass
    return count


class ShardSegment:
    """One shared-memory block holding a descriptor ring plus its arena.

    Created (and eventually unlinked) by the parent; shard children
    inherit the mapping across ``fork`` and only ever ``close`` it.  The
    module-level registry plus the ``atexit`` hook guarantee the segment
    is unlinked even when ``stop()`` never runs — the satellite contract
    that repeated test runs cannot leak ``/dev/shm`` entries.
    """

    def __init__(self, name: str, *, slots: int = 256, arena_bytes: int = 1 << 22):
        total = SpscRing.region_size(slots) + ByteArena.region_size(arena_bytes)
        self.shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        self.name = self.shm.name
        buf = self.shm.buf
        buf[:RING_HEADER] = b"\x00" * RING_HEADER
        ring_end = SpscRing.region_size(slots)
        buf[ring_end:ring_end + ARENA_HEADER] = b"\x00" * ARENA_HEADER
        self.ring = SpscRing(buf, slots, offset=0)
        self.arena = ByteArena(buf, arena_bytes, offset=ring_end)
        self._owner_pid = os.getpid()
        self._destroyed = False
        with _SEGMENTS_LOCK:
            _LIVE_SEGMENTS[id(self)] = self

    # -- combined ring + arena traffic ----------------------------------------

    def send(self, msg_id: str, kind: int, flags: int, a: int, b: int,
             payload: bytes = b"") -> bool:
        """Post one descriptor (allocating its payload); False when full."""
        if self.ring.free_slots() == 0:
            return False
        off = 0
        crc = 0
        if payload:
            got = self.arena.alloc(payload)
            if got is None:
                return False
            off = got
            crc = zlib.crc32(payload)
        return self.ring.post((msg_id, kind, flags, a, b, off, len(payload)), crc)

    def receive(self, max_n: int = 64) -> list[tuple[str, int, int, int, int, bytes]]:
        """Claim descriptors, copying payloads out and freeing their arena.

        A payload whose CRC does not match its descriptor is a slot
        whose arena stores have not yet become visible to this process
        (weak memory ordering); the batch stops *before* it without
        consuming, so the retry on the next poll re-reads settled bytes.
        """
        out = []
        consumed = 0
        for (msg_id, kind, flags, a, b, off, length), crc in \
                self.ring.peek_batch(max_n):
            payload = b""
            if length:
                payload = self.arena.read(off, length)
                if zlib.crc32(payload) != crc:
                    break
                self.arena.release_to(off, length)
            consumed += 1
            out.append((msg_id, kind, flags, a, b, payload))
        self.ring.advance(consumed)
        return out

    def fits(self, payload_len: int) -> bool:
        """Whether a payload of this size can *ever* fit the arena."""
        return _align(payload_len) <= self.arena.capacity

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (children call this; never unlink)."""
        with _SEGMENTS_LOCK:
            _LIVE_SEGMENTS.pop(id(self), None)
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass

    def destroy(self) -> None:
        """Close and unlink — only in the process that created the segment."""
        if self._destroyed:
            return
        self._destroyed = True
        with _SEGMENTS_LOCK:
            _LIVE_SEGMENTS.pop(id(self), None)
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass
        if os.getpid() == self._owner_pid:
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):
                pass
