"""RuntimeStream — a deployed stream application (section 6.3).

Built by the Coordination Manager from a compiled configuration table, a
RuntimeStream owns:

* one executable :class:`~repro.runtime.streamlet.Streamlet` per instance
  (drawn from the Streamlet Manager, pooled when stateless),
* one :class:`~repro.runtime.channel.Channel` per link, plus ingress/
  egress channels on the exposed ports,
* the **composition primitives** of Figure 6-4 — ``connect``,
  ``disconnect``, ``insert``, ``remove``, ``replace`` — used both by the
  initial deployment and by ``on_event`` reconfiguration handlers,
* the Equation 7-1 reconfiguration timing:
  ``T = Σ suspend + n·channel-ops + Σ activate``.

Message loss avoidance (section 6.6): the Figure 6-8 prerequisites are
checked before a streamlet is detached — it must be paused, its input
channels drained, and no message mid-flight — unless the caller forces.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import (
    CompositionError,
    ReconfigAbortedError,
    ReconfigurationError,
    ReconfigValidationError,
)
from repro.events import ContextEvent
from repro.mcl import astnodes as ast
from repro.mcl.compiler import DEFAULT_CHANNEL_DEF
from repro.mcl.config import ConfigurationTable
from repro.mcl.typecheck import check_connection
from repro.mime.message import MimeMessage
from repro.mime.registry import TypeRegistry, default_registry
from repro.runtime.channel import Channel
from repro.runtime.message_pool import MessagePool, PassMode
from repro.runtime.streamlet import Streamlet, StreamletContext, StreamletState
from repro.runtime.streamlet_manager import StreamletManager
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.util.clock import Clock, WallClock

_INGRESS = "__ingress__"
_EGRESS = "__egress__"

#: ingress/egress carriers: effectively unbounded so the harness never drops
_EDGE_CHANNEL_DEF = ast.ChannelDef(
    name="__edge",
    in_port=ast.PortDecl(ast.PortDirection.IN, "cin", DEFAULT_CHANNEL_DEF.in_port.mediatype),
    out_port=ast.PortDecl(ast.PortDirection.OUT, "cout", DEFAULT_CHANNEL_DEF.out_port.mediatype),
    sync=ast.ChannelSync.ASYNC,
    category=ast.ChannelCategory.BK,
    buffer_kb=1 << 20,
    description="runtime edge channel",
)


@dataclass
class _Node:
    """One deployed streamlet instance plus its port wiring."""

    streamlet: Streamlet
    definition: ast.StreamletDef
    ctx: StreamletContext
    inputs: dict[str, Channel] = field(default_factory=dict)
    outputs: dict[str, Channel] = field(default_factory=dict)
    #: hop-latency histogram pre-bound at creation (None when telemetry off)
    hop_hist: object | None = None
    #: queue-wait histogram pre-bound at creation (None when telemetry off)
    queue_wait_hist: object | None = None


@dataclass
class ReconfigTiming:
    """The Equation 7-1 terms, in seconds."""

    suspend: float = 0.0
    channel_ops: float = 0.0
    activate: float = 0.0
    actions: int = 0

    @property
    def total(self) -> float:
        return self.suspend + self.channel_ops + self.activate

    def merge(self, other: "ReconfigTiming") -> None:
        """Accumulate another timing into this one."""
        self.suspend += other.suspend
        self.channel_ops += other.channel_ops
        self.activate += other.activate
        self.actions += other.actions


@dataclass
class StreamStats:
    messages_in: int = 0
    messages_out: int = 0
    processed: int = 0
    queue_drops: int = 0
    open_circuit_drops: int = 0
    processing_failures: int = 0
    events_handled: int = 0
    #: messages a streamlet consumed without emitting (cache hit, filter)
    absorbed: int = 0
    #: failed messages released because no fault handler retained them
    failure_drops: int = 0
    #: pool entries drained from channels when the stream ended
    end_drops: int = 0
    #: failed messages re-posted by a recovery supervisor
    retries: int = 0
    #: messages parked in a dead-letter pool after exhausting recovery
    dead_letters: int = 0

    def __post_init__(self) -> None:
        # not a dataclass field: excluded from fields()/repr/JSON export
        self._lock = threading.Lock()

    def inc(self, name: str, n: int = 1) -> None:
        """Atomically bump one counter.

        Scheduler workers read the topology lock-free, so counters shared
        across instances (processed, drops, ...) can no longer rely on the
        topology lock serialising their ``+=``; a bare read-modify-write
        loses increments under thread preemption.
        """
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def inc_many(self, counts: dict[str, int]) -> None:
        """Atomically apply a batch of counter bumps under one lock.

        The schedulers' batched steps accumulate their per-message bumps
        in a plain dict and flush here once per dispatch, amortising the
        lock from per-message to per-batch.
        """
        with self._lock:
            for name, n in counts.items():
                setattr(self, name, getattr(self, name) + n)


class _ReadGate:
    """Tracks threads mid-step on a published topology snapshot (RCU read side).

    ``enter``/``exit`` are plain dict stores/deletes keyed by thread ident —
    each a single bytecode-atomic operation under the GIL, so the reader
    hot path takes no lock.  Writers are rare (reconfiguration): they
    retire the snapshot pointer first, then :meth:`wait_idle` sleep-polls
    until every *other* thread has left the gate.

    The one protocol rule that prevents deadlock: a registered reader must
    never block on the topology lock.  A worker that needs to mutate the
    stream mid-step (e.g. a supervisor bypassing a failing streamlet from
    inside the fault handler) leaves the gate first
    (:meth:`leave_current`), takes the write side, and re-registers while
    still holding the lock — so no writer can slip a mutation into the
    remainder of its step.
    """

    __slots__ = ("_readers",)

    def __init__(self) -> None:
        self._readers: dict[int, int] = {}  # thread ident -> reentrancy depth

    def enter(self) -> None:
        ident = threading.get_ident()
        readers = self._readers
        readers[ident] = readers.get(ident, 0) + 1

    def exit(self) -> None:
        ident = threading.get_ident()
        readers = self._readers
        depth = readers.get(ident)
        if depth is None:
            return  # tolerate an exit after leave_current
        if depth <= 1:
            del readers[ident]
        else:
            readers[ident] = depth - 1

    def leave_current(self) -> int:
        """Deregister the calling thread entirely; returns its prior depth."""
        return self._readers.pop(threading.get_ident(), 0) or 0

    def restore(self, depth: int) -> None:
        """Re-register the calling thread at ``depth`` (after a write)."""
        if depth:
            self._readers[threading.get_ident()] = depth

    def wait_idle(self) -> None:
        """Block until no *other* thread is registered in the gate.

        Readers never block while registered, so this converges as fast as
        the slowest in-flight step; the 0.2 ms poll bounds writer latency
        without putting any synchronisation on the reader path.
        """
        ident = threading.get_ident()
        readers = self._readers
        while any(other != ident for other in tuple(readers)):
            time.sleep(0.0002)


class _NodeView:
    """One node's frozen wiring as published in a :class:`TopologySnapshot`.

    References the *live* ``Streamlet``/``Channel``/context objects (so
    fault-injection wrappers that shadow ``process``/``fetch`` as instance
    attributes keep intercepting), but the port tables are immutable
    copies: workers iterate them without taking the topology lock and
    without the per-step ``list(dict.items())`` allocation.
    """

    #: class attribute, not a slot: scheduler dispatch probes this on every
    #: step, and only :class:`_FusedView` overrides it
    fused = False

    __slots__ = (
        "name", "streamlet", "ctx", "inputs", "outputs", "consumers",
        "hop_hist", "queue_wait_hist",
    )

    def __init__(self, name: str, node: "_Node", consumers: tuple[str, ...]):
        self.name = name
        self.streamlet = node.streamlet
        self.ctx = node.ctx
        self.inputs: tuple[tuple[str, Channel], ...] = tuple(node.inputs.items())
        self.outputs: dict[str, Channel] = dict(node.outputs)
        #: downstream instance names (for worklist seeding)
        self.consumers = consumers
        self.hop_hist = node.hop_hist
        self.queue_wait_hist = node.queue_wait_hist


class _FusedView:
    """A fused chain of synchronously-coupled members, stepped as one node.

    Published in the snapshot under the *head* member's name; the other
    members get parked :class:`_NodeView`s (no inputs, no consumers) so
    their scheduler workers stay alive idling and re-acquire real wiring
    if a reconfiguration splits the chain.  ``inputs`` is the head's
    external inputs plus the interior (elided) channels — so worklist
    seeding and worker wakeup registration notice residual units parked
    mid-chain — but the fused step claims new traffic only at the head.
    Fusion lives entirely at the snapshot level: the structural graph
    (``_Node`` wiring, channel instances) is untouched, which is what
    lets every composition primitive split a fused region for free and
    the next snapshot rebuild re-fuse whatever is still legal.
    """

    fused = True

    __slots__ = (
        "name", "members", "interior", "streamlet", "ctx", "inputs",
        "outputs", "consumers", "hop_hist", "queue_wait_hist",
    )

    def __init__(self, members: tuple[_NodeView, ...], interior: tuple[Channel, ...]):
        head, tail = members[0], members[-1]
        self.name = head.name
        self.members = members
        #: the elided channels, in hop order (len(members) - 1 of them)
        self.interior = interior
        self.streamlet = head.streamlet
        self.ctx = head.ctx
        self.inputs: tuple[tuple[str, Channel], ...] = head.inputs + tuple(
            (f"__fused{i}", channel) for i, channel in enumerate(interior)
        )
        self.outputs: dict[str, Channel] = tail.outputs
        self.consumers = tail.consumers
        self.hop_hist = head.hop_hist
        self.queue_wait_hist = head.queue_wait_hist


class TopologySnapshot:
    """An immutable, versioned view of a stream's wiring (RCU published).

    Workers read the current snapshot lock-free; reconfiguration retires
    it under the write lock, mutates, and the next reader rebuilds.  The
    version is monotonically increasing across rebuilds.
    """

    __slots__ = ("version", "epoch", "order", "nodes", "input_queues")

    def __init__(self, version: int, epoch: int, order: tuple[str, ...],
                 nodes: dict[str, _NodeView], input_queues: tuple):
        self.version = version
        self.epoch = epoch
        self.order = order
        self.nodes = nodes
        #: every distinct input queue (for quiescence checks)
        self.input_queues = input_queues


class RuntimeStream:
    """A live composition of streamlets connected by channels."""

    def __init__(
        self,
        table: ConfigurationTable,
        manager: StreamletManager,
        *,
        pool: MessagePool | None = None,
        registry: TypeRegistry | None = None,
        clock: Clock | None = None,
        session: str | None = None,
        drop_timeout: float = 0.0,
        telemetry: Telemetry | None = None,
        fuse: bool = True,
    ):
        self.table = table
        self.name = table.stream_name
        self._manager = manager
        self.pool = pool if pool is not None else MessagePool(PassMode.REFERENCE)
        self._registry = registry if registry is not None else default_registry()
        self._clock = clock if clock is not None else WallClock()
        self.session = session
        self._drop_timeout = drop_timeout
        self.stats = StreamStats()
        #: per-stream telemetry hooks; the schedulers and channels key off
        #: ``tm.enabled`` so the null twin costs one attribute read
        self.tm = (telemetry if telemetry is not None else NULL_TELEMETRY).bind_stream(
            table.stream_name
        )
        self.tm.attach_stats(self.stats)
        #: egress pickup-delay histogram (None when telemetry is off)
        self._egress_wait_hist = self.tm.egress_wait_histogram()
        self.topology_lock = threading.RLock()

        self._nodes: dict[str, _Node] = {}
        self._channels: dict[str, Channel] = {}
        self._auto_counter = 0
        self._started = False
        self._ended = False
        self._order_dirty = True
        self._order: list[str] = []
        #: the RCU-published topology view; None while retired (a writer is
        #: active or a mutation happened since the last publication).  Read
        #: and written as a single attribute reference — atomic under the
        #: GIL (see docs/performance.md for the memory-ordering argument)
        self._snapshot: TopologySnapshot | None = None
        self._snapshot_version = 0
        #: collapse synchronous chains into fused nodes at snapshot build
        #: time (the repro.mcl.optimize execution model); off = one node
        #: per instance, the pre-optimizer behaviour
        self._fuse = fuse
        #: the chains the last snapshot fused, for change detection
        self._fusion_sig: tuple[tuple[str, ...], ...] = ()
        self._read_gate = _ReadGate()
        self._write_depth = 0
        #: callbacks fired after a write section closes (and on resume):
        #: schedulers register here so sleeping workers re-examine the world
        self._wakeup_listeners: list = []
        #: callbacks fired when the outermost write section *opens* (after
        #: the snapshot retires, before the grace period): engines whose
        #: in-flight work lives outside the read gate — the process
        #: scheduler's shard workers — block here until that work drains,
        #: so a mutation (and the undo log a transaction captures) never
        #: races a message being executed in a child process
        self._quiesce_listeners: list = []

        self.ingress: dict[str, Channel] = {}   # "inst.port" -> channel
        self.egress: list[tuple[ast.PortRef, Channel]] = []
        self.last_reconfig: ReconfigTiming | None = None
        #: the composition version: 0 until the first committed transaction,
        #: bumped by every commit *and* every probation rollback (a rollback
        #: is itself a transition).  Rides in-band on ``Content-Session`` so
        #: the MobiGATE client swaps peers at the right message boundary.
        self.epoch = 0
        #: the ReconfigTransaction currently in its apply phase, if any;
        #: primitives consult it to defer irreversible effects (message
        #: drops, instance finalisation) until the commit is decided
        self._txn = None
        #: called as (event_name, exception) when an event-handler batch is
        #: rejected by validation or rolled back mid-apply; the Coordination
        #: Manager wires this to the Event Manager so the failure surfaces
        #: as a RECONFIG_* context event instead of unwinding the monitor
        self.escalation_hook = None
        #: called as (txn) after a successful commit; a ProbationMonitor
        #: sets this to adopt the undo log as the last-known-good record.
        #: When unset, deferred removals are finalised at commit time.
        self.lkg_adopter = None
        #: called as (instance_id, exception) when a streamlet's process()
        #: raises; the Coordination Manager wires this to the Event Manager
        #: ("events may be caused ... by exceptions in streamlet executions")
        self.failure_hook = None
        #: called as (instance_id, port, msg_id, exception) before the failed
        #: message is released; returning True means the handler took
        #: ownership of the pool id (e.g. a repro.faults.Supervisor retaining
        #: it for retry) and the scheduler must not release it
        self.fault_handler = None
        #: called as (msg_id, message) after a dropped message leaves the
        #: pool — the per-channel drop signal a Supervisor subscribes to so
        #: drops become inspectable instead of silent releases
        self.drop_hook = None

        self._deploy()

    # -- deployment -------------------------------------------------------------------

    def _deploy(self) -> None:
        for name, definition in self.table.instances.items():
            self._create_node(name, definition)
        for name, entry in self.table.channels.items():
            self._channels[name] = Channel(
                name, entry.definition, drop_timeout=self._drop_timeout, telemetry=self.tm
            )
        for link in self.table.links:
            self._wire(link.source, link.sink, self._channels[link.channel])
        for index, ref in enumerate(self.table.exposed_in):
            channel = Channel(
                f"__in{index}", _EDGE_CHANNEL_DEF,
                drop_timeout=self._drop_timeout, telemetry=self.tm,
            )
            channel.attach_source(ast.PortRef(_INGRESS, f"i{index}"))
            channel.attach_sink(ref)
            self._nodes[ref.instance].inputs[ref.port] = channel
            self.ingress[str(ref)] = channel
        for index, ref in enumerate(self.table.exposed_out):
            channel = Channel(
                f"__out{index}", _EDGE_CHANNEL_DEF,
                drop_timeout=self._drop_timeout, telemetry=self.tm,
            )
            channel.attach_source(ref)
            channel.attach_sink(ast.PortRef(_EGRESS, f"o{index}"))
            self._nodes[ref.instance].outputs[ref.port] = channel
            self.egress.append((ref, channel))

    def _create_node(self, name: str, definition: ast.StreamletDef) -> _Node:
        streamlet = self._manager.acquire(name, definition)
        ctx = StreamletContext(instance_id=name, session=self.session)
        node = _Node(
            streamlet=streamlet,
            definition=definition,
            ctx=ctx,
            hop_hist=self.tm.hop_histogram(name),
            queue_wait_hist=self.tm.queue_wait_histogram(name),
        )
        self._nodes[name] = node
        self._invalidate_topology()
        return node

    def _wire(self, source: ast.PortRef, sink: ast.PortRef, channel: Channel) -> None:
        channel.attach_source(source)
        channel.attach_sink(sink)
        self._nodes[source.instance].outputs[source.port] = channel
        self._nodes[sink.instance].inputs[sink.port] = channel
        self._invalidate_topology()

    # -- RCU topology snapshots (see docs/performance.md) ------------------------------

    def _invalidate_topology(self) -> None:
        """Mark the wiring changed: retire the snapshot, dirty the order."""
        self._order_dirty = True
        self._snapshot = None

    def _fusion_chains(self) -> list[tuple[str, ...]]:
        """Maximal fusable chains of the *live* wiring (caller holds the lock).

        The same legality as :func:`repro.semantics.fusion.fusable_chains`,
        read off the runtime graph instead of the compiled table: an edge
        fuses when its channel is synchronous, the producer's only output
        feeds it, the consumer's only input is it, neither endpoint is an
        optional (extractable) member, no feedback loop closes through it,
        and no mutual exclusion holds inside the resulting chain.
        """
        from repro.semantics import fusion

        if not self._fuse or len(self._nodes) < 2:
            return []
        barred = fusion.optional_instances(self.table.handlers)
        successors: dict[str, str] = {}
        for name, node in self._nodes.items():
            if name in barred or len(node.outputs) != 1:
                continue
            channel = next(iter(node.outputs.values()))
            if not fusion.is_synchronous(channel.definition):
                continue
            sink = channel.sink
            if sink is None or sink.instance not in self._nodes or sink.instance in barred:
                continue
            if len(self._nodes[sink.instance].inputs) != 1:
                continue
            successors[name] = sink.instance
        if not successors:
            return []
        definitions = {name: node.definition for name, node in self._nodes.items()}
        chains: list[tuple[str, ...]] = []
        for chain in fusion.chain_edges(successors, self._nodes):
            accepted: list[str] = []
            for member in chain:
                if accepted and fusion.exclusion_conflict(definitions, accepted, member):
                    if len(accepted) >= 2:
                        chains.append(tuple(accepted))
                    accepted = []
                accepted.append(member)
            if len(accepted) >= 2:
                chains.append(tuple(accepted))
        return chains

    def _build_snapshot(self) -> TopologySnapshot:
        # caller holds the topology lock
        order = tuple(self.processing_order())
        views: dict[str, _NodeView] = {}
        queues: dict[int, object] = {}
        for name, node in self._nodes.items():
            consumers: dict[str, None] = {}
            for channel in node.outputs.values():
                sink = channel.sink
                if sink is not None and sink.instance in self._nodes:
                    consumers[sink.instance] = None
            views[name] = _NodeView(name, node, tuple(consumers))
            for channel in node.inputs.values():
                queues[id(channel.queue)] = channel.queue
        chains = tuple(self._fusion_chains())
        for chain in chains:
            member_views = tuple(views[m] for m in chain)
            interior = tuple(
                next(iter(self._nodes[m].outputs.values())) for m in chain[:-1]
            )
            views[chain[0]] = _FusedView(member_views, interior)
            for m in chain[1:]:
                # parked: the member's worker idles (no inputs to claim, no
                # waiters to register) until a split hands its wiring back
                parked = _NodeView(m, self._nodes[m], ())
                parked.inputs = ()
                views[m] = parked
        if chains != self._fusion_sig:
            # fuse/split transitions are reconfiguration-relevant history:
            # make them visible in the flight recorder
            if self.tm.enabled:
                self.tm.recorder.record(
                    "fusion", stream=self.name,
                    groups=["+".join(c) for c in chains],
                )
            self._fusion_sig = chains
        self._snapshot_version += 1
        return TopologySnapshot(
            self._snapshot_version, self.epoch, order, views, tuple(queues.values())
        )

    def topology_snapshot(self) -> TopologySnapshot:
        """The current published view, rebuilding (under the lock) if retired.

        Mid-write callers (a primitive nested inside a transaction) get a
        fresh transient view that is *not* published — publication waits
        until the write section closes.
        """
        snap = self._snapshot
        if snap is not None:
            return snap
        with self.topology_lock:
            snap = self._snapshot
            if snap is None:
                snap = self._build_snapshot()
                if self._write_depth == 0:
                    self._snapshot = snap
        return snap

    @contextmanager
    def _write_access(self):
        """The write side of the RCU protocol.

        Retires the published snapshot, then waits for every in-flight
        reader step to finish (grace period) before yielding — so a
        mutation never races a worker mid-step, and the undo log a
        transaction captures inside this section is exact.  Reentrant:
        nested sections (a transaction applying primitives) only pay the
        grace period once.  A worker thread calling in from inside its own
        step leaves the read gate first (readers must not block on the
        topology lock) and re-registers before the lock is released.
        """
        gate = self._read_gate
        reader_depth = gate.leave_current()
        self.topology_lock.acquire()
        try:
            self._write_depth += 1
            if self._write_depth == 1:
                self._snapshot = None
                # cross-process quiescence: with the snapshot retired no
                # dispatcher hands out new work, and each listener waits
                # for its already-dispatched messages to return — they
                # never touch the topology lock, so this cannot deadlock
                for callback in tuple(self._quiesce_listeners):
                    callback()
                gate.wait_idle()
            try:
                yield
            finally:
                self._write_depth -= 1
                self._snapshot = None
        finally:
            outermost = self._write_depth == 0
            if reader_depth:
                # re-register while still holding the lock: the next writer
                # will wait for the remainder of this worker's step
                gate.restore(reader_depth)
            self.topology_lock.release()
            if outermost:
                self._notify_wakeup()

    def add_wakeup_listener(self, callback) -> None:
        """Register a callback fired after writes/resumes (scheduler wakeups)."""
        if callback not in self._wakeup_listeners:
            self._wakeup_listeners.append(callback)

    def remove_wakeup_listener(self, callback) -> None:
        """Deregister a wakeup callback (idempotent)."""
        try:
            self._wakeup_listeners.remove(callback)
        except ValueError:
            pass

    def add_quiesce_listener(self, callback) -> None:
        """Register a callback fired when the outermost write section opens.

        Called with the topology lock held and the snapshot retired; the
        callback must drain its engine's in-flight work without taking
        the topology lock (see :meth:`_write_access`).
        """
        if callback not in self._quiesce_listeners:
            self._quiesce_listeners.append(callback)

    def remove_quiesce_listener(self, callback) -> None:
        """Deregister a quiesce callback (idempotent)."""
        try:
            self._quiesce_listeners.remove(callback)
        except ValueError:
            pass

    def _notify_wakeup(self) -> None:
        for callback in tuple(self._wakeup_listeners):
            callback()

    # -- lifecycle -------------------------------------------------------------------------

    def start(self) -> None:
        """Activate every streamlet and fire their on_start hooks."""
        if self._started:
            raise CompositionError(f"stream {self.name} already started")
        for node in self._nodes.values():
            node.streamlet.activate()
            node.streamlet.on_start(node.ctx)
        self._started = True

    def end(self) -> None:
        """End every streamlet, close channels, release instances (idempotent).

        Every channel — internal, ingress, *and* the egress carriers built
        by :meth:`_deploy` — is drained before it closes: ids still parked
        there are released from the pool and counted as ``end_drops``, so
        an ended stream holds no pool entries (the conservation invariant
        of :mod:`repro.faults`).
        """
        if self._ended:
            return
        with self._write_access():
            if self._ended:
                return
            for node in self._nodes.values():
                if node.streamlet.state is not StreamletState.ENDED:
                    node.streamlet.end()
                    node.streamlet.on_end(node.ctx)
                self._manager.release(node.streamlet)
            undelivered: list[str] = []
            for channel in self._channels.values():
                undelivered += channel.queue.drain()
                channel.queue.close()
            for channel in self.ingress.values():
                undelivered += channel.queue.drain()
                channel.queue.close()
            for _ref, channel in self.egress:
                undelivered += channel.queue.drain()
                channel.queue.close()
            for msg_id in undelivered:
                if msg_id in self.pool:
                    self.pool.release(msg_id)
                    self.stats.end_drops += 1
                if self.tm.enabled:
                    self.tm.forget(msg_id)
            self._ended = True

    @property
    def started(self) -> bool:
        return self._started

    @property
    def ended(self) -> bool:
        return self._ended

    # -- node/channel accessors --------------------------------------------------------------

    def node(self, name: str) -> _Node:
        """The live node for ``name``; CompositionError if absent."""
        try:
            return self._nodes[name]
        except KeyError:
            raise CompositionError(f"no streamlet instance {name!r} in {self.name}") from None

    def channel(self, name: str) -> Channel:
        """The channel instance named ``name``; CompositionError if absent."""
        try:
            return self._channels[name]
        except KeyError:
            raise CompositionError(f"no channel instance {name!r} in {self.name}") from None

    def instance_names(self) -> list[str]:
        """Names of the live streamlet instances."""
        return list(self._nodes)

    def set_param(self, instance: str, key: str, value: object) -> None:
        """Set a streamlet operation parameter (the §8.2.1 control interface).

        "Each streamlet will have two methods to communicate with the
        external world: data ports ... and control interfaces to receive
        parameter setting information from the coordinator."  Parameters
        land in the instance's :class:`StreamletContext` and take effect
        on the next message.
        """
        self.node(instance).ctx.params[key] = value

    def get_param(self, instance: str, key: str, default: object = None) -> object:
        """Read a streamlet operation parameter (control interface)."""
        return self.node(instance).ctx.params.get(key, default)

    # -- runtime re-verification (chapter 5 "also during runtime") ---------------------

    def snapshot_table(self) -> ConfigurationTable:
        """A configuration table describing the *current* live wiring.

        Reconfigurations mutate the topology away from the compiled table;
        this snapshot lets the chapter-5 analyses re-run against reality.
        """
        from repro.mcl.config import ChannelEntry, Link

        channels: dict[str, ChannelEntry] = {}
        links: list[Link] = []
        exposed_in: list[ast.PortRef] = []
        exposed_out: list[ast.PortRef] = []
        with self.topology_lock:
            for name, node in self._nodes.items():
                for port, channel in node.outputs.items():
                    if channel.sink is None:
                        continue
                    if channel.sink.instance == _EGRESS:
                        exposed_out.append(ast.PortRef(name, port))
                        continue
                    channels[channel.name] = ChannelEntry(
                        name=channel.name, definition=channel.definition,
                        auto=channel.name.startswith("__"),
                    )
                    decl = node.definition.port(port)
                    links.append(Link(
                        source=ast.PortRef(name, port),
                        sink=channel.sink,
                        channel=channel.name,
                        mediatype=decl.mediatype if decl else None,  # type: ignore[arg-type]
                    ))
                for port, channel in node.inputs.items():
                    if channel.source is not None and channel.source.instance == _INGRESS:
                        exposed_in.append(ast.PortRef(name, port))
            return ConfigurationTable(
                stream_name=self.name,
                instances={name: node.definition for name, node in self._nodes.items()},
                channels=channels,
                links=links,
                handlers=dict(self.table.handlers),
                exposed_in=tuple(exposed_in),
                exposed_out=tuple(exposed_out),
                streamlet_defs=dict(self.table.streamlet_defs),
                channel_defs=dict(self.table.channel_defs),
            )

    def verify_topology(self, *, terminal_definitions=frozenset()) -> None:
        """Re-run the chapter-5 analyses on the live topology.

        Raises the matching :class:`~repro.errors.SemanticError` if a
        reconfiguration has driven the stream into an inconsistent shape
        (feedback loop, open circuit, relation violations).
        """
        from repro.semantics import verify as _verify

        _verify(self.snapshot_table(), terminal_definitions=terminal_definitions)

    def channel_names(self) -> list[str]:
        """Names of the live channel instances."""
        return list(self._channels)

    @property
    def snapshot_version(self) -> int:
        """The RCU topology snapshot version (bumped on every rebuild)."""
        return self._snapshot_version

    def fusion_groups(self) -> tuple[tuple[str, ...], ...]:
        """The chains the current snapshot runs fused, head first.

        Empty when fusion is disabled or no chain qualifies.  Because
        fusion is recomputed on every snapshot rebuild, this reflects any
        committed reconfiguration: splicing into a fused region splits it
        here immediately, and re-fusing shows up as soon as the spliced
        shape is legal again.
        """
        snap = self.topology_snapshot()
        groups: list[tuple[str, ...]] = []
        for name in snap.order:
            view = snap.nodes.get(name)
            if view is not None and view.fused and view.name == name:
                groups.append(tuple(m.name for m in view.members))
        return tuple(groups)

    def queue_introspect(self) -> list[dict]:
        """Depth/watermark/counters for every live channel queue.

        Covers internal channels plus the ingress/egress edge carriers
        (deduplicated by queue identity), so the control plane's
        ``introspect`` verb sees the whole buffering picture.
        """
        rows: list[dict] = []
        with self.topology_lock:
            named: list[tuple[str, Channel]] = list(self._channels.items())
            named += [(f"ingress:{key}", ch) for key, ch in self.ingress.items()]
            named += [(f"egress:{ref}", ch) for ref, ch in self.egress]
            seen: set[int] = set()
            for name, channel in named:
                queue = channel.queue
                if id(queue) in seen:
                    continue
                seen.add(id(queue))
                rows.append({
                    "channel": name,
                    "depth": len(queue),
                    "watermark": queue.watermark,
                    "capacity_bytes": queue.capacity_bytes,
                    "pending_bytes": queue.pending_bytes,
                    "posted": queue.posted,
                    "fetched": queue.fetched,
                    "dropped": queue.dropped,
                    "closed": queue.closed,
                })
        return rows

    def processing_order(self) -> list[str]:
        """Topological-ish order for the inline scheduler (cached)."""
        if not self._order_dirty:
            return self._order
        # Kahn over the current wiring; cycles fall back to insertion order
        succ: dict[str, set[str]] = {name: set() for name in self._nodes}
        indeg: dict[str, int] = dict.fromkeys(self._nodes, 0)
        for name, node in self._nodes.items():
            for channel in node.outputs.values():
                if channel.sink is not None and channel.sink.instance in self._nodes:
                    if channel.sink.instance not in succ[name]:
                        succ[name].add(channel.sink.instance)
                        indeg[channel.sink.instance] += 1
        ready = [n for n in self._nodes if indeg[n] == 0]
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for nxt in succ[name]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._nodes):  # cyclic wiring: stable fallback
            order = list(self._nodes)
        self._order = order
        self._order_dirty = False
        return order

    # -- ingress / egress ----------------------------------------------------------------------

    def post(self, message: MimeMessage, port: ast.PortRef | str | int = 0) -> str:
        """Admit a message and enqueue it on an exposed input port."""
        if isinstance(port, int):
            try:
                ref = self.table.exposed_in[port]
            except IndexError:
                raise CompositionError(
                    f"stream {self.name} has {len(self.table.exposed_in)} ingress "
                    f"port(s); index {port} is out of range"
                ) from None
            key = str(ref)
        elif isinstance(port, ast.PortRef):
            key = str(port)
        else:
            key = port
        try:
            channel = self.ingress[key]
        except KeyError:
            raise CompositionError(f"no ingress port {key!r} on stream {self.name}") from None
        if self.session is not None and message.session is None:
            message.headers.session = self.session
        if self.epoch:
            # stamp the composition version the message is admitted under;
            # pre-reconfiguration streams (epoch 0) keep the legacy wire form
            message.headers.set_epoch(self.epoch)
        traced = self.tm.enabled and self.tm.admit(message)  # sampled trace
        msg_id = self.pool.admit(message)
        if traced:
            self.tm.mark_traced(msg_id)  # before post: channels probe this
        if channel.post(msg_id, message.total_size()):
            self.stats.inc("messages_in")
        else:
            # mirror _release_dropped: the traced-id / enqueued maps must
            # shed the id too, or sustained ingress pressure leaks them
            self._release_dropped([msg_id])
        return msg_id

    def shed(self, message: MimeMessage) -> str:
        """Admit-and-drop: book a refused message into the ledger as a drop.

        The gateway's backpressure path needs a way to reject a message
        *after* it arrived (its park budget expired) without unbalancing
        the conservation invariant: the id is admitted to the pool (so
        ``admitted`` counts it) and immediately released through the
        normal drop path (so it lands in ``queue_drops``, fires the
        ``drop_hook``, and leaves no residue).  Returns the short-lived
        pool id.
        """
        if self.session is not None and message.session is None:
            message.headers.session = self.session
        msg_id = self.pool.admit(message)
        if self.tm.enabled:
            self.tm.recorder.record("shed", stream=self.name, msg_id=msg_id)
        self._release_dropped([msg_id])
        return msg_id

    def collect(self) -> list[MimeMessage]:
        """Drain every egress channel; returns delivered messages in order."""
        out: list[MimeMessage] = []
        tm = self.tm if self.tm.enabled else None
        egress_hist = self._egress_wait_hist
        for _ref, channel in self.egress:
            while True:
                msg_id = channel.fetch(0.0)
                if msg_id is None:
                    break
                if egress_hist is not None:
                    # how long the finished message sat on the egress
                    # carrier before this drain picked it up
                    posted_at = channel.queue.last_post_at
                    if posted_at is not None:
                        egress_hist.observe(time.perf_counter() - posted_at)
                out.append(self.pool.release(msg_id))
                if tm is not None:
                    tm.forget(msg_id)
                self.stats.inc("messages_out")
        return out

    # -- composition primitives (Figure 6-4) ---------------------------------------------------------

    def new_streamlet(self, name: str, definition_name: str) -> None:
        """Instantiate a (dormant) streamlet from a known definition."""
        with self._write_access():
            if name in self._nodes or name in self._channels:
                raise CompositionError(f"instance name {name!r} already in use")
            definition = self.table.streamlet_defs.get(definition_name)
            if definition is None:
                raise CompositionError(f"unknown streamlet definition {definition_name!r}")
            node = self._create_node(name, definition)
            if self._started:
                node.streamlet.activate()
                node.streamlet.on_start(node.ctx)

    def new_channel(self, name: str, definition_name: str) -> None:
        """Instantiate a channel from a definition known to the table."""
        with self._write_access():
            if name in self._channels or name in self._nodes:
                raise CompositionError(f"instance name {name!r} already in use")
            definition = self.table.channel_defs.get(definition_name)
            if definition is None:
                raise CompositionError(f"unknown channel definition {definition_name!r}")
            self._channels[name] = Channel(
                name, definition, drop_timeout=self._drop_timeout, telemetry=self.tm
            )

    def _auto_channel(self) -> Channel:
        name = f"__rt_auto{self._auto_counter}"
        self._auto_counter += 1
        channel = Channel(
            name, DEFAULT_CHANNEL_DEF, drop_timeout=self._drop_timeout, telemetry=self.tm
        )
        self._channels[name] = channel
        return channel

    def connect(
        self,
        source: ast.PortRef | str,
        sink: ast.PortRef | str,
        channel_name: str | None = None,
    ) -> None:
        """Wire source → (channel) → sink, with 4.4.1 type checks."""
        with self._write_access():
            source = _as_ref(source)
            sink = _as_ref(sink)
            src_node = self.node(source.instance)
            dst_node = self.node(sink.instance)
            if channel_name is not None:
                channel = self.channel(channel_name)
                if channel.source is not None or channel.sink is not None:
                    raise CompositionError(
                        f"channel {channel_name!r} already carries a connection"
                    )
            else:
                channel = self._auto_channel()
            check_connection(
                self._registry,
                src_node.definition,
                source,
                dst_node.definition,
                sink,
                channel.definition,
            )
            if source.port in src_node.outputs:
                raise CompositionError(f"port {source} is already connected")
            if sink.port in dst_node.inputs:
                raise CompositionError(f"port {sink} is already connected")
            self._wire(source, sink, channel)

    def disconnect(self, source: ast.PortRef | str, sink: ast.PortRef | str) -> None:
        """Break one link; category semantics decide pending units' fate."""
        with self._write_access():
            source = _as_ref(source)
            sink = _as_ref(sink)
            src_node = self.node(source.instance)
            dst_node = self.node(sink.instance)
            channel = src_node.outputs.get(source.port)
            if channel is None or channel.sink != sink:
                raise CompositionError(f"no connection between {source} and {sink}")
            dropped = channel.detach_source()
            if channel.sink is not None:
                dropped += channel.detach_sink()
            self._release_dropped(dropped)
            del src_node.outputs[source.port]
            dst_node.inputs.pop(sink.port, None)
            self._forget_channel(channel)
            self._invalidate_topology()

    def disconnect_all(self, instance: str) -> None:
        """Break every non-edge link of an instance."""
        with self._write_access():
            node = self.node(instance)
            for port, channel in list(node.outputs.items()):
                if channel.sink is not None and channel.sink.instance != _EGRESS:
                    self.disconnect(ast.PortRef(instance, port), channel.sink)
            for port, channel in list(node.inputs.items()):
                if channel.source is not None and channel.source.instance != _INGRESS:
                    self.disconnect(channel.source, ast.PortRef(instance, port))

    def insert(
        self,
        source: ast.PortRef | str,
        sink: ast.PortRef | str,
        instance: str,
    ) -> ReconfigTiming:
        """Splice ``instance`` into the link source→sink (Figure 7-4).

        The inserted streamlet must have exactly one input and one output
        port.  The existing channel keeps feeding the sink (its pending
        units survive, as BK semantics promise); a fresh channel joins the
        source to the newcomer.
        """
        with self._write_access():
            source = _as_ref(source)
            sink = _as_ref(sink)
            timing = ReconfigTiming(actions=1)
            src_node = self.node(source.instance)
            dst_node = self.node(sink.instance)
            new_node = self.node(instance)
            ins = new_node.definition.inputs()
            outs = new_node.definition.outputs()
            if len(ins) != 1 or len(outs) != 1:
                raise ReconfigurationError(
                    f"insert target {instance} must have exactly one in and one out port"
                )
            channel = src_node.outputs.get(source.port)
            if channel is None or channel.sink != sink:
                raise ReconfigurationError(f"no connection between {source} and {sink}")

            # 1-2) suspend the producer and detach it from channel m
            t0 = self._clock.now()
            was_active = src_node.streamlet.is_active
            if was_active:
                src_node.streamlet.pause()
            timing.suspend += self._clock.now() - t0

            t0 = self._clock.now()
            dropped = channel.detach_source()
            if channel.sink is None:  # BB/KB semantics broke the sink side too
                channel.attach_sink(sink)
            self._release_dropped(dropped)
            del src_node.outputs[source.port]
            # 3) attach the newcomer's output to channel m
            new_out = ast.PortRef(instance, outs[0].name)
            check_connection(
                self._registry, new_node.definition, new_out,
                dst_node.definition, sink, channel.definition,
            )
            channel.attach_source(new_out)
            new_node.outputs[outs[0].name] = channel
            # 4) create channel n between the producer and the newcomer
            new_in = ast.PortRef(instance, ins[0].name)
            fresh = self._auto_channel()
            check_connection(
                self._registry, src_node.definition, source,
                new_node.definition, new_in, fresh.definition,
            )
            fresh.attach_source(source)
            fresh.attach_sink(new_in)
            src_node.outputs[source.port] = fresh
            new_node.inputs[ins[0].name] = fresh
            timing.channel_ops += self._clock.now() - t0

            # 5) make sure the newcomer runs, 6) resume the producer
            t0 = self._clock.now()
            if self._started:
                if new_node.streamlet.state is StreamletState.CREATED:
                    new_node.streamlet.activate()
                    new_node.streamlet.on_start(new_node.ctx)
                elif new_node.streamlet.state is StreamletState.PAUSED:
                    new_node.streamlet.activate()  # re-inserted after an extract
            if was_active:
                src_node.streamlet.activate()
            timing.activate += self._clock.now() - t0
            self._invalidate_topology()
            return timing

    def remove_streamlet(self, name: str, *, heal: bool = True, force: bool = False) -> None:
        """Remove an instance, honouring the Figure 6-8 prerequisites.

        With ``heal`` (default), a single-in/single-out streamlet's
        neighbours are re-joined through the upstream channel so the flow
        survives.  Without ``force``, pending input traffic aborts the
        removal (message loss avoidance, section 6.6).
        """
        with self._write_access():
            node = self.node(name)
            if not force:
                waiting = [
                    ch.name for ch in node.inputs.values() if not ch.queue.is_empty()
                ]
                if waiting:
                    raise ReconfigurationError(
                        f"cannot remove {name}: input channel(s) {waiting} still hold "
                        "messages (drain the stream first or pass force=True)"
                    )
            if not (heal and self._heal_around(node)):
                self.disconnect_all(name)
            # drop edge (ingress/egress) attachments, releasing stuck messages
            for channel in list(node.inputs.values()) + list(node.outputs.values()):
                self._release_dropped(channel.queue.drain())
                channel.queue.close()
            if self._txn is not None:
                # end()/release() cannot be undone; park the node in the
                # transaction's limbo list until the commit is decided
                self._txn.defer_removal(node)
            else:
                if node.streamlet.state is not StreamletState.ENDED:
                    node.streamlet.end()
                    node.streamlet.on_end(node.ctx)
                self._manager.release(node.streamlet)
            del self._nodes[name]
            self.ingress = {k: v for k, v in self.ingress.items() if not k.startswith(name + ".")}
            self.egress = [(r, c) for r, c in self.egress if r.instance != name]
            self._invalidate_topology()

    def extract_streamlet(self, name: str, *, force: bool = False) -> None:
        """Detach an instance from the topology but keep it dormant.

        The MCL ``remove`` primitive: the streamlet is paused and unwired
        (healing single-in/single-out chains like :meth:`remove_streamlet`),
        ready to be spliced back by a later ``insert``.
        """
        with self._write_access():
            node = self.node(name)
            if not force:
                waiting = [ch.name for ch in node.inputs.values() if not ch.queue.is_empty()]
                if waiting:
                    raise ReconfigurationError(
                        f"cannot extract {name}: input channel(s) {waiting} still hold "
                        "messages (drain the stream first or pass force=True)"
                    )
            if not self._heal_around(node):
                self.disconnect_all(name)
            if node.streamlet.is_active:
                node.streamlet.pause()
            self._invalidate_topology()

    def _heal_around(self, node: _Node) -> bool:
        """Join a single-in/single-out node's neighbours around it.

        The predecessor inherits the *downstream* channel so messages the
        node already emitted stay ahead of messages it never saw (message-
        loss avoidance); the upstream channel's pending units are re-posted
        behind them.  Returns False when the wiring shape does not allow a
        heal (caller falls back to plain disconnection).
        """
        in_links = [
            (port, ch) for port, ch in node.inputs.items()
            if ch.source is not None and ch.source.instance != _INGRESS
        ]
        out_links = [
            (port, ch) for port, ch in node.outputs.items()
            if ch.sink is not None and ch.sink.instance != _EGRESS
        ]
        if len(in_links) != 1 or len(out_links) != 1:
            return False
        (_, upstream), (_, downstream) = in_links[0], out_links[0]
        predecessor = upstream.source
        pred_node = self.node(predecessor.instance)
        pending = upstream.queue.drain()
        upstream.queue.close()
        self._forget_channel(upstream)
        downstream.reattach_source(predecessor)
        pred_node.outputs[predecessor.port] = downstream
        for msg_id in pending:
            if not downstream.post(msg_id, self.pool.size_of(msg_id)):
                self._release_dropped([msg_id])
        node.inputs.clear()
        node.outputs.clear()
        return True

    def replace(self, old: str, new: str) -> None:
        """Swap ``old`` for the dormant instance ``new``, keeping the wiring.

        Port names must match; types are re-checked against each attached
        channel's counterpart.
        """
        with self._write_access():
            old_node = self.node(old)
            new_node = self.node(new)
            if new_node.inputs or new_node.outputs:
                raise ReconfigurationError(f"replacement {new!r} is already wired")
            for port, channel in old_node.inputs.items():
                decl = new_node.definition.port(port)
                if decl is None or decl.direction is not ast.PortDirection.IN:
                    raise ReconfigurationError(
                        f"replacement {new!r} lacks input port {port!r} of {old!r}"
                    )
            for port, channel in old_node.outputs.items():
                decl = new_node.definition.port(port)
                if decl is None or decl.direction is not ast.PortDirection.OUT:
                    raise ReconfigurationError(
                        f"replacement {new!r} lacks output port {port!r} of {old!r}"
                    )
            for port, channel in list(old_node.inputs.items()):
                channel.reattach_sink(ast.PortRef(new, port))
                new_node.inputs[port] = channel
                if channel.source is not None and channel.source.instance == _INGRESS:
                    # keep the ingress map addressing the new instance
                    for key, chan in list(self.ingress.items()):
                        if chan is channel:
                            del self.ingress[key]
                            self.ingress[str(ast.PortRef(new, port))] = channel
            for port, channel in list(old_node.outputs.items()):
                channel.reattach_source(ast.PortRef(new, port))
                new_node.outputs[port] = channel
                if channel.sink is not None and channel.sink.instance == _EGRESS:
                    self.egress = [
                        (ast.PortRef(new, port), c) if c is channel else (r, c)
                        for r, c in self.egress
                    ]
            old_node.inputs.clear()
            old_node.outputs.clear()
            if self._started and new_node.streamlet.state is StreamletState.CREATED:
                new_node.streamlet.activate()
                new_node.streamlet.on_start(new_node.ctx)
            self.remove_streamlet(old, heal=False, force=True)

    def remove_channel(self, name: str) -> None:
        """Destroy an unused channel instance."""
        with self._write_access():
            channel = self.channel(name)
            if channel.source is not None or channel.sink is not None:
                raise CompositionError(f"channel {name!r} still carries a connection")
            del self._channels[name]

    def _forget_channel(self, channel: Channel) -> None:
        if channel.name in self._channels and channel.name.startswith("__"):
            del self._channels[channel.name]

    def _release_dropped(self, msg_ids: list[str]) -> None:
        if self._txn is not None:
            # mid-transaction drops are provisional: a rollback puts the ids
            # back on their queues, so releasing (and counting) them now
            # would lose messages the undo log is about to resurrect
            self._txn.defer_drops(msg_ids)
            return
        for msg_id in msg_ids:
            if msg_id in self.pool:
                message = self.pool.release(msg_id)
                if self.drop_hook is not None:
                    self.drop_hook(msg_id, message)
            if self.tm.enabled:
                self.tm.forget(msg_id)
                self.tm.recorder.record("drop", stream=self.name, msg_id=msg_id)
            self.stats.inc("queue_drops")

    # -- event-driven reconfiguration (section 6.4 / 7.4) ---------------------------------------------------

    def on_event(self, event: ContextEvent) -> ReconfigTiming | None:
        """React to a context event.

        System Command events (Table 6-1) get built-in behaviour — PAUSE
        suspends every streamlet, RESUME reactivates them, END tears the
        stream down — *after* any custom handler the script declares for
        them.  Other events only run their compiled ``when`` handler.
        """
        timing: ReconfigTiming | None = None
        actions = self.table.handlers.get(event.event_id)
        if actions is not None:
            timing = self._handle_actions(event.event_id, actions)
            if timing is not None:
                self.stats.events_handled += 1
                self.last_reconfig = timing
        if event.event_id == "PAUSE":
            self.pause_all()
        elif event.event_id == "RESUME":
            self.resume_all()
        elif event.event_id == "END":
            self.end()
        return timing

    def pause_all(self) -> None:
        """Suspend every active streamlet (the PAUSE system command).

        Runs in a write section so the pause lands at a step boundary for
        every worker (no streamlet observes PAUSED mid-process).
        """
        with self._write_access():
            for node in self._nodes.values():
                if node.streamlet.is_active:
                    node.streamlet.pause()

    def resume_all(self) -> None:
        """Reactivate every paused streamlet (the RESUME system command)."""
        with self.topology_lock:
            for node in self._nodes.values():
                if node.streamlet.state is StreamletState.PAUSED:
                    node.streamlet.activate()
        # sleeping workers have no queue post to wake them: tell schedulers
        self._notify_wakeup()

    def _handle_actions(self, event_id: str, actions) -> ReconfigTiming | None:
        """Run a ``when`` handler's action batch as one transaction.

        The batch is dry-run against a shadow topology, then committed
        under quiescence with automatic rollback — a failure mid-apply no
        longer leaves the stream half-rewired.  When an
        ``escalation_hook`` is wired (the Coordination Manager routes it
        into the Event Manager) a rejected or rolled-back batch surfaces
        as a ``RECONFIG_REJECTED`` / ``RECONFIG_ROLLED_BACK`` context
        event and this method returns None; without a hook the error
        propagates to the caller.
        """
        from repro.runtime.reconfig import ReconfigTransaction  # lazy: cyclic import

        txn = ReconfigTransaction(self, actions, label=event_id)
        span = self.tm.reconfig_begin(event_id) if self.tm.enabled else None
        try:
            timing = txn.execute()
        except ReconfigValidationError as exc:
            if self.escalation_hook is not None:
                self.escalation_hook("RECONFIG_REJECTED", exc)
                return None
            raise
        except ReconfigAbortedError as exc:
            if self.escalation_hook is not None:
                self.escalation_hook("RECONFIG_ROLLED_BACK", exc)
                return None
            raise
        if span is not None:
            self.tm.reconfig_end(span, event_id, timing)
        return timing

    def _execute_actions(self, actions) -> ReconfigTiming:
        timing = ReconfigTiming()
        for action in actions:
            if isinstance(action, ast.NewInstances):
                t0 = self._clock.now()
                for name in action.names:
                    if action.kind == "channel":
                        self.new_channel(name, action.definition)
                    else:
                        self.new_streamlet(name, action.definition)
                timing.channel_ops += self._clock.now() - t0
                timing.actions += 1
            elif isinstance(action, ast.Connect):
                timing.merge(self._timed_rewire(
                    lambda a=action: self.connect(a.source, a.sink, a.channel),
                    suspend=[action.source.instance],
                ))
            elif isinstance(action, ast.Disconnect):
                timing.merge(self._timed_rewire(
                    lambda a=action: self.disconnect(a.source, a.sink),
                    suspend=[action.source.instance],
                ))
            elif isinstance(action, ast.DisconnectAll):
                timing.merge(self._timed_rewire(
                    lambda a=action: self.disconnect_all(a.instance),
                    suspend=[action.instance],
                ))
            elif isinstance(action, ast.Insert):
                timing.merge(self.insert(action.source, action.sink, action.instance))
            elif isinstance(action, ast.Replace):
                timing.merge(self._timed_rewire(
                    lambda a=action: self.replace(a.old, a.new), suspend=[],
                ))
            elif isinstance(action, ast.RemoveInstance):
                if action.kind == "channel":
                    operation = lambda a=action: self.remove_channel(a.name)  # noqa: E731
                elif action.kind == "extract":
                    operation = lambda a=action: self.extract_streamlet(a.name)  # noqa: E731
                else:
                    operation = lambda a=action: self.remove_streamlet(a.name)  # noqa: E731
                timing.merge(self._timed_rewire(operation, suspend=[]))
            else:  # pragma: no cover - compiler validates handler content
                raise ReconfigurationError(f"illegal handler action {action!r}")
        return timing

    def _timed_rewire(self, operation, suspend: list[str]) -> ReconfigTiming:
        """Suspend affected producers, run the wiring op, resume (Eq 7-1)."""
        timing = ReconfigTiming(actions=1)
        resumable: list[_Node] = []
        t0 = self._clock.now()
        for name in suspend:
            node = self._nodes.get(name)
            if node is not None and node.streamlet.is_active:
                node.streamlet.pause()
                resumable.append(node)
        timing.suspend += self._clock.now() - t0
        t0 = self._clock.now()
        try:
            operation()
        except BaseException:
            # do NOT resume: the wiring op failed, so traffic must stay
            # suspended until the enclosing transaction finishes rolling
            # the topology back (the undo log restores streamlet states)
            timing.channel_ops += self._clock.now() - t0
            raise
        timing.channel_ops += self._clock.now() - t0
        t0 = self._clock.now()
        for node in resumable:
            if node.streamlet.state is StreamletState.PAUSED:
                node.streamlet.activate()
        timing.activate += self._clock.now() - t0
        return timing


def _as_ref(ref: ast.PortRef | str) -> ast.PortRef:
    if isinstance(ref, ast.PortRef):
        return ref
    instance, _, port = ref.partition(".")
    if not port:
        raise CompositionError(f"bad port reference {ref!r}; expected 'instance.port'")
    return ast.PortRef(instance, port)
