"""The Streamlet base class (section 6.1, Figure 6-2).

A streamlet encapsulates one service entity.  Authors override
:meth:`Streamlet.process` — the Python rendering of ``processMsg()`` —
which receives a message from one input port and returns the messages to
emit, each tagged with an output port.  Streamlets never see channels,
queues, or neighbours: coordination is entirely the runtime's concern,
which is the thesis's separation-of-concerns principle made concrete.

Lifecycle (``pause`` / ``activate`` / ``end``) is a small state machine
guarded against illegal transitions; the reconfiguration engine drives it
during stream adaptation and the Figure 7-6 experiment times it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from repro.errors import LifecycleError
from repro.mcl import astnodes as ast
from repro.mime.message import MimeMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.stream import RuntimeStream

#: what ``process`` returns: messages tagged with the output port to use
Emission = list[tuple[str, MimeMessage]]


class StreamletState(Enum):
    """Lifecycle states of Figure 6-2: created, active, paused, ended."""
    CREATED = "created"
    ACTIVE = "active"
    PAUSED = "paused"
    ENDED = "ended"


_ALLOWED = {
    StreamletState.CREATED: {StreamletState.ACTIVE, StreamletState.ENDED},
    StreamletState.ACTIVE: {StreamletState.PAUSED, StreamletState.ENDED},
    StreamletState.PAUSED: {StreamletState.ACTIVE, StreamletState.ENDED},
    StreamletState.ENDED: set(),
}


@dataclass
class StreamletContext:
    """What a streamlet may know about its surroundings.

    Deliberately narrow: the session it is serving, configuration
    parameters (the §8.2.1 "control interface" recommendation), and an
    emission counter — no references to other streamlets or channels.
    """

    instance_id: str
    session: str | None = None
    params: dict[str, object] = field(default_factory=dict)
    emitted: int = 0


class Streamlet:
    """Base class for every service entity.

    Subclasses set ``peer_id`` (class attribute) when the transformation
    needs reverse processing on the client — the runtime then pushes it
    onto the message's peer stack (section 6.5).
    """

    #: id of the client-side peer streamlet, or None for one-sided services
    peer_id: str | None = None

    def __init__(self, instance_id: str, definition: ast.StreamletDef):
        self.instance_id = instance_id
        self.definition = definition
        self.state = StreamletState.CREATED
        self.processed = 0
        self._bound_stream: str | None = None

    # -- computation (override) ---------------------------------------------------

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        """Transform one message; return ``[(out_port, message), ...]``.

        The default forwards unchanged to the sole output port, which is
        the behaviour of the *redirector* measurement streamlet.
        """
        outs = self.definition.outputs()
        if len(outs) != 1:
            raise NotImplementedError(
                f"{type(self).__name__} must override process(): definition "
                f"{self.definition.name} has {len(outs)} output ports"
            )
        return [(outs[0].name, message)]

    def on_start(self, ctx: StreamletContext) -> None:
        """Hook: stream deployment finished; allocate per-stream state."""

    def on_end(self, ctx: StreamletContext) -> None:
        """Hook: stream ending; release state."""

    def reset(self) -> None:
        """Clear per-stream state so a pooled instance can be reused.

        Stateless streamlets usually need nothing; stateful ones are never
        pooled, but ``reset`` is still called defensively on release.
        """

    # -- lifecycle (pause / activate / end of Figure 6-2) ------------------------------

    def _transition(self, target: StreamletState) -> None:
        if target not in _ALLOWED[self.state]:
            raise LifecycleError(
                f"{self.instance_id}: illegal transition {self.state.value} -> {target.value}"
            )
        self.state = target

    def activate(self) -> None:
        """Transition to ACTIVE (legal from CREATED or PAUSED)."""
        self._transition(StreamletState.ACTIVE)

    def pause(self) -> None:
        """Transition to PAUSED (legal from ACTIVE)."""
        self._transition(StreamletState.PAUSED)

    def end(self) -> None:
        """Transition to ENDED (terminal; legal from any live state)."""
        self._transition(StreamletState.ENDED)

    @property
    def is_active(self) -> bool:
        return self.state is StreamletState.ACTIVE

    # -- pooling support -------------------------------------------------------------------

    @property
    def is_stateless(self) -> bool:
        return self.definition.kind is ast.StreamletKind.STATELESS

    def rebind(self, instance_id: str) -> None:
        """Re-identify a pooled instance for its next assignment."""
        self.instance_id = instance_id
        self.state = StreamletState.CREATED
        self.processed = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"{type(self).__name__}({self.instance_id}, def={self.definition.name}, "
            f"{self.state.value})"
        )


class ForwardingStreamlet(Streamlet):
    """The *redirector* (section 7.2): parse, re-encapsulate, forward.

    It performs the two overhead-bearing steps every streamlet shares —
    reading the message (headers walked, length stamped) and writing it to
    the output port — with no service logic, so timing a chain of these
    isolates the per-streamlet overhead of Figure 7-2.
    """

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        # "parse": walk the headers and validate the content type
        """Parse the envelope, re-stamp it, and forward unchanged."""
        _ = message.content_type
        for _name, _value in message.headers:
            pass
        # "unparse": re-stamp the envelope
        message.stamp_length()
        outs = self.definition.outputs()
        return [(outs[0].name, message)]
