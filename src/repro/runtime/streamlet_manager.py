"""The Streamlet Manager (section 3.3.3): execution-plane instance control.

Creates streamlet instances for the coordination plane, drawing stateless
ones from per-definition pools (section 3.3.4) and always constructing
stateful ones fresh.  Pooling can be disabled wholesale for the ablation
benchmark.
"""

from __future__ import annotations

from repro.mcl import astnodes as ast
from repro.runtime.directory import StreamletDirectory
from repro.runtime.pool import InstancePool
from repro.runtime.streamlet import Streamlet


class StreamletManager:
    """Instance lifecycle: acquire on deployment, release on teardown."""

    def __init__(
        self,
        directory: StreamletDirectory,
        *,
        pooling: bool = True,
        max_idle_per_definition: int = 32,
        telemetry=None,
    ):
        self._directory = directory
        self._pooling = pooling
        self._max_idle = max_idle_per_definition
        self._pools: dict[str, InstancePool] = {}
        # acquire() is deploy-time, not per-message, so counting through
        # the telemetry facade here is free
        self._telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        self.created = 0

    @property
    def directory(self) -> StreamletDirectory:
        return self._directory

    @property
    def pooling_enabled(self) -> bool:
        return self._pooling

    def _pool_for(self, definition: ast.StreamletDef) -> InstancePool:
        pool = self._pools.get(definition.name)
        if pool is None:
            factory = self._directory.factory_for(definition)

            def build(instance_id: str, _definition=definition, _factory=factory) -> Streamlet:
                self.created += 1
                return _factory(instance_id, _definition)

            pool = InstancePool(build, max_idle=self._max_idle)
            self._pools[definition.name] = pool
        return pool

    def acquire(self, instance_id: str, definition: ast.StreamletDef) -> Streamlet:
        """An executable instance for ``definition``, pooled if stateless."""
        if self._pooling and definition.kind is ast.StreamletKind.STATELESS:
            pool = self._pool_for(definition)
            hits_before = pool.hits
            instance = pool.acquire(instance_id)
            if self._telemetry is not None:
                self._telemetry.streamlet_acquired(
                    definition.name, pooled=pool.hits > hits_before
                )
            return instance
        self.created += 1
        if self._telemetry is not None:
            self._telemetry.streamlet_acquired(definition.name, pooled=False)
        factory = self._directory.factory_for(definition)
        return factory(instance_id, definition)

    def release(self, instance: Streamlet) -> None:
        """Return an instance; stateless ones go back to their pool."""
        if self._pooling and instance.is_stateless:
            self._pool_for(instance.definition).release(instance)

    def pool_stats(self) -> dict[str, dict[str, int]]:
        """Per-definition pool hit/miss/idle counters."""
        return {
            name: {"hits": p.hits, "misses": p.misses, "idle": p.idle_count}
            for name, p in self._pools.items()
        }
