"""The MCL semantic model and its analyses (thesis chapter 5).

The thesis formalises MCL in Z and derives five consistency analyses over a
stream's *connection graph* (StreamGraph, section 5.2):

=====================  =======================================  ============
analysis               violation                                 thesis §
=====================  =======================================  ============
feedback loops         the graph has a cycle                     5.2.1
open circuit           a non-terminal streamlet drops messages   5.2.2
mutual exclusion       excluded streamlets share a path          5.2.3
dependency             a required companion streamlet missing    5.2.4
preorder               services deployed in the wrong order      5.2.5
=====================  =======================================  ============

:func:`analyze` runs all of them over a compiled
:class:`~repro.mcl.config.ConfigurationTable` and returns an
:class:`AnalysisReport`; :func:`verify` raises the matching
:class:`~repro.errors.SemanticError` subclass on the first violation.
"""

from repro.semantics.graph import StreamGraph
from repro.semantics.analyzer import (
    AnalysisReport,
    Violation,
    analyze,
    verify,
)

__all__ = ["StreamGraph", "AnalysisReport", "Violation", "analyze", "verify"]
