"""The five chapter-5 analyses, each returning a list of violations.

Each function inspects a :class:`~repro.semantics.graph.StreamGraph`
(plus, where needed, the configuration table for port-level detail) and
returns human-readable violation descriptions; empty list = consistent.
"""

from __future__ import annotations

from itertools import combinations

from repro.mcl import astnodes as ast
from repro.mcl.config import ConfigurationTable
from repro.semantics.graph import StreamGraph


def find_feedback_loops(graph: StreamGraph) -> list[str]:
    """Section 5.2.1 — data processed by a streamlet must never re-enter it."""
    cycle = graph.find_cycle()
    if cycle is None:
        return []
    return [f"feedback loop: {' -> '.join(cycle)}"]


def find_open_circuits(
    graph: StreamGraph,
    table: ConfigurationTable,
    *,
    terminal_definitions: frozenset[str] = frozenset(),
    exposed_ports_bound: bool = True,
) -> list[str]:
    """Section 5.2.2 — intermediate outputs left unconnected lose messages.

    Two levels are reported:

    * *instance-level*: a connected streamlet with output ports but no
      outgoing link (and whose definition is not declared terminal, e.g.
      a communicator) silently drops everything it produces;
    * *port-level*: an instance with some outputs wired and some dangling
      loses the traffic routed to the dangling port.

    ``exposed_ports_bound`` selects the viewpoint: ``True`` (deployment —
    the runtime attaches real egress channels to exposed ports, so they
    are satisfied); ``False`` (standalone thesis-style analysis of a
    closed composition — every dangling non-terminal output is a mistake).
    """
    violations: list[str] = []
    bound: set[tuple[str, str]] = set()
    for link in table.links:
        bound.add((link.source.instance, link.source.port))
        bound.add((link.sink.instance, link.sink.port))
    if exposed_ports_bound:
        # exposed ports are the composite's external interface (InnerIn /
        # InnerOut of section 5.1.4): traffic leaves the stream there by design
        for ref in table.exposed_in + table.exposed_out:
            bound.add((ref.instance, ref.port))
    for node in sorted(graph.nodes):
        definition = table.instances.get(node)
        if definition is None:  # pragma: no cover - graph always from table
            continue
        if definition.name in terminal_definitions:
            continue
        outputs = definition.outputs()
        if not outputs:
            continue  # a true sink by interface
        unbound = [p.name for p in outputs if (node, p.name) not in bound]
        if len(unbound) == len(outputs):
            violations.append(
                f"open circuit: {node} ({definition.name}) has no outgoing "
                "connection; incoming messages would be lost"
            )
        elif unbound:
            violations.append(
                f"open circuit: {node} ({definition.name}) leaves output "
                f"port(s) {', '.join(unbound)} unconnected"
            )
    return violations


def find_mutual_exclusions(graph: StreamGraph, table: ConfigurationTable) -> list[str]:
    """Section 5.2.3 — excluded streamlets may not share a message path.

    The ``repel`` relation comes from the ``excludes`` attribute of the
    streamlet definitions and is treated symmetrically.
    """
    violations: list[str] = []
    for a, b in combinations(sorted(graph.nodes), 2):
        def_a = table.instances[a]
        def_b = table.instances[b]
        if def_b.name in def_a.excludes or def_a.name in def_b.excludes:
            if graph.on_common_path(a, b):
                violations.append(
                    f"mutual exclusion: {a} ({def_a.name}) and {b} ({def_b.name}) "
                    "lie on a common path"
                )
    return violations


def find_dependency_violations(graph: StreamGraph, table: ConfigurationTable) -> list[str]:
    """Section 5.2.4 — mutually dependent streamlets must be deployed together.

    For every connected instance of a definition with ``requires = (Y, ...)``,
    some instance of each Y must exist and share a path with it
    (``(x,y) ∈ connect+ ∨ (y,x) ∈ connect+``).
    """
    violations: list[str] = []
    for node in sorted(graph.nodes):
        definition = table.instances[node]
        for required in definition.requires:
            partners = graph.instances_of(required)
            if not partners:
                violations.append(
                    f"dependency: {node} ({definition.name}) requires a "
                    f"{required} streamlet, but none is deployed"
                )
            elif not any(graph.on_common_path(node, p) for p in partners):
                violations.append(
                    f"dependency: {node} ({definition.name}) requires {required} "
                    "on its path, but no deployed instance shares a path"
                )
    return violations


def find_preorder_violations(graph: StreamGraph, table: ConfigurationTable) -> list[str]:
    """Section 5.2.5 — deployment-order constraints.

    ``after = (Y, ...)`` on definition X means: wherever an X and a Y share
    a path, the Y must come first (encryption before compression, in the
    thesis's example).
    """
    violations: list[str] = []
    for node in sorted(graph.nodes):
        definition = table.instances[node]
        for earlier in definition.after:
            for partner in sorted(graph.instances_of(earlier)):
                if partner == node:
                    continue
                if graph.connects(node, partner):
                    violations.append(
                        f"preorder: {partner} ({earlier}) must be deployed before "
                        f"{node} ({definition.name}), but follows it on the path"
                    )
    return violations


def composite_interface(table: ConfigurationTable) -> tuple[tuple[ast.PortRef, ...], tuple[ast.PortRef, ...]]:
    """Section 5.1.4 — the InnerIn/InnerOut sets of the composite streamlet.

    Exposed unsatisfied ports of the architecture, as already derived by
    the compiler; surfaced here for symmetry with the Z model.
    """
    return table.exposed_in, table.exposed_out
