"""Orchestrates the chapter-5 analyses over a configuration table.

:func:`analyze` is the tool form (collect everything); :func:`verify` is
the compiler-gate form — raise on the first violation, in the severity
order the thesis discusses them (loops, then lost messages, then the
relation constraints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import (
    DependencyError,
    FeedbackLoopError,
    MutualExclusionError,
    OpenCircuitError,
    PreorderError,
)
from repro.mcl.config import ConfigurationTable
from repro.semantics.analyses import (
    find_dependency_violations,
    find_feedback_loops,
    find_mutual_exclusions,
    find_open_circuits,
    find_preorder_violations,
)
from repro.semantics.graph import StreamGraph


class ViolationKind(Enum):
    """The five chapter-5 inconsistency classes."""
    FEEDBACK_LOOP = "feedback-loop"
    OPEN_CIRCUIT = "open-circuit"
    MUTUAL_EXCLUSION = "mutual-exclusion"
    DEPENDENCY = "dependency"
    PREORDER = "preorder"


_ERROR_FOR = {
    ViolationKind.FEEDBACK_LOOP: FeedbackLoopError,
    ViolationKind.OPEN_CIRCUIT: OpenCircuitError,
    ViolationKind.MUTUAL_EXCLUSION: MutualExclusionError,
    ViolationKind.DEPENDENCY: DependencyError,
    ViolationKind.PREORDER: PreorderError,
}


@dataclass(frozen=True)
class Violation:
    kind: ViolationKind
    message: str

    def raise_(self) -> None:
        """Raise this violation as its matching SemanticError subclass."""
        raise _ERROR_FOR[self.kind](self.message)


@dataclass
class AnalysisReport:
    stream_name: str
    violations: list[Violation] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.violations

    def of_kind(self, kind: ViolationKind) -> list[Violation]:
        """The subset of violations of one kind."""
        return [v for v in self.violations if v.kind is kind]

    def summary(self) -> str:
        """Human-readable report, one line per violation."""
        if self.consistent:
            return f"{self.stream_name}: consistent"
        lines = [f"{self.stream_name}: {len(self.violations)} violation(s)"]
        lines.extend(f"  [{v.kind.value}] {v.message}" for v in self.violations)
        return "\n".join(lines)


def analyze(
    table: ConfigurationTable,
    *,
    terminal_definitions: frozenset[str] | set[str] = frozenset(),
    exposed_ports_bound: bool = True,
) -> AnalysisReport:
    """Run every analysis; collect all violations.

    ``terminal_definitions`` names definitions that legitimately terminate
    a flow (communicators, caches acting as sinks) and are exempt from
    open-circuit detection.  ``exposed_ports_bound=False`` selects the
    standalone thesis-style view in which every dangling non-terminal
    output — even an exposed one — is an open circuit.
    """
    graph = StreamGraph.from_table(table)
    report = AnalysisReport(stream_name=table.stream_name)

    def extend(kind: ViolationKind, messages: list[str]) -> None:
        report.violations.extend(Violation(kind, m) for m in messages)

    extend(ViolationKind.FEEDBACK_LOOP, find_feedback_loops(graph))
    extend(
        ViolationKind.OPEN_CIRCUIT,
        find_open_circuits(
            graph,
            table,
            terminal_definitions=frozenset(terminal_definitions),
            exposed_ports_bound=exposed_ports_bound,
        ),
    )
    extend(ViolationKind.MUTUAL_EXCLUSION, find_mutual_exclusions(graph, table))
    extend(ViolationKind.DEPENDENCY, find_dependency_violations(graph, table))
    extend(ViolationKind.PREORDER, find_preorder_violations(graph, table))
    return report


def verify(
    table: ConfigurationTable,
    *,
    terminal_definitions: frozenset[str] | set[str] = frozenset(),
    exposed_ports_bound: bool = True,
) -> None:
    """Raise the matching :class:`SemanticError` on the first violation."""
    report = analyze(
        table,
        terminal_definitions=terminal_definitions,
        exposed_ports_bound=exposed_ports_bound,
    )
    if report.violations:
        report.violations[0].raise_()
