"""Fusion legality — which streamlet chains may collapse into one node.

The chapter-5 analyses prove global properties of a composition; this
module answers the *optimizer's* question: along which edges is it safe
to skip the channel entirely and run producer and consumer in the same
dispatch?  An edge ``a → b`` is **fusable** when every condition below
holds:

* the channel is *synchronously coupled*: declared ``SYNC`` or category
  ``S`` — a zero-length rendezvous that can never legally buffer a
  message between steps, so eliding it is unobservable;
* ``a`` has exactly one wired output and ``b`` exactly one wired input
  (counting exposed ports), so the edge is the only path through either
  endpoint — no switch/merge member ever sits inside a fused region;
* neither endpoint is *optional*: an instance named by an ``extract``
  handler action is designed to be pulled out of the flow at runtime,
  and fusing it would turn every such event into a split/re-fuse cycle;
* no two members of the resulting chain declare mutual exclusion
  (§5.2.3) against each other;
* following fusable edges never returns to the start — a feedback loop
  (§5.2.1) through a fused region would deadlock the single dispatch.

Maximal runs of fusable edges form the **chains** the optimizer fuses.
Both the post-compile planner (:mod:`repro.mcl.optimize`) and the live
runtime (:meth:`repro.runtime.stream.RuntimeStream.fusion_groups`) call
into this module so compile-time plans and runtime behaviour can never
disagree about legality.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.mcl import astnodes as ast
from repro.mcl.config import ConfigurationTable

__all__ = [
    "is_synchronous",
    "optional_instances",
    "exclusion_conflict",
    "chain_edges",
    "fusable_chains",
]


def is_synchronous(definition: ast.ChannelDef) -> bool:
    """True when a channel definition is a zero-length rendezvous.

    Mirrors :class:`repro.runtime.channel.Channel`: ``SYNC`` channels and
    S-category channels both get a capacity-0 queue, so both qualify.
    """
    return (
        definition.sync is ast.ChannelSync.SYNC
        or definition.category is ast.ChannelCategory.S
    )


def optional_instances(handlers: Mapping[str, tuple]) -> frozenset[str]:
    """Instances any ``when`` handler extracts — never fused (optional members)."""
    names: set[str] = set()

    def walk(actions: Iterable[ast.Statement]) -> None:
        for action in actions:
            if isinstance(action, ast.RemoveInstance) and action.kind == "extract":
                names.add(action.name)
            elif isinstance(action, ast.When):  # nested handler blocks
                walk(action.actions)

    for actions in handlers.values():
        walk(actions)
    return frozenset(names)


def exclusion_conflict(
    definitions: Mapping[str, ast.StreamletDef],
    members: Iterable[str],
    candidate: str,
) -> bool:
    """True when ``candidate`` is mutually exclusive with any chain member.

    Checks the §5.2.3 ``excludes`` attribute in both directions: the
    candidate naming a member's definition, or a member naming the
    candidate's.
    """
    cand_def = definitions.get(candidate)
    cand_name = cand_def.name if cand_def is not None else None
    cand_excludes = set(cand_def.excludes) if cand_def is not None else set()
    for member in members:
        member_def = definitions.get(member)
        if member_def is None:
            continue
        if member_def.name in cand_excludes:
            return True
        if cand_name is not None and cand_name in member_def.excludes:
            return True
    return False


def chain_edges(
    successors: Mapping[str, str],
    order: Iterable[str],
) -> list[tuple[str, ...]]:
    """Maximal chains (length >= 2) over a partial successor map.

    ``successors[a] = b`` states that edge ``a → b`` is fusable; legality
    guarantees each node has at most one fusable out-edge and one fusable
    in-edge, so the edges form disjoint paths.  ``order`` fixes the walk
    order (and therefore chain identity) deterministically.  A cycle of
    fusable edges — a feedback loop — yields no chain at all.
    """
    has_predecessor = set(successors.values())
    chains: list[tuple[str, ...]] = []
    for name in order:
        if name in has_predecessor or name not in successors:
            continue  # not a chain head
        members = [name]
        seen = {name}
        cursor = name
        while cursor in successors:
            nxt = successors[cursor]
            if nxt in seen:  # feedback loop through the region: refuse
                members = []
                break
            members.append(nxt)
            seen.add(nxt)
            cursor = nxt
        if len(members) >= 2:
            chains.append(tuple(members))
    return chains


def fusable_chains(table: ConfigurationTable) -> list[tuple[str, ...]]:
    """Maximal fusable chains of a compiled configuration table.

    The table-level twin of the runtime's live-wiring query: used by
    :func:`repro.mcl.optimize.optimize` to plan fusion right after
    compilation (and by tests as the legality ground truth).
    """
    barred = optional_instances(table.handlers)
    out_degree: dict[str, int] = dict.fromkeys(table.instances, 0)
    in_degree: dict[str, int] = dict.fromkeys(table.instances, 0)
    for link in table.links:
        out_degree[link.source.instance] = out_degree.get(link.source.instance, 0) + 1
        in_degree[link.sink.instance] = in_degree.get(link.sink.instance, 0) + 1
    for ref in table.exposed_in:
        in_degree[ref.instance] = in_degree.get(ref.instance, 0) + 1
    for ref in table.exposed_out:
        out_degree[ref.instance] = out_degree.get(ref.instance, 0) + 1

    successors: dict[str, str] = {}
    for link in table.links:
        source, sink = link.source.instance, link.sink.instance
        if source in barred or sink in barred:
            continue
        entry = table.channels.get(link.channel)
        if entry is None or not is_synchronous(entry.definition):
            continue
        if out_degree.get(source) != 1 or in_degree.get(sink) != 1:
            continue
        successors[source] = sink

    chains: list[tuple[str, ...]] = []
    for chain in chain_edges(successors, table.instances):
        accepted: list[str] = []
        for member in chain:
            if accepted and exclusion_conflict(table.instances, accepted, member):
                if len(accepted) >= 2:
                    chains.append(tuple(accepted))
                accepted = []
            accepted.append(member)
        if len(accepted) >= 2:
            chains.append(tuple(accepted))
    return chains
