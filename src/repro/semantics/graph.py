"""StreamGraph — the directed graph underlying all chapter-5 analyses.

"A stream configuration is considered as a directed graph in which two
streamlets are connected if any of their ports are attached to a common
channel" (section 5.2).  Nodes are instance names; an edge s1→s2 exists
when some channel carries s1's output to s2's input.

The graph also remembers each node's *definition name* so the relation
attributes (``excludes``/``requires``/``after``) — which are declared per
definition — can be applied to instances.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.mcl.config import ConfigurationTable


class StreamGraph:
    """Immutable-ish directed graph over streamlet instances."""

    def __init__(
        self,
        nodes: Iterable[str],
        edges: Iterable[tuple[str, str]],
        definition_of: dict[str, str] | None = None,
    ):
        self._nodes: set[str] = set(nodes)
        self._succ: dict[str, set[str]] = {n: set() for n in self._nodes}
        self._pred: dict[str, set[str]] = {n: set() for n in self._nodes}
        for src, dst in edges:
            if src not in self._nodes or dst not in self._nodes:
                raise ValueError(f"edge ({src}, {dst}) references unknown node")
            self._succ[src].add(dst)
            self._pred[dst].add(src)
        self._definition_of = dict(definition_of or {})

    @classmethod
    def from_table(cls, table: ConfigurationTable) -> "StreamGraph":
        """Build the graph of *connected* instances from a config table.

        Dormant instances (declared, never connected — the dashed optional
        entities of Figure 4-6) are excluded: they process no messages
        until an event splices them in.
        """
        connected = table.connected_instances()
        edges = [
            (link.source.instance, link.sink.instance)
            for link in table.links
        ]
        definition_of = {
            name: table.instances[name].name for name in connected if name in table.instances
        }
        return cls(connected, edges, definition_of)

    # -- structure --------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def successors(self, node: str) -> frozenset[str]:
        """Direct downstream neighbours of ``node``."""
        return frozenset(self._succ.get(node, ()))

    def predecessors(self, node: str) -> frozenset[str]:
        """Direct upstream neighbours of ``node``."""
        return frozenset(self._pred.get(node, ()))

    def edges(self) -> frozenset[tuple[str, str]]:
        """Every (source, sink) instance edge."""
        return frozenset(
            (src, dst) for src, dsts in self._succ.items() for dst in dsts
        )

    def definition_of(self, node: str) -> str:
        """The definition name behind an instance node."""
        return self._definition_of.get(node, node)

    def instances_of(self, definition: str) -> frozenset[str]:
        """The nodes instantiated from ``definition``."""
        return frozenset(
            node for node in self._nodes if self.definition_of(node) == definition
        )

    def sources(self) -> frozenset[str]:
        """Nodes with no incoming edges."""
        return frozenset(n for n in self._nodes if not self._pred[n])

    def sinks(self) -> frozenset[str]:
        """Nodes with no outgoing edges."""
        return frozenset(n for n in self._nodes if not self._succ[n])

    # -- reachability (``connect+`` of the Z model) -------------------------------

    def reachable_from(self, start: str) -> frozenset[str]:
        """Strict transitive successors of ``start`` (excludes start unless cyclic)."""
        seen: set[str] = set()
        frontier = list(self._succ.get(start, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._succ.get(node, ()))
        return frozenset(seen)

    def connects(self, a: str, b: str) -> bool:
        """``(a, b) ∈ connect+``"""
        return b in self.reachable_from(a)

    def on_common_path(self, a: str, b: str) -> bool:
        """True if a reaches b or b reaches a."""
        return self.connects(a, b) or self.connects(b, a)

    # -- cycles ----------------------------------------------------------------------

    def find_cycle(self) -> list[str] | None:
        """Any one cycle as a node list (closed: first == last), or None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = dict.fromkeys(self._nodes, WHITE)
        parent: dict[str, str] = {}

        for root in sorted(self._nodes):
            if color[root] != WHITE:
                continue
            stack: list[tuple[str, Iterable[str]]] = [(root, iter(sorted(self._succ[root])))]
            color[root] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == GRAY:
                        # reconstruct the cycle from the gray chain
                        cycle = [nxt, node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(sorted(self._succ[nxt]))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        """True when the graph has no cycle."""
        return self.find_cycle() is None

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises ValueError if cyclic."""
        indegree = {n: len(self._pred[n]) for n in self._nodes}
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in sorted(self._succ[node]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
            ready.sort()
        if len(order) != len(self._nodes):
            raise ValueError("graph is cyclic; no topological order")
        return order

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"StreamGraph({len(self._nodes)} nodes, {len(self.edges())} edges)"
