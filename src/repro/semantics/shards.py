"""Shard-cut planning — how a stream splits across worker processes.

The fusion legality analysis (:mod:`repro.semantics.fusion`) already
classifies every channel: a *synchronous* edge (``SYNC`` or category
``S``) is a zero-length rendezvous whose producer and consumer must step
in lockstep, so it can never be cut by a process boundary — the two
endpoints land in the same shard and hop in memory.  An *asynchronous*
edge buffers, which is exactly the decoupling a shared-memory ring
provides, so it is a legal cut point.

The planner therefore:

1. unions instances across synchronous edges into **atoms** — the
   indivisible units of placement;
2. orders atoms by their first member's position in the processing
   order (so a pipeline shards into contiguous segments and a cross-
   shard hop always moves "forward");
3. packs consecutive atoms into at most ``max_shards`` shards, balanced
   by instance count.

The result is purely structural — no live objects — so the same plan
function serves the compiled :class:`~repro.mcl.config.ConfigurationTable`
(for ahead-of-time inspection) and the live runtime wiring (which the
:class:`~repro.runtime.process_scheduler.ProcessScheduler` re-plans on
every topology change).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.mcl.config import ConfigurationTable
from repro.semantics.fusion import is_synchronous

__all__ = ["ShardPlan", "plan_shards", "plan_table_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """The partition one stream runs under: shards of instance names."""

    #: shards in processing order; each a tuple of instance names
    shards: tuple[tuple[str, ...], ...]
    #: ``(source, sink)`` pairs of synchronous edges (never cut)
    sync_edges: tuple[tuple[str, str], ...]

    @property
    def shard_of(self) -> dict[str, int]:
        """Instance name → shard index."""
        return {
            name: index
            for index, members in enumerate(self.shards)
            for name in members
        }

    def __len__(self) -> int:
        return len(self.shards)


def plan_shards(
    order: Sequence[str],
    edges: Iterable[tuple[str, str, bool]],
    max_shards: int,
) -> ShardPlan:
    """Partition ``order`` into shards, cutting only asynchronous edges.

    ``edges`` are ``(source, sink, synchronous)`` triples over the names
    in ``order``; unknown endpoints are ignored.  ``max_shards`` bounds
    the shard count — the plan may use fewer when synchronous coupling
    leaves fewer atoms than that.
    """
    names = list(order)
    if not names:
        return ShardPlan(shards=(), sync_edges=())
    max_shards = max(1, max_shards)
    position = {name: i for i, name in enumerate(names)}

    # union-find over synchronous edges: atoms are the indivisible units
    parent: dict[str, str] = {name: name for name in names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    sync_edges: list[tuple[str, str]] = []
    for source, sink, synchronous in edges:
        if source not in position or sink not in position:
            continue
        if synchronous:
            sync_edges.append((source, sink))
            ra, rb = find(source), find(sink)
            if ra != rb:
                parent[rb] = ra

    atoms: dict[str, list[str]] = {}
    for name in names:  # processing order keeps atom members ordered
        atoms.setdefault(find(name), []).append(name)
    # order atoms by their earliest member so shards stay contiguous
    atom_list = sorted(atoms.values(), key=lambda members: position[members[0]])

    shard_count = min(max_shards, len(atom_list))
    target = max(1, -(-len(names) // shard_count))  # ceil(nodes / shards)
    shards: list[tuple[str, ...]] = []
    current: list[str] = []
    for atom in atom_list:
        # close the shard once it met its quota — as long as at least one
        # more shard slot remains open for this atom and the tail
        if current and len(current) >= target and len(shards) < shard_count - 1:
            shards.append(tuple(current))
            current = []
        current.extend(atom)
    if current:
        shards.append(tuple(current))
    return ShardPlan(shards=tuple(shards), sync_edges=tuple(sync_edges))


def plan_table_shards(table: ConfigurationTable, max_shards: int) -> ShardPlan:
    """Plan shards for a compiled configuration table (inspection aid)."""
    order = list(table.instances)
    edges = []
    for link in table.links:
        entry = table.channels.get(link.channel)
        if entry is None:
            continue
        edges.append(
            (link.source.instance, link.sink.instance, is_synchronous(entry.definition))
        )
    return plan_shards(order, edges, max_shards)
