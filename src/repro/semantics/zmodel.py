"""The Z semantic model of chapter 5, as executable schemas.

The thesis formalises MCL in Z: schemas *Streamlet*, *Channel*, *Stream*
(section 5.1) with predicates that every well-formed composition must
satisfy, plus the derived *StreamGraph*/*connect* relation the analyses
run on (section 5.2).  This module renders those schemas as dataclasses
whose ``check`` methods evaluate the schema predicates — an independent
validator for the compiler's output, and the machinery behind the worked
section 5.3 derivation (``id streamlets ∩ connect+ ≠ ∅`` ⇒ feedback
loop).

Extraction (:func:`model_of`) maps a compiled configuration table into the
model's sets; ``to_z_text`` renders any schema instance in Z-ish concrete
syntax for documentation and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.mcl import astnodes as ast
from repro.mcl.config import ConfigurationTable
from repro.mime.registry import TypeRegistry, default_registry


class ZViolation(SemanticError):
    """A schema predicate failed — the composition is not well-formed."""


@dataclass(frozen=True)
class ZStreamlet:
    """Schema *Streamlet* (section 5.1.1)."""

    id: str
    inputs: frozenset[str]
    outputs: frozenset[str]
    port_type: dict[str, str] = field(hash=False)

    def check(self) -> None:
        # "Input and output data ports are distinct"
        """Evaluate the Streamlet schema predicates (ZViolation on failure)."""
        if self.inputs & self.outputs:
            raise ZViolation(
                f"streamlet {self.id}: inputs ∩ outputs ≠ ∅ "
                f"({sorted(self.inputs & self.outputs)})"
            )
        # "Each port is associated with a data type"
        if set(self.port_type) != set(self.inputs | self.outputs):
            raise ZViolation(
                f"streamlet {self.id}: dom port-type ≠ inputs ∪ outputs"
            )

    def to_z_text(self) -> str:
        """Render this schema instance in Z-ish concrete syntax."""
        return (
            f"Streamlet ≙ [ id: {self.id};"
            f" inputs: {{{', '.join(sorted(self.inputs))}}};"
            f" outputs: {{{', '.join(sorted(self.outputs))}}} ]"
        )


@dataclass(frozen=True)
class ZChannel:
    """Schema *Channel* (section 5.1.2)."""

    id: str
    source: tuple[str, str]  # (streamlet id, port)
    sink: tuple[str, str]
    type: str

    def check(self) -> None:
        # "sink ≠ source"
        """Evaluate the Channel schema predicates (ZViolation on failure)."""
        if self.sink == self.source:
            raise ZViolation(f"channel {self.id}: sink = source")

    def to_z_text(self) -> str:
        """Render this schema instance in Z-ish concrete syntax."""
        return (
            f"Channel ≙ [ id: {self.id};"
            f" source: {self.source[0]}.{self.source[1]};"
            f" sink: {self.sink[0]}.{self.sink[1]}; type: {self.type} ]"
        )


@dataclass
class ZStream:
    """Schema *Stream* (section 5.1.3): streamlets agglomerated by channels."""

    name: str
    streamlets: dict[str, ZStreamlet]
    channels: dict[str, ZChannel]
    registry: TypeRegistry = field(default_factory=default_registry)

    # -- schema predicates ------------------------------------------------------------

    def check(self) -> None:
        """Evaluate every predicate of the Stream schema."""
        for streamlet in self.streamlets.values():
            streamlet.check()
        for channel in self.channels.values():
            channel.check()
            self._check_channel_wiring(channel)

    def _check_channel_wiring(self, channel: ZChannel) -> None:
        # "name clashes between distinct streamlets and channels are disallowed"
        if channel.id in self.streamlets:
            raise ZViolation(f"name clash: {channel.id} is both streamlet and channel")
        src_inst, src_port = channel.source
        dst_inst, dst_port = channel.sink
        source = self.streamlets.get(src_inst)
        sink = self.streamlets.get(dst_inst)
        if source is None or src_port not in source.outputs:
            raise ZViolation(
                f"channel {channel.id}: source {src_inst}.{src_port} is not an output"
            )
        if sink is None or dst_port not in sink.inputs:
            raise ZViolation(
                f"channel {channel.id}: sink {dst_inst}.{dst_port} is not an input"
            )
        # "the port type of two connected streamlets must be compatible with
        # that of the intermediate channel"
        produced = source.port_type[src_port]
        accepted = sink.port_type[dst_port]
        if not self.registry.compatible(produced, accepted):
            raise ZViolation(
                f"channel {channel.id}: {produced} not compatible with {accepted}"
            )
        if not self.registry.compatible(produced, channel.type):
            raise ZViolation(
                f"channel {channel.id}: cannot carry {produced} (declares {channel.type})"
            )

    # -- the connect relation (section 5.2) ----------------------------------------------

    def connect(self) -> frozenset[tuple[str, str]]:
        """The *connect* relation: (s1, s2) iff a channel joins them."""
        return frozenset(
            (channel.source[0], channel.sink[0]) for channel in self.channels.values()
        )

    def connect_plus(self) -> frozenset[tuple[str, str]]:
        """``connect+`` — the smallest transitive relation containing connect."""
        closure: set[tuple[str, str]] = set(self.connect())
        changed = True
        while changed:
            changed = False
            for a, b in list(closure):
                for c, d in list(closure):
                    if b == c and (a, d) not in closure:
                        closure.add((a, d))
                        changed = True
        return frozenset(closure)

    def identity(self) -> frozenset[tuple[str, str]]:
        """``id streamlets``"""
        return frozenset((s, s) for s in self.streamlets)

    def is_acyclic(self) -> bool:
        """Section 5.3: acyclic ⇔ ``id streamlets ∩ connect+ = ∅``."""
        return not (self.identity() & self.connect_plus())

    def to_z_text(self) -> str:
        """Render the whole stream model in Z-ish concrete syntax."""
        lines = [f"Stream {self.name} ≙ ["]
        for streamlet in sorted(self.streamlets.values(), key=lambda s: s.id):
            lines.append("  " + streamlet.to_z_text())
        for channel in sorted(self.channels.values(), key=lambda c: c.id):
            lines.append("  " + channel.to_z_text())
        lines.append("]")
        return "\n".join(lines)


def model_of(table: ConfigurationTable, *, registry: TypeRegistry | None = None) -> ZStream:
    """Extract the Z model of a compiled stream (connected instances only)."""
    connected = table.connected_instances()
    streamlets: dict[str, ZStreamlet] = {}
    for name in connected:
        definition = table.instances.get(name)
        if definition is None:
            continue
        streamlets[name] = ZStreamlet(
            id=name,
            inputs=frozenset(p.name for p in definition.inputs()),
            outputs=frozenset(p.name for p in definition.outputs()),
            port_type={p.name: str(p.mediatype) for p in definition.ports},
        )
    channels: dict[str, ZChannel] = {}
    for link in table.links:
        entry = table.channels[link.channel]
        channels[link.channel] = ZChannel(
            id=link.channel,
            source=(link.source.instance, link.source.port),
            sink=(link.sink.instance, link.sink.port),
            type=str(entry.definition.in_port.mediatype),
        )
    return ZStream(
        name=table.stream_name,
        streamlets=streamlets,
        channels=channels,
        registry=registry if registry is not None else default_registry(),
    )
