"""repro.store — the durable state plane.

The gateway holds the retention-critical half of every session: queued
messages, dead letters, retry schedules, last-known-good compositions.
This package makes that state survive a process kill:

* :mod:`repro.store.base` — the tiny :class:`StateStore` append-only
  contract plus the in-memory reference backend and the
  :func:`open_store` factory;
* :mod:`repro.store.wal` — the durable backends: a CRC-framed JSONL
  write-ahead file and an sqlite WAL database, both torn-tail tolerant;
* :mod:`repro.store.ledger` — the :class:`Ledger` event schema the
  gateway writes (counter deltas on the hot path, full frames only on
  the fault path) and the :func:`fold` that replays it into per-session
  state;
* :mod:`repro.store.recovery` — the :class:`RecoveryManager` that
  redeploys sessions after a crash, re-parks dead letters, re-injects
  pending retries, and reconciles the conservation invariant *across*
  the crash;
* :mod:`repro.store.crash` — the kill-9 harness driving a subprocess
  gateway through seeded crash/restart cycles.

See ``docs/durability.md`` for the schema and the recovery walkthrough.
"""

from repro.store.base import FSYNC_POLICIES, MemoryStore, StateStore, open_store
from repro.store.crash import CrashCycle, CrashHarness, CrashReport
from repro.store.ledger import (
    NULL_LEDGER,
    CrossCrashReport,
    Ledger,
    LedgerFold,
    NullLedger,
    ParkedRecord,
    RetryRecord,
    SessionBalance,
    SessionFold,
    fold,
)
from repro.store.recovery import RecoveryManager, RecoveryReport, SessionRecovery
from repro.store.wal import FileWALStore, SqliteWALStore

__all__ = [
    "CrashCycle",
    "CrashHarness",
    "CrashReport",
    "CrossCrashReport",
    "FSYNC_POLICIES",
    "FileWALStore",
    "Ledger",
    "LedgerFold",
    "MemoryStore",
    "NULL_LEDGER",
    "NullLedger",
    "ParkedRecord",
    "RecoveryManager",
    "RecoveryReport",
    "RetryRecord",
    "SessionBalance",
    "SessionFold",
    "SessionRecovery",
    "SqliteWALStore",
    "StateStore",
    "fold",
    "open_store",
]
