"""The :class:`StateStore` contract and its in-memory reference backend.

A state store is an **append-only record log**: the durable substrate the
:class:`~repro.store.ledger.Ledger` writes gateway lifecycle events
through.  The contract is deliberately tiny — append, replay, flush,
truncate, close — so a backend can be anything from a Python list to a
write-ahead file to sqlite, and the recovery plane never cares which.

Contract rules every backend honours:

* ``append`` assigns a monotonically increasing sequence number and
  never reorders records;
* ``replay`` yields exactly the records a crashed process would find on
  disk, **in append order**, stopping (not raising) at a torn tail —
  a partially written final record is the normal outcome of ``kill -9``,
  not corruption worth dying over;
* ``flush`` makes everything appended so far durable (fsync / commit),
  subject to the backend's ``fsync`` policy;
* all methods are thread-safe — admissions land from the gateway's event
  loop while deliveries land from egress pump threads.

:class:`MemoryStore` is the non-durable twin: it keeps the records in a
list, survives nothing, and exists so the ``durability`` bench can price
the WAL backends against pure bookkeeping overhead.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator

from repro.errors import StoreError

#: accepted ``fsync`` policies for durable backends
FSYNC_POLICIES = ("always", "batch", "never")


class StateStore:
    """Abstract append-only record log (see the module docstring).

    Subclasses set :attr:`backend` (a short label for telemetry and
    reports) and :attr:`durable` (whether records survive a process
    kill), and implement the five primitives.
    """

    #: short backend label ("memory" / "file" / "sqlite")
    backend = "abstract"
    #: whether appended records survive a process kill
    durable = False

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._closed = False
        #: observability: lifetime operation counts
        self.appends = 0
        self.flushes = 0
        self.fsyncs = 0
        self.replayed = 0
        self.torn = 0

    # -- the contract ---------------------------------------------------------------

    def append(self, record: dict) -> int:
        """Append one JSON-safe record; returns its sequence number."""
        raise NotImplementedError

    def replay(self) -> Iterator[dict]:
        """Yield every durable record in append order (torn tail skipped)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make every appended record durable (per the fsync policy)."""
        raise NotImplementedError

    def truncate(self) -> None:
        """Discard every record (compaction after a checkpoint, tests)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release the backing resource (idempotent)."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError(f"{type(self).__name__} is closed")


class MemoryStore(StateStore):
    """The in-process backend: a list, for tests and overhead baselines.

    Replay works within the process (restart-in-place tests), but a
    killed process takes the records with it — ``durable`` is False.
    """

    backend = "memory"
    durable = False

    def __init__(self) -> None:
        super().__init__()
        self._records: list[dict] = []

    def append(self, record: dict) -> int:
        """Store one record; returns its 1-based sequence number."""
        with self._lock:
            self._require_open()
            self._records.append(dict(record))
            self.appends += 1
            return self.appends

    def replay(self) -> Iterator[dict]:
        """Yield copies of every stored record in append order."""
        with self._lock:
            snapshot = [dict(r) for r in self._records]
        for record in snapshot:
            self.replayed += 1
            yield record

    def flush(self) -> None:
        """No durability to arrange; counts the call for parity."""
        with self._lock:
            self._require_open()
            self.flushes += 1

    def truncate(self) -> None:
        """Drop every stored record."""
        with self._lock:
            self._require_open()
            self._records.clear()

    def close(self) -> None:
        """Mark the store closed (records stay readable via replay)."""
        with self._lock:
            self._closed = True


def open_store(
    backend: str,
    path: str | None = None,
    *,
    fsync: str = "batch",
    telemetry=None,
) -> StateStore:
    """Build a :class:`StateStore` from configuration strings.

    ``backend`` is ``"memory"``, ``"file"`` (append-only CRC-framed WAL),
    or ``"sqlite"``; the durable backends require ``path``.  ``fsync``
    picks the durability/throughput trade: ``"always"`` syncs per append,
    ``"batch"`` syncs on :meth:`StateStore.flush`, ``"never"`` leaves it
    to the OS.  ``telemetry`` (a :class:`repro.telemetry.Telemetry`) adds
    the ``mobigate_store_*`` metric families.
    """
    if fsync not in FSYNC_POLICIES:
        raise StoreError(f"unknown fsync policy {fsync!r} (choose from {FSYNC_POLICIES})")
    if backend == "memory":
        store: StateStore = MemoryStore()
    elif backend == "file":
        from repro.store.wal import FileWALStore

        if path is None:
            raise StoreError("the file backend requires a path")
        store = FileWALStore(path, fsync=fsync)
    elif backend == "sqlite":
        from repro.store.wal import SqliteWALStore

        if path is None:
            raise StoreError("the sqlite backend requires a path")
        store = SqliteWALStore(path, fsync=fsync)
    else:
        raise StoreError(
            f"unknown store backend {backend!r} (choose from memory/file/sqlite)"
        )
    if telemetry is not None and telemetry.enabled:
        _instrument(store, telemetry)
    return store


def _instrument(store: StateStore, telemetry) -> None:
    """Wrap a store's append/flush with the ``mobigate_store_*`` counters."""
    appends = telemetry.store_append_counter(store.backend)
    syncs = telemetry.store_fsync_counter(store.backend)
    replays = telemetry.store_replay_counter(store.backend)
    raw_append, raw_flush, raw_replay = store.append, store.flush, store.replay

    def counted_append(record: dict) -> int:
        before = store.fsyncs
        seq = raw_append(record)
        appends.inc()
        grew = store.fsyncs - before  # the "always" policy syncs per append
        if grew:
            syncs.inc(grew)
        return seq

    def counted_flush() -> None:
        before = store.fsyncs
        raw_flush()
        grew = store.fsyncs - before
        if grew:
            syncs.inc(grew)

    def counted_replay():
        for record in raw_replay():
            replays.inc()
            yield record

    store.append = counted_append  # type: ignore[method-assign]
    store.flush = counted_flush  # type: ignore[method-assign]
    store.replay = counted_replay  # type: ignore[method-assign]
