"""The kill-9 harness: real process crashes against a durable gateway.

:class:`CrashHarness` drives the whole durability story end to end, the
way the acceptance bench needs it: a **subprocess** gateway
(``python -m repro.gateway``) with a WAL-backed ledger, a burst of real
frames over its data socket, a ``SIGKILL`` delivered mid-flight at a
seeded moment, a restart, and the ``recovery`` control verb to check
what came back.  Nothing is simulated — the child process dies with
whatever its ledger had fsynced, exactly like a production kill.

Per cycle the parent:

1. spawns (or reuses) the child and waits for its address line;
2. deploys the echo chain once — on later cycles recovery has already
   restored the session, so deployment is skipped;
3. sends ``burst`` frames and reads echoes until a seeded ack target is
   reached (leaving the rest in flight);
4. ``SIGKILL``\\ s the child.

After the last kill one more child recovers, the harness polls the
``recovery`` verb's reconciliation until the cross-crash conservation
equation balances, and the child is shut down gracefully (``SIGTERM`` →
drain).  The verdict: ``lost_acked`` must be 0 — every frame the parent
actually received an echo for must appear in the folded ``delivered``
total, because sessions flush the ledger *before* handing frames to the
egress callback.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StoreError
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message

#: default MCL deployed in the child (a two-redirector echo chain)
ECHO_MCL = """
main stream crashchain{
  streamlet r0, r1 = new-streamlet (redirector);
  connect (r0.po, r1.pi);
}
"""


@dataclass
class CrashCycle:
    """One send-burst / kill / restart round."""

    cycle: int
    sent: int
    acked: int
    #: sessions the restarted child reported as restored
    restored: int = 0
    #: in-flight tally the restarted child froze for the dead generation
    recovered_in_flight: int = 0


@dataclass
class CrashReport:
    """The verdict of a whole :meth:`CrashHarness.run`."""

    backend: str
    fsync: str
    seed: int
    cycles: list[CrashCycle] = field(default_factory=list)
    #: folded delivered total across every process generation
    delivered_total: int = 0
    #: echoes the parent actually received across every cycle
    acked_total: int = 0
    sent_total: int = 0
    #: acked frames the ledger does not know were delivered (must be 0)
    lost_acked: int = 0
    #: final cross-crash conservation verdict
    balanced: bool = False
    missing: int = 0
    wall_s: float = 0.0

    def describe(self) -> dict:
        """A JSON-ready summary (what the durability bench records)."""
        return {
            "backend": self.backend,
            "fsync": self.fsync,
            "seed": self.seed,
            "cycles": len(self.cycles),
            "sent_total": self.sent_total,
            "acked_total": self.acked_total,
            "delivered_total": self.delivered_total,
            "lost_acked": self.lost_acked,
            "balanced": self.balanced,
            "missing": self.missing,
            "recovered_in_flight": sum(c.recovered_in_flight for c in self.cycles),
            "wall_s": self.wall_s,
        }


class CrashHarness:
    """Seeded kill-9-and-restart driver over a subprocess gateway."""

    def __init__(
        self,
        store_dir: str | os.PathLike,
        *,
        backend: str = "file",
        fsync: str = "batch",
        cycles: int = 20,
        burst: int = 32,
        seed: int = 0,
        session_key: str = "crash-session",
        mcl: str = ECHO_MCL,
        scheduler: str = "threaded",
        boot_timeout: float = 20.0,
        io_timeout: float = 10.0,
    ) -> None:
        import random

        self.store_dir = Path(store_dir)
        self.backend = backend
        self.fsync = fsync
        self.cycles = cycles
        self.burst = burst
        self.seed = seed
        self.session_key = session_key
        self.mcl = mcl
        self.scheduler = scheduler
        self.boot_timeout = boot_timeout
        self.io_timeout = io_timeout
        self.rng = random.Random(seed)
        self._child: subprocess.Popen | None = None
        self._addresses: dict | None = None

    # -- child process management -----------------------------------------------------

    def _store_path(self) -> str:
        name = "ledger.wal" if self.backend == "file" else "ledger.sqlite"
        return str(self.store_dir / name)

    def _spawn(self) -> dict:
        """Start the child gateway; returns its printed address record."""
        self.store_dir.mkdir(parents=True, exist_ok=True)
        src_root = Path(__file__).resolve().parents[2]  # .../src
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src_root), env.get("PYTHONPATH")) if p
        )
        self._child = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.gateway",
                "--store",
                self._store_path(),
                "--backend",
                self.backend,
                "--fsync",
                self.fsync,
                "--supervise",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        line = self._read_line(self._child, self.boot_timeout)
        try:
            record = json.loads(line)
        except ValueError:
            raise StoreError(f"child gateway printed no address record: {line!r}")
        self._addresses = record
        return record

    @staticmethod
    def _read_line(child: subprocess.Popen, timeout: float) -> str:
        """One stdout line from the child, with a hard timeout."""
        out: list[str] = []

        def _read() -> None:
            assert child.stdout is not None
            out.append(child.stdout.readline().decode("utf-8", "replace"))

        reader = threading.Thread(target=_read, daemon=True)
        reader.start()
        reader.join(timeout)
        if not out or not out[0]:
            child.kill()
            raise StoreError("child gateway did not start within the timeout")
        return out[0]

    def _control(self, request: dict) -> dict:
        from repro.gateway.control_plane import control_request

        assert self._addresses is not None
        host, port = self._addresses["control"]
        return control_request((host, port), request, timeout=self.io_timeout)

    def _kill(self) -> None:
        """SIGKILL the child — the crash under test."""
        if self._child is not None:
            self._child.kill()
            self._child.wait(timeout=self.io_timeout)
            self._child = None
            self._addresses = None

    def _shutdown(self) -> None:
        """Graceful exit: SIGTERM drives the child's drain path."""
        if self._child is None:
            return
        self._child.send_signal(signal.SIGTERM)
        try:
            self._child.wait(timeout=self.io_timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung child
            self._child.kill()
            self._child.wait(timeout=self.io_timeout)
        self._child = None
        self._addresses = None

    # -- one cycle ----------------------------------------------------------------------

    def _ensure_session(self) -> dict:
        """Deploy the echo chain unless recovery already restored it."""
        sessions = self._control({"op": "sessions"})
        keys = {s.get("session") for s in sessions.get("sessions", ())}
        if self.session_key in keys:
            return {"ok": True, "session": self.session_key, "recovered": True}
        reply = self._control(
            {
                "op": "deploy",
                "mcl": self.mcl,
                "session": self.session_key,
                "scheduler": self.scheduler,
            }
        )
        if not reply.get("ok"):
            raise StoreError(f"deploy failed in the child gateway: {reply}")
        return reply

    def _send_burst(self, sent: int, ack_target: int) -> int:
        """Send ``sent`` frames, read echoes until ``ack_target``; returns acks."""
        assert self._addresses is not None
        host, port = self._addresses["data"]
        acked = 0
        assembler = FrameAssembler()
        with socket.create_connection((host, port), timeout=self.io_timeout) as sock:
            for i in range(sent):
                message = MimeMessage(
                    "application/octet-stream", f"crash-{i}".encode()
                )
                message.headers.session = self.session_key
                sock.sendall(serialize_message(message))
            deadline = time.monotonic() + self.io_timeout
            while acked < ack_target and time.monotonic() < deadline:
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    break
                if not chunk:
                    break
                acked += len(assembler.feed(chunk))
        return acked

    def _await_balance(self, timeout: float = 10.0) -> dict:
        """Poll reconciliation until the equation balances (or timeout)."""
        deadline = time.monotonic() + timeout
        reply: dict = {}
        while time.monotonic() < deadline:
            reply = self._control({"op": "recovery", "reconcile": True})
            reconcile = reply.get("reconcile") or {}
            if reconcile.get("balanced"):
                return reply
            time.sleep(0.05)
        return reply

    # -- the run ------------------------------------------------------------------------

    def run(self) -> CrashReport:
        """Execute every kill/restart cycle; returns the verdict."""
        report = CrashReport(backend=self.backend, fsync=self.fsync, seed=self.seed)
        began = time.perf_counter()
        try:
            for cycle in range(self.cycles):
                boot = self._spawn()
                restored = int(boot.get("recovered", 0))
                self._ensure_session()
                recovery = self._control({"op": "recovery"})
                frozen = sum(
                    s.get("in_flight", 0)
                    for s in (recovery.get("recovery") or {}).get("sessions", ())
                    if s.get("restored")
                )
                # leave a seeded amount in flight when the kill lands
                ack_target = self.rng.randint(1, max(1, self.burst // 2))
                acked = self._send_burst(self.burst, ack_target)
                report.cycles.append(
                    CrashCycle(
                        cycle=cycle,
                        sent=self.burst,
                        acked=acked,
                        restored=restored,
                        recovered_in_flight=frozen,
                    )
                )
                report.sent_total += self.burst
                report.acked_total += acked
                self._kill()
            # the generation that answers for all the dead ones
            self._spawn()
            self._ensure_session()
            final = self._await_balance()
            reconcile = final.get("reconcile") or {}
            report.balanced = bool(reconcile.get("balanced"))
            report.missing = int(reconcile.get("missing", 0))
            report.delivered_total = sum(
                s.get("delivered", 0) for s in reconcile.get("sessions", ())
            )
            report.lost_acked = max(0, report.acked_total - report.delivered_total)
            self._shutdown()
        finally:
            if self._child is not None:
                self._child.kill()
                self._child.wait()
                self._child = None
        report.wall_s = time.perf_counter() - began
        return report
