"""The gateway ledger: lifecycle events over a :class:`StateStore`.

The :class:`Ledger` is the write side of the durable state plane.  The
gateway appends small JSON records as sessions live — deployments,
counter deltas, dead letters, retry schedules, last-known-good
adoptions — and after a crash :func:`fold` replays them back into
per-session :class:`SessionFold` state the
:class:`~repro.store.recovery.RecoveryManager` can act on.

**The counter-delta model.**  Admission and delivery are *not* logged
per message — that would double the hot-path work and still drift from
the live invariant, because shed/abandon/fault paths admit to the pool
without crossing a single choke point.  Instead each
:class:`~repro.gateway.session.GatewaySession` mirrors its stream's
counters into one ``counters`` record per pump batch, carrying the
**deltas** since the previous mirror.  Folding the deltas reproduces
exactly the totals the live conservation checker sees, so the
cross-crash equation::

    admitted == delivered + absorbed + dead_lettered + dropped
                + resident + recovered_in_flight

balances by construction: the fold's running in-flight tally must equal
live pool residency at quiescence, and whatever was in flight when a
process died is frozen into ``recovered_in_flight`` by the ``recovered``
record the next generation writes.

Per-message records exist only on the *fault* path, where the message
payload itself must survive: ``dead_letter`` and ``retry_scheduled``
carry the serialised frame (base64) so recovery can re-park and
re-inject real bytes, not just counts.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field

from repro.store.base import StateStore


def _encode_frame(frame: bytes | None) -> str | None:
    """Encode a wire frame for JSON transport (None passes through)."""
    if frame is None:
        return None
    return base64.b64encode(frame).decode("ascii")


def _decode_frame(text: str | None) -> bytes | None:
    """Inverse of :func:`_encode_frame`."""
    if text is None:
        return None
    return base64.b64decode(text.encode("ascii"))


@dataclass
class ParkedRecord:
    """A dead letter as the ledger remembers it (frame included)."""

    msg_id: str
    stream: str
    reason: str
    frame_b64: str | None

    @property
    def frame(self) -> bytes | None:
        """The serialised wire frame, decoded back to bytes."""
        return _decode_frame(self.frame_b64)


@dataclass
class RetryRecord:
    """A scheduled-but-unsettled retry as the ledger remembers it."""

    msg_id: str
    instance: str
    port: str
    attempt: int
    frame_b64: str | None

    @property
    def frame(self) -> bytes | None:
        """The serialised wire frame, decoded back to bytes."""
        return _decode_frame(self.frame_b64)


@dataclass
class SessionFold:
    """Everything the ledger knows about one session after a replay."""

    session: str
    #: (mcl source, scheduler name) from the last ``deployed`` record
    composition: tuple[str, str] | None = None
    #: True once an operator deliberately ran the ``undeploy`` verb
    undeployed: bool = False
    #: last adopted last-known-good epoch / MCL (None once retired)
    lkg_epoch: int | None = None
    lkg_mcl: str | None = None
    #: cumulative conservation totals folded from ``counters`` deltas
    admitted: int = 0
    delivered: int = 0
    absorbed: int = 0
    dead_lettered: int = 0
    dropped: int = 0
    #: in-flight tallies frozen by previous generations' ``recovered`` records
    recovered_in_flight: int = 0
    #: how many ``recovered`` records (process generations) folded in
    recoveries: int = 0
    #: in-flight since the last recovery point (admission minus outflow)
    running_in_flight: int = 0
    #: dead letters still parked (msg_id → record with frame)
    parked: dict[str, ParkedRecord] = field(default_factory=dict)
    #: retries scheduled but not settled before the crash
    pending_retries: dict[str, RetryRecord] = field(default_factory=dict)

    @property
    def in_flight(self) -> int:
        """Messages admitted since the last recovery point with no fate yet."""
        return self.running_in_flight

    def balances(self, resident: int) -> bool:
        """Whether the cross-crash conservation equation holds.

        ``resident`` is the live pool residency for this session's
        stream.  By construction ``running_in_flight`` is admitted minus
        every recorded fate, so the equation reduces to ``resident ==
        running_in_flight``; both forms are checked for belt and braces.
        """
        total = (
            self.delivered + self.absorbed + self.dead_lettered
            + self.dropped + resident + self.recovered_in_flight
        )
        return self.admitted == total and resident == self.running_in_flight


@dataclass
class LedgerFold:
    """The full result of replaying a ledger: per-session folds."""

    sessions: dict[str, SessionFold] = field(default_factory=dict)
    #: total records replayed
    records: int = 0

    def session(self, key: str) -> SessionFold:
        """The fold for ``key``, created empty on first touch."""
        if key not in self.sessions:
            self.sessions[key] = SessionFold(session=key)
        return self.sessions[key]

    def recoverable(self) -> list[SessionFold]:
        """Sessions worth restoring: deployed and not deliberately undeployed."""
        return [
            f for f in self.sessions.values()
            if f.composition is not None and not f.undeployed
        ]


@dataclass
class SessionBalance:
    """One session's line in a :class:`CrossCrashReport`."""

    session: str
    admitted: int
    delivered: int
    absorbed: int
    dead_lettered: int
    dropped: int
    resident: int
    recovered_in_flight: int
    balanced: bool
    #: admissions with no recorded fate and no live residency (should be 0)
    missing: int


@dataclass
class CrossCrashReport:
    """Conservation reconciliation across every crash in the ledger."""

    sessions: list[SessionBalance] = field(default_factory=list)

    @property
    def balanced(self) -> bool:
        """True when every session's equation holds."""
        return all(row.balanced for row in self.sessions)

    @property
    def missing(self) -> int:
        """Total unexplained admissions across all sessions."""
        return sum(row.missing for row in self.sessions)

    def describe(self) -> dict:
        """A JSON-ready rendering (the ``recovery`` verb's payload)."""
        return {
            "balanced": self.balanced,
            "missing": self.missing,
            "sessions": [
                {
                    "session": row.session,
                    "admitted": row.admitted,
                    "delivered": row.delivered,
                    "absorbed": row.absorbed,
                    "dead_lettered": row.dead_lettered,
                    "dropped": row.dropped,
                    "resident": row.resident,
                    "recovered_in_flight": row.recovered_in_flight,
                    "balanced": row.balanced,
                    "missing": row.missing,
                }
                for row in self.sessions
            ],
        }


def fold(records) -> LedgerFold:
    """Fold an iterable of ledger records into per-session state.

    Unknown event types are ignored (forward compatibility); malformed
    records missing their session key are skipped rather than fatal —
    the ledger is a recovery aid, not a source of new failure modes.
    """
    out = LedgerFold()
    for record in records:
        out.records += 1
        ev = record.get("ev")
        key = record.get("session")
        if not isinstance(key, str):
            continue
        f = out.session(key)
        if ev == "deployed":
            f.composition = (str(record.get("mcl", "")), str(record.get("scheduler", "")))
            f.undeployed = False
        elif ev == "undeployed":
            f.undeployed = True
        elif ev == "counters":
            admitted = int(record.get("admitted", 0))
            delivered = int(record.get("delivered", 0))
            absorbed = int(record.get("absorbed", 0))
            dead = int(record.get("dead_letters", 0))
            dropped = int(record.get("dropped", 0))
            f.admitted += admitted
            f.delivered += delivered
            f.absorbed += absorbed
            f.dead_lettered += dead
            f.dropped += dropped
            f.running_in_flight += admitted - (delivered + absorbed + dead + dropped)
        elif ev == "dead_letter":
            msg_id = str(record.get("msg_id"))
            f.parked[msg_id] = ParkedRecord(
                msg_id=msg_id,
                stream=str(record.get("stream", "")),
                reason=str(record.get("reason", "")),
                frame_b64=record.get("frame"),
            )
        elif ev == "dead_letter_evicted":
            f.parked.pop(str(record.get("msg_id")), None)
        elif ev == "requeue":
            # The requeued copy is a fresh admission (its counters flow
            # through the mirror); only the parked entry goes away.
            f.parked.pop(str(record.get("msg_id")), None)
        elif ev == "retry_scheduled":
            msg_id = str(record.get("msg_id"))
            f.pending_retries[msg_id] = RetryRecord(
                msg_id=msg_id,
                instance=str(record.get("instance", "")),
                port=str(record.get("port", "")),
                attempt=int(record.get("attempt", 0)),
                frame_b64=record.get("frame"),
            )
        elif ev == "retry_settled":
            f.pending_retries.pop(str(record.get("msg_id")), None)
        elif ev == "lkg":
            action = record.get("action")
            if action == "adopted":
                f.lkg_epoch = int(record.get("epoch", 0))
                f.lkg_mcl = record.get("mcl")
            elif action == "retired":
                f.lkg_epoch = None
                f.lkg_mcl = None
            # "taken" (a rollback consumed the LKG) leaves it adopted.
        elif ev == "recovered":
            # A new process generation adopted this session: whatever
            # was in flight at the kill has its fate frozen here, and
            # the pending retries were re-injected as fresh admissions.
            f.recovered_in_flight += f.running_in_flight
            f.running_in_flight = 0
            f.pending_retries.clear()
            f.recoveries += 1
    return out


class Ledger:
    """Append-side API over a :class:`StateStore` (schema in the module doc)."""

    #: guards let hot paths skip building records for the null twin
    enabled = True

    def __init__(self, store: StateStore) -> None:
        self.store = store

    # -- session lifecycle ----------------------------------------------------------

    def deployed(self, session: str, *, mcl: str, scheduler: str) -> None:
        """Record a session deployment (composition source + scheduler)."""
        self.store.append(
            {"ev": "deployed", "session": session, "mcl": mcl, "scheduler": scheduler}
        )
        self.store.flush()

    def undeployed(self, session: str) -> None:
        """Record a *deliberate* undeploy — recovery will skip the session.

        Clean stops and drains never write this record; a session that
        merely lost its process is still recoverable.
        """
        self.store.append({"ev": "undeployed", "session": session})
        self.store.flush()

    def recovered(self, session: str, *, in_flight: int, parked: int, retries: int) -> None:
        """Record that a new generation adopted the session post-crash."""
        self.store.append(
            {
                "ev": "recovered",
                "session": session,
                "in_flight": in_flight,
                "parked": parked,
                "retries": retries,
            }
        )
        self.store.flush()

    # -- conservation counters ------------------------------------------------------

    def counters(
        self,
        session: str,
        *,
        admitted: int = 0,
        delivered: int = 0,
        absorbed: int = 0,
        dead_letters: int = 0,
        dropped: int = 0,
    ) -> None:
        """Record counter *deltas* since the session's previous mirror."""
        if not (admitted or delivered or absorbed or dead_letters or dropped):
            return
        self.store.append(
            {
                "ev": "counters",
                "session": session,
                "admitted": admitted,
                "delivered": delivered,
                "absorbed": absorbed,
                "dead_letters": dead_letters,
                "dropped": dropped,
            }
        )

    # -- fault path (frames included) ----------------------------------------------

    def dead_letter(
        self,
        session: str,
        msg_id: str,
        *,
        stream: str = "",
        reason: str = "",
        frame: bytes | None = None,
    ) -> None:
        """Record a parked dead letter, carrying its frame for re-parking."""
        self.store.append(
            {
                "ev": "dead_letter",
                "session": session,
                "msg_id": msg_id,
                "stream": stream,
                "reason": reason,
                "frame": _encode_frame(frame),
            }
        )
        self.store.flush()

    def dead_letter_evicted(self, session: str, msg_id: str) -> None:
        """Record capacity eviction of the oldest parked dead letter."""
        self.store.append(
            {"ev": "dead_letter_evicted", "session": session, "msg_id": msg_id}
        )

    def requeue(self, session: str, msg_id: str) -> None:
        """Record operator re-injection of a parked dead letter."""
        self.store.append({"ev": "requeue", "session": session, "msg_id": msg_id})
        self.store.flush()

    def retry_scheduled(
        self,
        session: str,
        msg_id: str,
        *,
        instance: str,
        port: str,
        attempt: int = 0,
        frame: bytes | None = None,
    ) -> None:
        """Record a retry schedule, carrying the frame for re-injection."""
        self.store.append(
            {
                "ev": "retry_scheduled",
                "session": session,
                "msg_id": msg_id,
                "instance": instance,
                "port": port,
                "attempt": attempt,
                "frame": _encode_frame(frame),
            }
        )

    def retry_settled(self, session: str, msg_id: str) -> None:
        """Record that a scheduled retry was re-posted (or gave up)."""
        self.store.append({"ev": "retry_settled", "session": session, "msg_id": msg_id})

    # -- last-known-good compositions ------------------------------------------------

    def lkg(self, session: str, action: str, *, epoch: int = 0, mcl: str | None = None) -> None:
        """Record an LKG transition: ``adopted`` / ``retired`` / ``taken``."""
        record: dict = {"ev": "lkg", "session": session, "action": action, "epoch": epoch}
        if mcl is not None:
            record["mcl"] = mcl
        self.store.append(record)
        self.store.flush()

    # -- plumbing -------------------------------------------------------------------

    def flush(self) -> None:
        """Flush the backing store (per its fsync policy)."""
        self.store.flush()

    def close(self) -> None:
        """Flush and close the backing store."""
        self.store.close()

    def fold(self) -> LedgerFold:
        """Replay the backing store into per-session folds."""
        return fold(self.store.replay())


class NullLedger:
    """Disabled twin of :class:`Ledger`: every method is a no-op."""

    enabled = False
    store = None

    def deployed(self, session: str, *, mcl: str, scheduler: str) -> None:
        """No-op."""

    def undeployed(self, session: str) -> None:
        """No-op."""

    def recovered(self, session: str, *, in_flight: int, parked: int, retries: int) -> None:
        """No-op."""

    def counters(self, session: str, **deltas: int) -> None:
        """No-op."""

    def dead_letter(self, session: str, msg_id: str, **info) -> None:
        """No-op."""

    def dead_letter_evicted(self, session: str, msg_id: str) -> None:
        """No-op."""

    def requeue(self, session: str, msg_id: str) -> None:
        """No-op."""

    def retry_scheduled(self, session: str, msg_id: str, **info) -> None:
        """No-op."""

    def retry_settled(self, session: str, msg_id: str) -> None:
        """No-op."""

    def lkg(self, session: str, action: str, *, epoch: int = 0, mcl: str | None = None) -> None:
        """No-op."""

    def flush(self) -> None:
        """No-op."""

    def close(self) -> None:
        """No-op."""

    def fold(self) -> LedgerFold:
        """An empty fold (nothing was ever recorded)."""
        return LedgerFold()


#: shared disabled ledger — safe default for every ledger-aware component
NULL_LEDGER = NullLedger()
