"""Crash recovery: turn a replayed ledger back into live gateway state.

The :class:`RecoveryManager` runs when a :class:`~repro.gateway.server.
GatewayServer` with a durable ledger starts.  It folds the ledger (see
:mod:`repro.store.ledger`) and, for every session that was deployed and
never deliberately undeployed:

1. **redeploys** the session under its original key, MCL source, and
   scheduler;
2. writes the ``recovered`` record — *before* re-injecting anything, so
   the in-flight tally the dead process lost is frozen into
   ``recovered_in_flight`` and re-injections count as fresh admissions;
3. **re-parks** every still-parked dead letter into the new session
   supervisor's :class:`~repro.faults.supervisor.DeadLetterPool`, frames
   decoded from the ledger (no stats bump — the originals are already in
   the cumulative ``dead_lettered`` fold);
4. **re-injects** every retry that was scheduled but unsettled at the
   kill, through the ordinary admission path (gateway-internal headers
   stripped first — the old connection and ingress stamp died with the
   process).

:meth:`RecoveryManager.reconcile` is the checkable other half: it
mirrors live counters into the ledger, refolds, and balances the
cross-crash conservation equation per session against live pool
residency — the ``durability`` bench and the crash tests assert its
``balanced`` verdict after every kill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store.ledger import (
    CrossCrashReport,
    LedgerFold,
    SessionBalance,
    SessionFold,
)

#: admission attempts per re-injected retry before giving up (shedding)
_REINJECT_ATTEMPTS = 8


@dataclass
class SessionRecovery:
    """What recovery did (or refused to do) for one session."""

    session: str
    restored: bool
    #: why the session was skipped ("" when restored)
    reason: str = ""
    #: in-flight admissions frozen into ``recovered_in_flight``
    in_flight: int = 0
    #: dead letters re-parked into the new supervisor
    reparked: int = 0
    #: pending retries re-admitted through the ordinary path
    reinjected: int = 0
    #: pending retries that could not be re-admitted (shed, with accounting)
    reinject_failures: int = 0
    #: last adopted last-known-good epoch, for operator context
    lkg_epoch: int | None = None


@dataclass
class RecoveryReport:
    """The outcome of one :meth:`RecoveryManager.recover` pass."""

    records: int = 0
    sessions: list[SessionRecovery] = field(default_factory=list)

    @property
    def restored(self) -> int:
        """How many sessions came back."""
        return sum(1 for s in self.sessions if s.restored)

    def describe(self) -> dict:
        """A JSON-ready summary (the ``recovery`` control verb's payload)."""
        return {
            "records": self.records,
            "restored": self.restored,
            "sessions": [
                {
                    "session": s.session,
                    "restored": s.restored,
                    "reason": s.reason,
                    "in_flight": s.in_flight,
                    "reparked": s.reparked,
                    "reinjected": s.reinjected,
                    "reinject_failures": s.reinject_failures,
                    "lkg_epoch": s.lkg_epoch,
                }
                for s in self.sessions
            ],
        }


class RecoveryManager:
    """Replays a gateway's ledger into redeployed sessions (module doc)."""

    def __init__(self, gateway, ledger) -> None:
        self._gateway = gateway
        self._ledger = ledger
        #: the most recent :meth:`recover` outcome (None before the first)
        self.last_report: RecoveryReport | None = None

    # -- restart path ---------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Fold the ledger and restore every recoverable session.

        Safe to call on a fresh ledger (restores nothing) and from any
        thread that may take the gateway's deploy lock — the server runs
        it in an executor before the data plane starts listening, so
        no admissions race the re-injection pass.
        """
        fold = self._ledger.fold()
        report = RecoveryReport(records=fold.records)
        telemetry = self._gateway.telemetry
        counter = telemetry.recovery_counter if telemetry.enabled else None
        for sf in sorted(fold.recoverable(), key=lambda f: f.session):
            outcome = self._recover_session(sf)
            report.sessions.append(outcome)
            if counter is not None:
                counter("restored" if outcome.restored else "skipped").inc()
            if telemetry.enabled and outcome.restored:
                telemetry.recorder.record(
                    "session_recovered",
                    stream=outcome.session,
                    in_flight=outcome.in_flight,
                    reparked=outcome.reparked,
                    reinjected=outcome.reinjected,
                )
        self.last_report = report
        return report

    def _recover_session(self, sf: SessionFold) -> SessionRecovery:
        from repro.errors import MobiGateError

        gateway = self._gateway
        out = SessionRecovery(
            session=sf.session,
            restored=False,
            in_flight=sf.in_flight,
            lkg_epoch=sf.lkg_epoch,
        )
        if sf.session in gateway.sessions:
            out.reason = "already deployed"
            return out
        mcl, scheduler = sf.composition or ("", "")
        if not mcl:
            out.reason = "no composition recorded"
            return out
        try:
            session = gateway.deploy(
                mcl,
                session_key=sf.session,
                scheduler=scheduler or "threaded",
            )
        except MobiGateError as exc:
            out.reason = f"redeploy failed: {exc}"
            return out
        # Freeze the dead generation's in-flight tally FIRST: everything
        # admitted below (re-injections, shed failures) must land in the
        # new generation's running tally, not the frozen one.
        self._ledger.recovered(
            sf.session,
            in_flight=sf.in_flight,
            parked=len(sf.parked),
            retries=len(sf.pending_retries),
        )
        out.reparked = self._repark(session, sf)
        out.reinjected, out.reinject_failures = self._reinject(session, sf)
        session.sync_ledger()
        self._ledger.flush()
        out.restored = True
        return out

    def _repark(self, session, sf: SessionFold) -> int:
        """Re-park still-parked dead letters into the session supervisor.

        Entries go straight into the pool — *not* through the supervisor's
        dead-letter path — because their release from the old pool is
        already folded into the cumulative ``dead_lettered`` total; a
        second stats bump would unbalance the equation.
        """
        supervisor = getattr(session, "supervisor", None)
        if supervisor is None or not sf.parked:
            return 0
        from repro.faults.supervisor import DeadLetter
        from repro.mime.wire import parse_message

        reparked = 0
        for record in sf.parked.values():
            frame = record.frame
            try:
                message = parse_message(frame) if frame is not None else None
            except Exception:
                message = None  # an undecodable frame still gets its slot back
            supervisor.dead_letters.add(
                DeadLetter(
                    msg_id=record.msg_id,
                    message=message,
                    instance="",
                    port="",
                    attempts=0,
                    reason=f"recovered: {record.reason}" if record.reason else "recovered",
                )
            )
            reparked += 1
        return reparked

    def _reinject(self, session, sf: SessionFold) -> tuple[int, int]:
        """Re-admit unsettled retries through the ordinary offer path."""
        if not sf.pending_retries:
            return 0, 0
        from repro.gateway.session import (
            ADMITTED,
            FULL,
            RETRY,
            CONNECTION_HEADER,
            INGRESS_HEADER,
        )
        from repro.mime.wire import parse_message

        ok = failed = 0
        for record in sf.pending_retries.values():
            frame = record.frame
            if frame is None:
                failed += 1
                continue
            try:
                message = parse_message(frame)
            except Exception:
                failed += 1
                continue
            message.headers.remove(CONNECTION_HEADER)
            message.headers.remove(INGRESS_HEADER)
            ticket = session.offer(message)
            attempts = 0
            while ticket.status in (FULL, RETRY) and attempts < _REINJECT_ATTEMPTS:
                ticket = session.retry(ticket, message)
                attempts += 1
            if ticket.status == ADMITTED:
                ok += 1
            else:
                if ticket.status in (FULL, RETRY):
                    session.abandon(ticket, message)  # shed, with accounting
                failed += 1
        return ok, failed

    # -- the checkable half -----------------------------------------------------------

    def reconcile(self) -> CrossCrashReport:
        """Balance the cross-crash conservation equation for every session.

        Mirrors every live session's counters into the ledger, refolds,
        and checks ``admitted == delivered + absorbed + dead_lettered +
        dropped + resident + recovered_in_flight`` per session, with
        live pool residency standing in for ``resident``.  Meaningful at
        quiescence (no traffic mid-flight); ``missing`` counts
        admissions with neither a recorded fate nor live residency.
        """
        gateway = self._gateway
        for session in list(gateway.sessions.values()):
            session.sync_ledger()
        self._ledger.flush()
        fold: LedgerFold = self._ledger.fold()
        report = CrossCrashReport()
        for key in sorted(fold.sessions):
            sf = fold.sessions[key]
            live = gateway.sessions.get(key)
            resident = live.resident if live is not None else 0
            report.sessions.append(
                SessionBalance(
                    session=key,
                    admitted=sf.admitted,
                    delivered=sf.delivered,
                    absorbed=sf.absorbed,
                    dead_lettered=sf.dead_lettered,
                    dropped=sf.dropped,
                    resident=resident,
                    recovered_in_flight=sf.recovered_in_flight,
                    balanced=sf.balances(resident),
                    missing=sf.running_in_flight - resident,
                )
            )
        return report
