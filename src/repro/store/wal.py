"""Durable :class:`~repro.store.base.StateStore` backends.

Two write-ahead implementations of the append-only contract:

* :class:`FileWALStore` — one CRC-framed JSON line per record
  (``"%08x %s\\n" % (crc32(json), json)``).  Appends buffer in the
  process; ``flush`` pushes them to the OS and (under the ``batch``
  policy) fsyncs.  Replay verifies each line's CRC and **stops at the
  first bad or partial line**: a torn tail is what ``kill -9`` leaves
  behind mid-write, so everything before it is trusted and everything
  after discarded (counted in :attr:`~repro.store.base.StateStore.torn`).
* :class:`SqliteWALStore` — a single ``ledger`` table in an sqlite
  database running in its own WAL journal mode.  sqlite does the
  torn-write handling; the fsync policy maps onto ``PRAGMA synchronous``.

Both are thread-safe behind the store lock and honour the shared
``fsync`` policies (``always`` / ``batch`` / ``never``) from
:data:`~repro.store.base.FSYNC_POLICIES`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import zlib
from collections.abc import Iterator

from repro.errors import StoreError
from repro.store.base import StateStore


class FileWALStore(StateStore):
    """Append-only CRC-framed JSONL write-ahead log on the filesystem.

    Each record is serialised to one line ``<crc32-hex8> <json>``; the
    CRC covers the JSON text so replay can reject torn or bit-flipped
    lines without parsing them.  The file is opened in append mode, so
    several process generations can share one ledger path.
    """

    backend = "file"
    durable = True

    def __init__(self, path: str, *, fsync: str = "batch") -> None:
        super().__init__()
        self.path = os.fspath(path)
        self.fsync = fsync
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # Count the records already on disk so sequence numbers keep
        # rising across restarts — and cut off the torn tail a crashed
        # writer left, or the next append would concatenate onto the
        # partial line and corrupt itself.
        self._seq, valid_bytes = self._scan()
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        if size > valid_bytes:
            with open(self.path, "rb+") as fh:
                fh.truncate(valid_bytes)
        self._fh = open(self.path, "a", encoding="utf-8")

    def _scan(self) -> tuple[int, int]:
        """(record count, byte length of the valid prefix) on disk."""
        count = offset = 0
        try:
            fh = open(self.path, "rb")
        except FileNotFoundError:
            return 0, 0
        with fh:
            for raw in fh:
                if self._parse_line(raw.decode("utf-8", "replace")) is None:
                    self.torn += 1
                    break
                count += 1
                offset += len(raw)
        return count, offset

    @staticmethod
    def _parse_line(raw: str) -> dict | None:
        """Decode one CRC-framed line; None when torn or corrupt."""
        if not raw.endswith("\n") or len(raw) < 10 or raw[8] != " ":
            return None
        crc_text, line = raw[:8], raw[9:-1]
        try:
            expected = int(crc_text, 16)
        except ValueError:
            return None
        if zlib.crc32(line.encode("utf-8")) & 0xFFFFFFFF != expected:
            return None
        try:
            record = json.loads(line)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    def append(self, record: dict) -> int:
        """Write one CRC-framed line; returns the record's sequence number."""
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        crc = zlib.crc32(line.encode("utf-8")) & 0xFFFFFFFF
        framed = f"{crc:08x} {line}\n"
        with self._lock:
            self._require_open()
            self._fh.write(framed)
            self.appends += 1
            self._seq += 1
            if self.fsync == "always":
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self.fsyncs += 1
            return self._seq

    def flush(self) -> None:
        """Push buffered lines to the OS; fsync under the batch policy."""
        with self._lock:
            self._require_open()
            self._fh.flush()
            self.flushes += 1
            if self.fsync == "batch":
                os.fsync(self._fh.fileno())
                self.fsyncs += 1

    def replay(self) -> Iterator[dict]:
        """Yield records in append order, stopping at the first torn line."""
        with self._lock:
            if not self._closed:
                # Make buffered appends visible to the read handle.
                self._fh.flush()
        for record in self._replay_lines():
            self.replayed += 1
            yield record

    def _replay_lines(self) -> Iterator[dict]:
        """Parse CRC-framed lines off disk; stop at the first damaged one."""
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with fh:
            for raw in fh:
                record = self._parse_line(raw)
                if record is None:
                    self.torn += 1
                    return  # torn tail: a partial final write
                yield record

    def truncate(self) -> None:
        """Discard every record and reset the sequence counter."""
        with self._lock:
            self._require_open()
            self._fh.truncate(0)
            self._fh.seek(0)
            self._fh.flush()
            self._seq = 0

    def close(self) -> None:
        """Flush, fsync (unless policy ``never``), and close the handle."""
        with self._lock:
            if self._closed:
                return
            self._fh.flush()
            if self.fsync != "never":
                os.fsync(self._fh.fileno())
                self.fsyncs += 1
            self._fh.close()
            self._closed = True


class SqliteWALStore(StateStore):
    """Write-ahead ledger in a single-table sqlite database.

    The database runs in sqlite's own WAL journal mode, which gives
    atomic, torn-write-safe appends without hand-rolled framing.  The
    store-level fsync policy maps to ``PRAGMA synchronous``: ``always``
    → FULL with a commit per append, ``batch`` → NORMAL with commits on
    :meth:`flush`, ``never`` → OFF.
    """

    backend = "sqlite"
    durable = True

    _SYNCHRONOUS = {"always": "FULL", "batch": "NORMAL", "never": "OFF"}

    def __init__(self, path: str, *, fsync: str = "batch") -> None:
        super().__init__()
        self.path = os.fspath(path)
        self.fsync = fsync
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # The store lock serialises all access, so sharing the
        # connection across the gateway's pump threads is safe.
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA synchronous={self._SYNCHRONOUS[fsync]}")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS ledger ("
                "seq INTEGER PRIMARY KEY AUTOINCREMENT, record TEXT NOT NULL)"
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            self._conn.close()
            raise StoreError(f"cannot open sqlite ledger at {self.path}: {exc}") from exc

    def append(self, record: dict) -> int:
        """Insert one record row; returns its sqlite rowid as the sequence."""
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            self._require_open()
            cursor = self._conn.execute("INSERT INTO ledger (record) VALUES (?)", (line,))
            self.appends += 1
            if self.fsync == "always":
                self._conn.commit()
                self.fsyncs += 1
            return int(cursor.lastrowid or 0)

    def flush(self) -> None:
        """Commit the open transaction (making batched appends durable)."""
        with self._lock:
            self._require_open()
            self._conn.commit()
            self.flushes += 1
            if self.fsync != "never":
                self.fsyncs += 1

    def replay(self) -> Iterator[dict]:
        """Yield records in sequence order; skips undecodable rows."""
        with self._lock:
            self._require_open()
            self._conn.commit()
            rows = self._conn.execute("SELECT record FROM ledger ORDER BY seq").fetchall()
        for (line,) in rows:
            try:
                record = json.loads(line)
            except ValueError:
                self.torn += 1
                continue
            self.replayed += 1
            yield record

    def truncate(self) -> None:
        """Delete every ledger row."""
        with self._lock:
            self._require_open()
            self._conn.execute("DELETE FROM ledger")
            self._conn.commit()

    def close(self) -> None:
        """Commit and close the sqlite connection."""
        with self._lock:
            if self._closed:
                return
            self._conn.commit()
            self._conn.close()
            self._closed = True
