"""The built-in streamlet library — the service entities of the thesis.

Section 4.3 (datatype-specific distillation) and section 7.5 (web
acceleration) name these services; each module implements the server-side
streamlet, its MCL interface definition, and — where the transformation is
reversible — the client-side peer:

================  =====================================  ==============
streamlet          role                                   peer
================  =====================================  ==============
redirector         no-op measurement streamlet (§7.2)     —
switch             split multipart by semantic type       —
merge              re-join tagged parts                   —
img_down_sample    lossy image distillation               —
map_to_16_grays    shallow-grayscale transcoding          —
gif2jpeg           palette → transform-coded image        —
postscript2text    strip formatting, keep text            —
text_compress      LZSS+Huffman compression               text_decompress
encryptor          keyed stream cipher                    decryptor
cache              duplicate suppression                  client_cache
power_saving       message bundling (radio sleep)         unbundler
communicator       terminal: hand messages to the link    —
================  =====================================  ==============

:func:`register_builtin_streamlets` advertises everything into a
:class:`~repro.runtime.directory.StreamletDirectory`.
"""

from repro.streamlets.registry import (
    register_builtin_streamlets,
    builtin_definitions,
)
from repro.streamlets.basic import Redirector, REDIRECTOR_DEF
from repro.streamlets.switch import ContentSwitch, SWITCH_DEF
from repro.streamlets.merge import Merge, MERGE_DEF
from repro.streamlets.image_ops import (
    ImageDownSample,
    MapTo16Grays,
    Gif2Jpeg,
    IMG_DOWN_SAMPLE_DEF,
    MAP_TO_16_GRAYS_DEF,
    GIF2JPEG_DEF,
)
from repro.streamlets.text_ops import Postscript2Text, POSTSCRIPT2TEXT_DEF
from repro.streamlets.compress import TextCompress, TEXT_COMPRESS_DEF
from repro.streamlets.crypto import Encryptor, ENCRYPTOR_DEF
from repro.streamlets.cache import CacheStreamlet, CACHE_DEF
from repro.streamlets.power import PowerSaving, POWER_SAVING_DEF
from repro.streamlets.communicator import Communicator, COMMUNICATOR_DEF

__all__ = [
    "register_builtin_streamlets",
    "builtin_definitions",
    "Redirector",
    "ContentSwitch",
    "Merge",
    "ImageDownSample",
    "MapTo16Grays",
    "Gif2Jpeg",
    "Postscript2Text",
    "TextCompress",
    "Encryptor",
    "CacheStreamlet",
    "PowerSaving",
    "Communicator",
    "REDIRECTOR_DEF",
    "SWITCH_DEF",
    "MERGE_DEF",
    "IMG_DOWN_SAMPLE_DEF",
    "MAP_TO_16_GRAYS_DEF",
    "GIF2JPEG_DEF",
    "POSTSCRIPT2TEXT_DEF",
    "TEXT_COMPRESS_DEF",
    "ENCRYPTOR_DEF",
    "CACHE_DEF",
    "POWER_SAVING_DEF",
    "COMMUNICATOR_DEF",
]
