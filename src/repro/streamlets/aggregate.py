"""The aggregator: "collecting and collating data from various sources"
(section 1.2.1's second service-entity kind).

Collects messages arriving on its input ports into a window (size from
``ctx.params['window']``, default 5) and emits one collated
``multipart/mixed`` digest per full window.  Unlike :mod:`merge` — which
re-joins parts of one original message by group id — the aggregator
combines *independent* messages (stock ticks, sensor readings, news
items) so one wireless burst replaces many.

``flush()`` emits a partial window at stream teardown/drain time.
"""

from __future__ import annotations

from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY, MULTIPART_MIXED
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext

AGGREGATE_COUNT = "X-MobiGATE-Aggregated"

AGGREGATOR_DEF = ast.StreamletDef(
    name="aggregator",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi1", ANY),
        ast.PortDecl(ast.PortDirection.IN, "pi2", ANY),
        ast.PortDecl(ast.PortDirection.OUT, "po", MULTIPART_MIXED),
    ),
    kind=ast.StreamletKind.STATEFUL,
    library="general/aggregator",
    description="collect and collate data from various sources",
)


class Aggregator(Streamlet):
    """Collect independent messages into collated multipart digests."""
    def __init__(self, instance_id: str, definition: ast.StreamletDef):
        super().__init__(instance_id, definition)
        self._window: list[MimeMessage] = []

    def reset(self) -> None:
        self._window.clear()

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        window_size = int(ctx.params.get("window", 5))
        if window_size <= 1:
            return [("po", message)]
        self._window.append(message)
        if len(self._window) < window_size:
            return []
        return self._emit()

    def _emit(self) -> Emission:
        if not self._window:
            return []
        parts = list(self._window)
        self._window.clear()
        digest = MimeMessage.multipart(parts, session=parts[0].session)
        digest.headers.set(AGGREGATE_COUNT, str(len(parts)))
        return [("po", digest)]

    def flush(self) -> Emission:
        """Emit a partial window (stream teardown / drain)."""
        return self._emit()

    @property
    def pending(self) -> int:
        return len(self._window)
