"""The redirector — the section 7.2 measurement streamlet.

"Its primary logic is to read and parse incoming messages from its input
port, encapsulating the necessary headers and sending the messages to its
relevant output port."  It carries the overheads common to every streamlet
(message parse + queue hop) and nothing else, so a chain of N redirectors
isolates the per-streamlet cost of Figure 7-2.
"""

from __future__ import annotations

from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.runtime.streamlet import ForwardingStreamlet

REDIRECTOR_DEF = ast.StreamletDef(
    name="redirector",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", ANY),
        ast.PortDecl(ast.PortDirection.OUT, "po", ANY),
    ),
    kind=ast.StreamletKind.STATELESS,
    library="general/redirector",
    description="parse and forward unchanged; the overhead-measurement streamlet",
)


class Redirector(ForwardingStreamlet):
    """Alias of the runtime's forwarding streamlet with its MCL identity."""
