"""The cache streamlet: "suitable caching to minimize the traffic
transiting across a wireless network" (section 1.2.1).

Server side: remembers the payload digest per resource id
(``X-MobiGATE-Resource``).  When the same resource arrives again with an
unchanged digest, the body is replaced by an empty ``X-MobiGATE-Cache:
HIT`` notification — only headers cross the wireless link.  The client
peer (``client_cache``) stores delivered payloads and reconstitutes HIT
messages from its local copy.

Messages without a resource id pass through untouched (nothing to key on).
"""

from __future__ import annotations

import hashlib

from repro.errors import CodecError
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.mime.message import MimeMessage, payload_size
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext

RESOURCE_HEADER = "X-MobiGATE-Resource"
CACHE_HEADER = "X-MobiGATE-Cache"
PEER_CLIENT_CACHE = "client_cache"

CACHE_DEF = ast.StreamletDef(
    name="cache",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", ANY),
        ast.PortDecl(ast.PortDirection.OUT, "po", ANY),
    ),
    kind=ast.StreamletKind.STATEFUL,
    library="general/cache",
    description="suppress retransmission of unchanged resources",
)


def _digest(message: MimeMessage) -> str:
    body = message.body
    if isinstance(body, str):
        data = body.encode("utf-8")
    elif isinstance(body, bytes | bytearray):
        data = bytes(body)
    else:
        # structured payloads: digest their size+type as a cheap proxy
        data = f"{type(body).__name__}:{payload_size(body)}".encode()
    return hashlib.sha256(data).hexdigest()


class CacheStreamlet(Streamlet):
    """Suppress retransmission of unchanged resources (server half)."""
    peer_id = PEER_CLIENT_CACHE

    def __init__(self, instance_id: str, definition: ast.StreamletDef):
        super().__init__(instance_id, definition)
        self._seen: dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._seen.clear()
        self.hits = 0
        self.misses = 0

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        resource = message.headers.get(RESOURCE_HEADER)
        if resource is None:
            return [("po", message)]
        digest = _digest(message)
        if self._seen.get(resource) == digest:
            self.hits += 1
            message.set_body(b"")
            message.headers.set(CACHE_HEADER, "HIT")
        else:
            self.misses += 1
            self._seen[resource] = digest
            message.headers.set(CACHE_HEADER, "MISS")
        return [("po", message)]


class ClientCacheStore:
    """The client-side half: reconstitute HIT notifications."""

    def __init__(self):
        self._store: dict[str, tuple[object, str]] = {}

    def apply(self, message: MimeMessage) -> None:
        """Store MISS payloads; reconstitute HIT notifications in place."""
        resource = message.headers.get(RESOURCE_HEADER)
        status = message.headers.get(CACHE_HEADER)
        if resource is None or status is None:
            return
        if status == "HIT":
            try:
                body, content_type = self._store[resource]
            except KeyError:
                raise CodecError(
                    f"cache HIT for unknown resource {resource!r}; client cache cold"
                ) from None
            message.set_body(body, content_type)
        else:
            self._store[resource] = (message.body, str(message.content_type))
        message.headers.remove(CACHE_HEADER)
