"""The communicator: "sending messages onto the network" (section 7.5).

The terminal streamlet of a server-side stream.  It hands each message to
a transport callable — in this reproduction, the network emulator's
``send`` — and emits nothing, so its definition has no output ports and
the open-circuit analysis treats it as a legitimate sink.

The transport is injected through ``ctx.params['transport']`` (set by the
emulator after deployment); without one, the communicator counts the
message as delivered-to-nowhere, which keeps unit tests hermetic.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext

#: three wildcard input ports so branched compositions (image path, text
#: path, ...) can all terminate at one communicator; no output ports, so
#: the open-circuit analysis treats it as a legitimate sink
COMMUNICATOR_DEF = ast.StreamletDef(
    name="communicator",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi1", ANY),
        ast.PortDecl(ast.PortDirection.IN, "pi2", ANY),
        ast.PortDecl(ast.PortDirection.IN, "pi3", ANY),
    ),
    kind=ast.StreamletKind.STATEFUL,
    library="net/communicator",
    description="terminal streamlet: hand messages to the wireless link",
)

Transport = Callable[[MimeMessage], None]


class Communicator(Streamlet):
    """Terminal streamlet: hand each message to the injected transport."""
    def __init__(self, instance_id: str, definition: ast.StreamletDef):
        super().__init__(instance_id, definition)
        self.sent = 0
        self.bytes_sent = 0

    def reset(self) -> None:
        self.sent = 0
        self.bytes_sent = 0

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        transport: Transport | None = ctx.params.get("transport")
        self.sent += 1
        self.bytes_sent += message.total_size()
        if transport is not None:
            transport(message)
        return []
