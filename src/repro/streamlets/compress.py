"""The Text Compressor — "a generic text compressor ... with the potential
to reduce the data size by up to 75%" (section 7.5).

Compression happens in place: the payload becomes the MGTC container and a
``Content-Encoding: mobigate-lzh`` header marks it.  The client peer
(``text_decompress``) reverses it, keyed by the peer id the runtime pushes
(section 6.5).  Incompressible payloads are sent as stored-mode containers,
so the peer's behaviour is uniform.
"""

from __future__ import annotations

from repro.codecs.textcodec import TextCodec
from repro.errors import CodecError
from repro.mcl import astnodes as ast
from repro.mime.mediatype import TEXT
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext

CONTENT_ENCODING = "Content-Encoding"
ENCODING_NAME = "mobigate-lzh"
PEER_TEXT_DECOMPRESS = "text_decompress"

TEXT_COMPRESS_DEF = ast.StreamletDef(
    name="text_compress",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", TEXT),
        ast.PortDecl(ast.PortDirection.OUT, "po", TEXT),
    ),
    kind=ast.StreamletKind.STATELESS,
    library="text/compress",
    description="a generic text compressor (LZSS + canonical Huffman)",
)


class TextCompress(Streamlet):
    """Compress text payloads in place (LZSS + Huffman container)."""
    peer_id = PEER_TEXT_DECOMPRESS

    def __init__(self, instance_id: str, definition: ast.StreamletDef):
        super().__init__(instance_id, definition)
        self._codec = TextCodec()
        self.bytes_in = 0
        self.bytes_out = 0

    def reset(self) -> None:
        self.bytes_in = 0
        self.bytes_out = 0

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        from repro.streamlets.customize import NO_COMPRESS_HEADER

        if message.headers.get(NO_COMPRESS_HEADER) is not None:
            return [("po", message)]  # per-user opt-out (customizer, §1.2.1)
        body = message.body
        if isinstance(body, str):
            body = body.encode("utf-8")
        if not isinstance(body, bytes | bytearray):
            raise CodecError(
                f"text_compress received undecodable {message.content_type} payload"
            )
        if message.headers.get(CONTENT_ENCODING) == ENCODING_NAME:
            raise CodecError(f"{self.instance_id}: payload is already compressed")
        compressed = self._codec.compress(bytes(body))
        self.bytes_in += len(body)
        self.bytes_out += len(compressed)
        message.set_body(compressed)
        message.headers.set(CONTENT_ENCODING, ENCODING_NAME)
        return [("po", message)]


def decompress_message(message: MimeMessage) -> None:
    """The peer transformation (used by the client's text_decompress)."""
    if message.headers.get(CONTENT_ENCODING) != ENCODING_NAME:
        raise CodecError("message is not mobigate-lzh encoded")
    body = message.body
    if not isinstance(body, bytes | bytearray):
        raise CodecError("compressed payload must be bytes")
    message.set_body(TextCodec().decompress(bytes(body)))
    message.headers.remove(CONTENT_ENCODING)
