"""Encryption streamlet and its client peer transformation.

Encrypts the payload with the from-scratch stream cipher; a per-message
nonce travels in ``X-MobiGATE-Nonce``.  The shared key is configuration
(``ctx.params['key']`` server-side; the client pool is constructed with
the same key) — key distribution is outside the thesis's scope and ours.
"""

from __future__ import annotations

from repro.codecs.cipher import StreamCipher
from repro.errors import CodecError
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext
from repro.util.ids import IdGenerator

NONCE_HEADER = "X-MobiGATE-Nonce"
PEER_DECRYPTOR = "decryptor"
DEFAULT_KEY = b"mobigate-demo-key"

ENCRYPTOR_DEF = ast.StreamletDef(
    name="encryptor",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", ANY),
        ast.PortDecl(ast.PortDirection.OUT, "po", ANY),
    ),
    kind=ast.StreamletKind.STATELESS,
    library="security/encryptor",
    description="encrypt payloads with a keyed stream cipher",
)

_nonces = IdGenerator("nonce")


def _as_bytes(message: MimeMessage) -> bytes:
    body = message.body
    if isinstance(body, str):
        return body.encode("utf-8")
    if isinstance(body, bytes | bytearray):
        return bytes(body)
    raise CodecError(f"encryptor cannot process {type(body).__name__} payloads")


class Encryptor(Streamlet):
    """Encrypt payloads with the keyed stream cipher; nonces stack per layer."""
    peer_id = PEER_DECRYPTOR

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        key = ctx.params.get("key", DEFAULT_KEY)
        if isinstance(key, str):
            key = key.encode("utf-8")
        nonce = _nonces.next().encode("ascii")
        cipher = StreamCipher(key)
        message.set_body(cipher.encrypt(_as_bytes(message), nonce))
        # nonces *stack*: layered encryption needs one per layer, popped
        # LIFO by the peer decryptors (mirrors the peer-id stack itself)
        current = message.headers.get(NONCE_HEADER)
        value = nonce.decode("ascii")
        message.headers.set(NONCE_HEADER, f"{current},{value}" if current else value)
        return [("po", message)]


def decrypt_message(message: MimeMessage, key: bytes = DEFAULT_KEY) -> None:
    """The peer transformation (used by the client's decryptor).

    Pops the most recent nonce off the stacked header — one decryption per
    encryption layer.
    """
    stacked = message.headers.get(NONCE_HEADER)
    if stacked is None:
        raise CodecError(f"message lacks {NONCE_HEADER}; cannot decrypt")
    head, sep, nonce = stacked.rpartition(",")
    body = message.body
    if not isinstance(body, bytes | bytearray):
        raise CodecError("encrypted payload must be bytes")
    cipher = StreamCipher(key)
    message.set_body(cipher.decrypt(bytes(body), nonce.encode("ascii")))
    if sep:
        message.headers.set(NONCE_HEADER, head)
    else:
        message.headers.remove(NONCE_HEADER)
