"""The customizer: "maintenance of a per-user preferences database"
(section 1.2.1's fourth service-entity kind, TranSend-style).

A small :class:`PreferencesDB` substrate maps user ids to adaptation
preferences.  The customizer streamlet reads the message's
``X-MobiGATE-User`` header, looks the user up, and annotates the message
with per-user parameter headers that downstream distillation streamlets
honour (header values override the streamlet's default ``ctx.params``):

* ``X-MobiGATE-Quality``      — JPEG-like quality for image transcoding,
* ``X-MobiGATE-Factor``       — image down-sampling factor,
* ``X-MobiGATE-No-Compress``  — text compression opt-out.

Preferences also feed TranSend-style network profiles: a client's
vertical-handoff notification may update its record at runtime.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import RuntimeFault
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext

USER_HEADER = "X-MobiGATE-User"
QUALITY_HEADER = "X-MobiGATE-Quality"
FACTOR_HEADER = "X-MobiGATE-Factor"
NO_COMPRESS_HEADER = "X-MobiGATE-No-Compress"


@dataclass
class UserPreferences:
    """One user's adaptation profile."""

    quality: int | None = None          # image quality (1..100)
    downsample_factor: int | None = None
    compress_text: bool = True
    extras: dict[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        """Range-check the profile; raises RuntimeFault on bad values."""
        if self.quality is not None and not 1 <= self.quality <= 100:
            raise RuntimeFault(f"quality must be in [1, 100], got {self.quality}")
        if self.downsample_factor is not None and self.downsample_factor < 1:
            raise RuntimeFault(
                f"downsample factor must be >= 1, got {self.downsample_factor}"
            )


class PreferencesDB:
    """Thread-safe user → preferences store."""

    def __init__(self, default: UserPreferences | None = None):
        self._default = default if default is not None else UserPreferences()
        self._default.validate()
        self._users: dict[str, UserPreferences] = {}
        self._lock = threading.Lock()

    def put(self, user: str, preferences: UserPreferences) -> None:
        """Store (validated) preferences for ``user``."""
        preferences.validate()
        with self._lock:
            self._users[user] = preferences

    def get(self, user: str | None) -> UserPreferences:
        """The user's preferences, or the default profile when unknown/None."""
        with self._lock:
            if user is None:
                return self._default
            return self._users.get(user, self._default)

    def forget(self, user: str) -> bool:
        """Drop a user's record; returns False if it was absent."""
        with self._lock:
            return self._users.pop(user, None) is not None

    def known_users(self) -> frozenset[str]:
        """Users with explicit records (the default is not listed)."""
        with self._lock:
            return frozenset(self._users)


CUSTOMIZER_DEF = ast.StreamletDef(
    name="customizer",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", ANY),
        ast.PortDecl(ast.PortDirection.OUT, "po", ANY),
    ),
    kind=ast.StreamletKind.STATEFUL,
    library="general/customizer",
    description="annotate messages with per-user adaptation preferences",
)


class Customizer(Streamlet):
    """Annotate messages from the preferences database.

    The database instance is injected via ``ctx.params['prefs']`` (set by
    the deployer with ``stream.set_param``); without one, every message
    gets the default profile.
    """

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        db: PreferencesDB | None = ctx.params.get("prefs")
        prefs = db.get(message.headers.get(USER_HEADER)) if db else UserPreferences()
        if prefs.quality is not None:
            message.headers.set(QUALITY_HEADER, str(prefs.quality))
        if prefs.downsample_factor is not None:
            message.headers.set(FACTOR_HEADER, str(prefs.downsample_factor))
        if not prefs.compress_text:
            message.headers.set(NO_COMPRESS_HEADER, "1")
        for name, value in prefs.extras.items():
            message.headers.set(name, value)
        return [("po", message)]


def header_param(message: MimeMessage, header: str, ctx_value: object) -> object:
    """Per-message header override for a streamlet parameter."""
    raw = message.headers.get(header)
    return raw if raw is not None else ctx_value
