"""Image distillation streamlets (sections 4.3 and 7.5).

All three operate on encoded image payloads (the MGIF/MJPG containers of
:mod:`repro.codecs.imagefmt`) or on in-memory
:class:`~repro.codecs.imagefmt.ImageRaster` payloads:

* **ImageDownSample** — "lossy compression of an image by reducing the
  sample rate"; factor from ``ctx.params['factor']`` (default 2);
* **MapTo16Grays** — "reducing images to 16 grays to support shallow
  grayscale displays";
* **Gif2Jpeg** — "converting incoming image messages into Jpeg format";
  quality from ``ctx.params['quality']`` (default 60).

These transformations are lossy-by-design, so they have no client peers;
their payoff is the size reduction measured in Figure 7-7.
"""

from __future__ import annotations

from repro.errors import CodecError
from repro.mcl import astnodes as ast
from repro.mime.mediatype import IMAGE, IMAGE_GIF, IMAGE_JPEG, MediaType
from repro.mime.message import MimeMessage
from repro.codecs.imagefmt import (
    ImageRaster,
    decode_gif,
    decode_jpeg,
    downsample,
    encode_gif,
    encode_jpeg,
    quantize_grays,
)
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext
from repro.streamlets.customize import FACTOR_HEADER, QUALITY_HEADER, header_param


def _ports(in_type: MediaType, out_type: MediaType) -> tuple[ast.PortDecl, ...]:
    return (
        ast.PortDecl(ast.PortDirection.IN, "pi", in_type),
        ast.PortDecl(ast.PortDirection.OUT, "po", out_type),
    )


IMG_DOWN_SAMPLE_DEF = ast.StreamletDef(
    name="img_down_sample",
    ports=_ports(IMAGE, IMAGE),
    kind=ast.StreamletKind.STATELESS,
    library="image/down_sample",
    description="lossy compression of an image by reducing the sample rate",
)

MAP_TO_16_GRAYS_DEF = ast.StreamletDef(
    name="map_to_16_grays",
    ports=_ports(IMAGE, IMAGE),
    kind=ast.StreamletKind.STATELESS,
    library="image/map_to_16_grays",
    description="reduce images to 16 grays to support shallow grayscale displays",
)

GIF2JPEG_DEF = ast.StreamletDef(
    name="gif2jpeg",
    # wildcard input: the switch's image branch is typed image/*, and the
    # decoder accepts either container (re-encoding to JPEG regardless)
    ports=_ports(IMAGE, IMAGE_JPEG),
    kind=ast.StreamletKind.STATELESS,
    library="image/gif2jpeg",
    description="convert incoming image messages into Jpeg format",
)


def _decode(message: MimeMessage) -> tuple[ImageRaster, str]:
    """Decode the payload; returns (raster, container: 'gif'|'jpeg'|'raw')."""
    body = message.body
    if isinstance(body, ImageRaster):
        return body, "raw"
    if isinstance(body, bytes | bytearray):
        data = bytes(body)
        if data[:4] == b"MGIF":
            return decode_gif(data), "gif"
        if data[:4] == b"MJPG":
            return decode_jpeg(data), "jpeg"
    raise CodecError(
        f"image streamlet received undecodable {message.content_type} payload"
    )


def _encode(message: MimeMessage, raster: ImageRaster, container: str, quality: int) -> None:
    if container == "gif":
        message.set_body(encode_gif(raster), IMAGE_GIF)
    elif container == "jpeg":
        message.set_body(encode_jpeg(raster, quality), IMAGE_JPEG)
    else:
        message.set_body(raster)


class ImageDownSample(Streamlet):
    """Reduce image sample rate by ``factor`` (lossy distillation)."""
    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        # per-message customizer annotations override the deployment default
        factor = int(header_param(message, FACTOR_HEADER, ctx.params.get("factor", 2)))
        raster, container = _decode(message)
        quality = int(header_param(message, QUALITY_HEADER, ctx.params.get("quality", 60)))
        _encode(message, downsample(raster, factor), container, quality)
        return [("po", message)]


class MapTo16Grays(Streamlet):
    """Quantise images to ``levels`` grays for shallow displays."""
    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        levels = int(ctx.params.get("levels", 16))
        raster, container = _decode(message)
        quality = int(ctx.params.get("quality", 60))
        _encode(message, quantize_grays(raster, levels), container, quality)
        return [("po", message)]


class Gif2Jpeg(Streamlet):
    """Re-encode any decodable image as JPEG-like (the §7.5 transcoder)."""
    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        quality = int(header_param(message, QUALITY_HEADER, ctx.params.get("quality", 60)))
        raster, _container = _decode(message)
        message.set_body(encode_jpeg(raster, quality), IMAGE_JPEG)
        return [("po", message)]
